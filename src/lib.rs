//! # eie — a Rust reproduction of the EIE accelerator (ISCA 2016)
//!
//! This crate is the umbrella package of the workspace: it re-exports the
//! public API of [`eie_core`] so examples, integration tests and downstream
//! users can depend on a single crate.
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]

pub use eie_core::*;

/// The serving stack: `ModelServer`, dynamic micro-batching, worker
/// pools (re-export of `eie-serve`).
pub mod serve {
    pub use eie_serve::*;
}
