//! NeuralTalk-style image captioning decoder on EIE.
//!
//! The paper's NT benchmarks come from NeuralTalk's LSTM caption decoder:
//! `We` embeds features/words, the LSTM gate matrix (NT-LSTM, 2400×1201)
//! does the recurrent heavy lifting, and `Wd` (8791×600) projects to the
//! vocabulary. The heavy M×V of every step runs on the accelerator; the
//! cheap element-wise gates run on the host — exactly the split §II
//! describes ("each LSTM cell can be decomposed into M×V operations").
//!
//! ```text
//! cargo run --release --example neuraltalk_lstm            # full size
//! EIE_SCALE=4 cargo run --release --example neuraltalk_lstm
//! ```

use eie::prelude::*;

fn scale() -> usize {
    std::env::var("EIE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn main() {
    let s = scale();
    let config = EieConfig::default().with_num_pes(if s == 1 { 64 } else { 16 });
    println!("engine: {config}");

    // The three NeuralTalk matrices at Table III shapes/densities.
    let gen = |b: Benchmark| {
        if s == 1 {
            b.generate(DEFAULT_SEED)
        } else {
            b.generate_scaled(DEFAULT_SEED, s)
        }
    };
    let we = gen(Benchmark::NtWe); // 600 × 4096 (feature embedding)
    let lstm_w = gen(Benchmark::NtLstm); // 2400 × 1201 (gate matrix)
    let wd = gen(Benchmark::NtWd); // 8791 × 600 (vocab decoder)

    // The LSTM cell wants its gate matrix dense for the host-side
    // reference; the accelerator uses the compressed form.
    let hidden = lstm_w.weights.rows() / 4;
    let cell = LstmCell::new(lstm_w.weights.to_dense(), hidden);
    println!(
        "decoder: We {}x{}, LSTM hidden={hidden}, Wd {}x{}",
        we.weights.rows(),
        we.weights.cols(),
        wd.weights.rows(),
        wd.weights.cols()
    );

    // Three independent artifacts (embedding, gates, decoder): the
    // caption loop below mixes them per step, so they are compiled as
    // separate single-layer models, each served through the unified
    // inference surface on the cycle-accurate backend.
    let m_we = CompiledModel::compile_layer(config, &we.weights);
    let m_lstm = CompiledModel::compile_layer(config, &lstm_w.weights);
    let m_wd = CompiledModel::compile_layer(config, &wd.weights);
    let (job_we, job_lstm, job_wd) = (
        m_we.infer(BackendKind::CycleAccurate),
        m_lstm.infer(BackendKind::CycleAccurate),
        m_wd.infer(BackendKind::CycleAccurate),
    );

    // Step 0: embed the "image feature" through We on the accelerator.
    let image_feature = we.sample_activations(DEFAULT_SEED);
    let embed = job_we.submit_one(&image_feature);
    let mut x: Vec<f32> = embed.outputs_f32(0);
    println!(
        "embed (We): {:.1} µs on EIE, {:.2} µJ",
        embed.time_us(),
        embed.energy().expect("cycle backend").total_uj()
    );

    // Decode a short caption: each step = one NT-LSTM M×V + one NT-Wd
    // M×V on the accelerator, gates + argmax on the host.
    let steps = 8;
    let mut state = LstmState::zeros(hidden);
    let mut total_us = 0.0;
    let mut total_uj = 0.0;
    let mut caption = Vec::new();
    for t in 0..steps {
        // Gate pre-activations W · [x; h; 1] — the accelerated product.
        let gate_input = cell.concat_input(&x[..cell.input_dim()], &state.h);
        let gates = job_lstm.submit_one(&gate_input);
        state = cell.apply_gates(&gates.outputs_f32(0), &state);

        // Vocabulary projection of the new hidden state.
        let logits = job_wd.submit_one(&state.h);
        let word = eie::nn::ops::argmax(&logits.outputs_f32(0));
        caption.push(word);

        total_us += gates.time_us() + logits.time_us();
        total_uj += gates.energy().expect("cycle backend").total_uj()
            + logits.energy().expect("cycle backend").total_uj();
        // Next input: pretend the chosen word embeds to the hidden state
        // (a stand-in for the word-embedding lookup).
        x = state.h.clone();
        if t == 0 {
            println!(
                "step 0: LSTM {:.1} µs + Wd {:.1} µs (balance {:.0}%/{:.0}%)",
                gates.time_us(),
                logits.time_us(),
                gates
                    .stats(0)
                    .expect("cycle backend")
                    .load_balance_efficiency()
                    * 100.0,
                logits
                    .stats(0)
                    .expect("cycle backend")
                    .load_balance_efficiency()
                    * 100.0
            );
        }
    }

    println!("\ncaption token ids: {caption:?}");
    println!(
        "decode: {steps} steps in {total_us:.1} µs total ({:.1} µs/step), {total_uj:.2} µJ",
        total_us / steps as f64
    );
    println!(
        "throughput: {:.0} caption steps/s on the simulated accelerator",
        steps as f64 / (total_us * 1e-6)
    );
}
