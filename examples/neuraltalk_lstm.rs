//! NeuralTalk-style image captioning decoder on EIE.
//!
//! The paper's NT benchmarks come from NeuralTalk's LSTM caption decoder:
//! `We` embeds features/words, the LSTM gate matrix (NT-LSTM, 2400×1201)
//! does the recurrent heavy lifting, and `Wd` (8791×600) projects to the
//! vocabulary. The heavy M×V of every step runs on the accelerator; the
//! cheap element-wise gates run on the host — exactly the split §II
//! describes ("each LSTM cell can be decomposed into M×V operations").
//!
//! ```text
//! cargo run --release --example neuraltalk_lstm            # full size
//! EIE_SCALE=4 cargo run --release --example neuraltalk_lstm
//! ```

use eie::prelude::*;

fn scale() -> usize {
    std::env::var("EIE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn main() {
    let s = scale();
    let config = EieConfig::default().with_num_pes(if s == 1 { 64 } else { 16 });
    let engine = Engine::new(config);
    println!("engine: {config}");

    // The three NeuralTalk matrices at Table III shapes/densities.
    let gen = |b: Benchmark| {
        if s == 1 {
            b.generate(DEFAULT_SEED)
        } else {
            b.generate_scaled(DEFAULT_SEED, s)
        }
    };
    let we = gen(Benchmark::NtWe); // 600 × 4096 (feature embedding)
    let lstm_w = gen(Benchmark::NtLstm); // 2400 × 1201 (gate matrix)
    let wd = gen(Benchmark::NtWd); // 8791 × 600 (vocab decoder)

    // The LSTM cell wants its gate matrix dense for the host-side
    // reference; the accelerator uses the compressed form.
    let hidden = lstm_w.weights.rows() / 4;
    let cell = LstmCell::new(lstm_w.weights.to_dense(), hidden);
    println!(
        "decoder: We {}x{}, LSTM hidden={hidden}, Wd {}x{}",
        we.weights.rows(),
        we.weights.cols(),
        wd.weights.rows(),
        wd.weights.cols()
    );

    // Three independent artifacts (embedding, gates, decoder): the
    // caption loop below mixes them per step, so they are compiled as
    // separate single-layer models through the unified pipeline.
    let pipeline = engine.config().pipeline();
    let enc_we = pipeline.compile_matrix(&we.weights);
    let enc_lstm = pipeline.compile_matrix(&lstm_w.weights);
    let enc_wd = pipeline.compile_matrix(&wd.weights);

    // Step 0: embed the "image feature" through We on the accelerator.
    let image_feature = we.sample_activations(DEFAULT_SEED);
    let embed = engine.run_layer(&enc_we, &image_feature);
    let mut x: Vec<f32> = embed.run.outputs_f32();
    println!(
        "embed (We): {:.1} µs on EIE, {:.2} µJ",
        embed.time_us(),
        embed.energy.total_uj()
    );

    // Decode a short caption: each step = one NT-LSTM M×V + one NT-Wd
    // M×V on the accelerator, gates + argmax on the host.
    let steps = 8;
    let mut state = LstmState::zeros(hidden);
    let mut total_us = 0.0;
    let mut total_uj = 0.0;
    let mut caption = Vec::new();
    for t in 0..steps {
        // Gate pre-activations W · [x; h; 1] — the accelerated product.
        let gate_input = cell.concat_input(&x[..cell.input_dim()], &state.h);
        let gates = engine.run_layer(&enc_lstm, &gate_input);
        state = cell.apply_gates(&gates.run.outputs_f32(), &state);

        // Vocabulary projection of the new hidden state.
        let logits = engine.run_layer(&enc_wd, &state.h);
        let word = eie::nn::ops::argmax(&logits.run.outputs_f32());
        caption.push(word);

        total_us += gates.time_us() + logits.time_us();
        total_uj += gates.energy.total_uj() + logits.energy.total_uj();
        // Next input: pretend the chosen word embeds to the hidden state
        // (a stand-in for the word-embedding lookup).
        x = state.h.clone();
        if t == 0 {
            println!(
                "step 0: LSTM {:.1} µs + Wd {:.1} µs (balance {:.0}%/{:.0}%)",
                gates.time_us(),
                logits.time_us(),
                gates.run.stats.load_balance_efficiency() * 100.0,
                logits.run.stats.load_balance_efficiency() * 100.0
            );
        }
    }

    println!("\ncaption token ids: {caption:?}");
    println!(
        "decode: {steps} steps in {total_us:.1} µs total ({:.1} µs/step), {total_uj:.2} µJ",
        total_us / steps as f64
    );
    println!(
        "throughput: {:.0} caption steps/s on the simulated accelerator",
        steps as f64 / (total_us * 1e-6)
    );
}
