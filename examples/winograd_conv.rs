//! Winograd 3×3 convolution scheduled on EIE — the paper's §VII-C
//! flexibility claim, made executable.
//!
//! "EIE has the potential to support 1x1 convolution and 3x3 Winograd
//! convolution by turning the channel-wise reduction into an M×V.
//! Winograd convolution saves 2.25× multiplications than naive
//! convolution, and for each Winograd patch the 16 M×V can be scheduled
//! on an EIE."
//!
//! This example prunes a 3×3 convolution's 16 Winograd position matrices,
//! compresses each for the PE array, and runs every per-tile channel
//! reduction through the cycle-accurate simulator; it then verifies the
//! output against direct convolution and reports the multiplication
//! saving and simulated cycle cost. A 1×1 convolution demo rides along.
//!
//! ```text
//! cargo run --release --example winograd_conv
//! ```

use eie::compress::prune::prune_to_density;
use eie::nn::conv::{conv1x1, conv3x3_direct, FeatureMap, WinogradConv3x3};
use eie::prelude::*;

fn main() {
    let (out_ch, in_ch) = (32usize, 24usize);
    let config = EieConfig::default().with_num_pes(8);

    // --- build a synthetic 3×3 conv layer ------------------------------
    let kernels: Vec<Vec<[f32; 9]>> = (0..out_ch)
        .map(|oc| {
            (0..in_ch)
                .map(|ic| {
                    let mut k = [0.0f32; 9];
                    for (i, v) in k.iter_mut().enumerate() {
                        *v = ((oc * 131 + ic * 17 + i) as f32 * 0.07).sin() * 0.5;
                    }
                    k
                })
                .collect()
        })
        .collect();
    let conv = WinogradConv3x3::from_kernels(&kernels);
    println!(
        "3x3 conv: {out_ch}x{in_ch} channels; Winograd saves {:.2}x multiplies",
        WinogradConv3x3::multiplication_saving()
    );

    // --- compress the 16 position matrices for EIE ---------------------
    // The Winograd kernel transform preserves much of the pruned
    // sparsity structure; here we prune each U^(i,j) to 25% directly.
    // The pipeline's dense path: prune (to 25%) -> codebook -> encode.
    // Each position matrix becomes its own single-layer model so the
    // per-tile reductions run through the unified inference surface.
    let pipeline = config.pipeline().with_prune_density(0.25);
    let models: Vec<CompiledModel> = (0..16)
        .map(|pos| {
            CompiledModel::from_layers(
                config,
                vec![pipeline.compile_dense(conv.position_matrix(pos / 4, pos % 4))],
            )
        })
        .collect();
    let entries: usize = models.iter().map(|m| m.layer(0).total_entries()).sum();
    println!("compressed: 16 position matrices, {entries} total entries");

    // --- a post-ReLU input feature map ---------------------------------
    let input = FeatureMap::from_fn(in_ch, 10, 10, |c, y, x| {
        let v = ((c * 13 + y * 5 + x) as f32 * 0.37).sin();
        if v > 0.0 {
            v
        } else {
            0.0
        }
    });
    println!("input: {input}");

    // --- run every per-tile reduction on the simulated accelerator -----
    let mut total_cycles = 0u64;
    let mut total_macs = 0u64;
    let out = conv.forward_with(&input, |pos, v| {
        let result = models[pos].infer(BackendKind::CycleAccurate).submit_one(v);
        let stats = result.stats(0).expect("cycle backend");
        total_cycles += stats.total_cycles;
        total_macs += stats.total_macs();
        result.outputs_f32(0)
    });

    // --- verify against direct convolution on the same pruned weights --
    // Rebuild the pruned position matrices as the reference executor.
    let reference = conv.forward_with(&input, |pos, v| models[pos].layer(0).spmv_f32(v));
    let mut max_err = 0.0f32;
    for c in 0..out.channels() {
        for y in 0..out.height() {
            for x in 0..out.width() {
                max_err = max_err.max((out.get(c, y, x) - reference.get(c, y, x)).abs());
            }
        }
    }
    println!(
        "\nEIE-scheduled Winograd: {} tiles x 16 M×V = {} simulator passes",
        (out.height() / 2) * (out.width() / 2),
        (out.height() / 2) * (out.width() / 2) * 16
    );
    println!("simulated: {total_cycles} cycles, {total_macs} MACs");
    println!("max |EIE - f32 reference| = {max_err:.4}");
    assert!(max_err < 0.5, "Winograd-on-EIE diverged");

    // --- the dense-direct comparison the 2.25x claim refers to ---------
    let dense_direct = conv3x3_direct(&kernels, &input);
    println!(
        "direct conv multiplies/pixel/chan-pair: 9; Winograd: 4 (ratio {:.2}x)",
        9.0 / 4.0
    );
    let _ = dense_direct;

    // --- 1x1 convolution rides the same path ---------------------------
    let w1x1 = Matrix::from_fn(out_ch, in_ch, |r, c| ((r * 7 + c) as f32 * 0.11).sin());
    let pruned = prune_to_density(&w1x1, 0.2);
    let model1 = CompiledModel::compile_layer(config, &pruned);
    let ref1 = conv1x1(&pruned.to_dense(), &input);
    let job1 = model1.infer(BackendKind::CycleAccurate);
    let mut max_err1 = 0.0f32;
    let mut cycles1 = 0u64;
    for y in 0..input.height() {
        for x in 0..input.width() {
            let r = job1.submit_one(&input.pixel_channels(y, x));
            cycles1 += r.stats(0).expect("cycle backend").total_cycles;
            for (oc, v) in r.outputs_f32(0).iter().enumerate() {
                max_err1 = max_err1.max((v - ref1.get(oc, y, x)).abs());
            }
        }
    }
    println!(
        "\n1x1 conv on EIE: {} pixel M×Vs, {cycles1} cycles, max err {max_err1:.4}",
        input.height() * input.width()
    );
    assert!(max_err1 < 0.5);
    println!("OK");
}
