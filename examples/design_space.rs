//! Design-space exploration in twenty lines per axis: how a user of this
//! library would re-derive the paper's §VI-C design choices for their own
//! workload (here: a 1024×1024 layer at 8% density).
//!
//! Sweeps FIFO depth (paper Fig. 8), PE count (Fig. 11) and SRAM width
//! (Fig. 9), printing the metric each choice optimizes.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use eie::prelude::*;

fn main() {
    // The user's layer: synthesized here, pruned to 8%.
    let weights = random_sparse(1024, 1024, 0.08, 2024);
    let acts = eie::nn::zoo::sample_activations(1024, 0.4, false, 7);
    println!(
        "workload: {}x{} @ {:.1}% weights, {:.0}% activations\n",
        weights.rows(),
        weights.cols(),
        weights.density() * 100.0,
        eie::nn::ops::density(&acts) * 100.0
    );

    // --- FIFO depth: pick the knee of the load-balance curve ----------
    // Compile once; `InferenceJob::config` retimes the same artifact
    // under each design point without recompiling.
    println!("FIFO depth sweep (16 PEs):");
    let model16 = CompiledModel::compile_layer(EieConfig::default().with_num_pes(16), &weights);
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let cfg = EieConfig::default().with_num_pes(16).with_fifo_depth(depth);
        let result = model16
            .infer(BackendKind::CycleAccurate)
            .config(cfg)
            .submit_one(&acts);
        let stats = result.stats(0).expect("cycle backend");
        println!(
            "  depth {depth:>2}: {:>7} cycles, balance {:.1}%",
            stats.total_cycles,
            stats.load_balance_efficiency() * 100.0
        );
    }

    // --- PE count: speedup and where it saturates ---------------------
    println!("\nPE count sweep (FIFO 8):");
    let mut base = None;
    for pes in [1usize, 4, 16, 64] {
        let cfg = EieConfig::default().with_num_pes(pes);
        let model = CompiledModel::compile_layer(cfg, &weights);
        let result = model.infer(BackendKind::CycleAccurate).submit_one(&acts);
        let stats = result.stats(0).expect("cycle backend");
        let cycles = stats.total_cycles;
        let b = *base.get_or_insert(cycles);
        println!(
            "  {pes:>3} PEs: {:>8} cycles  ({:.1}x, padding work {:.1}%)",
            cycles,
            b as f64 / cycles as f64,
            (1.0 - stats.real_work_ratio()) * 100.0
        );
    }

    // --- SRAM width: total read energy, the Fig. 9 trade-off ----------
    println!("\nSpmat SRAM width sweep (16 PEs):");
    for width in [32u32, 64, 128, 256] {
        let cfg = EieConfig::default()
            .with_num_pes(16)
            .with_spmat_width(width);
        let result = model16
            .infer(BackendKind::CycleAccurate)
            .config(cfg)
            .submit_one(&acts);
        let reads = result.stats(0).expect("cycle backend").spmat_row_reads();
        let per_read = SramModel::spmat(width).read_energy_pj();
        println!(
            "  {width:>3}b: {reads:>7} reads x {per_read:>6.1} pJ = {:>8.1} nJ",
            reads as f64 * per_read / 1e3
        );
    }
    println!("\n(The paper's choices — FIFO 8, 64-bit SRAM — fall out of these sweeps.)");
}
