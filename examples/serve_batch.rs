//! Serving a compressed model in batches on the pluggable backends —
//! build once, load many.
//!
//! Compiles a two-layer feed-forward model once, saves the versioned
//! `.eie` artifact, **reloads it** (as every serving worker would), then
//! serves the same batch three ways: the host-speed `NativeCpu` kernel
//! (real serving), the functional golden model (verification), and the
//! cycle-accurate simulator (modelled hardware latency and energy).
//! Outputs are bit-identical across all three — and identical whether
//! the model came from memory or from disk.
//!
//! ```text
//! cargo run --release --example serve_batch
//! ```

use eie::prelude::*;

fn main() {
    // 1. Build once: a small two-layer network (Alex-7-like shapes at
    //    1/16 scale) compiled into a .eie artifact on disk.
    let w1 = random_sparse(256, 256, 0.09, 1);
    let w2 = random_sparse(64, 256, 0.09, 2);
    let config = EieConfig::default().with_num_pes(16);
    let compiled = CompiledModel::compile(config, &[&w1, &w2]).with_name("serve demo");
    let path = std::env::temp_dir().join("serve_batch.eie");
    compiled.save(&path).expect("save artifact");

    // 2. Load many: serving workers start from the validated artifact,
    //    never from f32 weights.
    let model = CompiledModel::load(&path).expect("load artifact");
    assert_eq!(model, compiled, "artifact roundtrip must be bit-exact");
    println!("loaded      : {model}");

    // 3. A batch of 32 requests at AlexNet FC7 activation density.
    let batch: Vec<Vec<f32>> = (0..32u64)
        .map(|i| eie::nn::zoo::sample_activations(256, 0.35, false, 40 + i))
        .collect();
    println!("requests    : batch of {}", batch.len());

    // 4. Serve on the native kernel (one worker per core).
    let native = model.run_batch(BackendKind::NativeCpu(0), &batch);
    println!(
        "native-cpu  : {:.0} frames/s, batch wall {:.1} µs",
        native.frames_per_second(),
        native.wall_time_us()
    );

    // 5. Verify against the golden model — bit-identical outputs.
    let golden = model.run_batch(BackendKind::Functional, &batch);
    for i in 0..batch.len() {
        assert_eq!(native.outputs(i), golden.outputs(i), "bit-exactness broken");
    }
    println!(
        "functional  : outputs bit-identical for all {} items",
        batch.len()
    );

    // 6. What the accelerator itself would do, per frame (batch 1 —
    //    EIE's latency needs no batching; §VI-B).
    let hw = model.run_batch(BackendKind::CycleAccurate, &batch[..4]);
    println!(
        "EIE modelled: {:.2} µs/frame (p95 {:.2}), {:.0} frames/s, {:.3} µJ/frame",
        hw.mean_latency_us(),
        hw.percentile_latency_us(95.0),
        hw.frames_per_second(),
        hw.energy_per_frame_uj()
            .expect("cycle backend prices energy")
    );
    for i in 0..4 {
        assert_eq!(hw.outputs(i), golden.outputs(i), "cycle model diverged");
    }
    let _ = std::fs::remove_file(&path);
    println!("done        : one artifact, three engines, same bits");
}
