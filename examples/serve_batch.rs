//! Serving a compressed model under live traffic — build once, load
//! many, one inference surface.
//!
//! Compiles a two-layer feed-forward model, saves the versioned `.eie`
//! artifact, then walks the two halves of the redesigned execution API:
//!
//! 1. **`CompiledModel::infer`** — the builder-style inference job that
//!    replaced the old `Engine::run_*` methods: one surface for the
//!    host-speed `NativeCpu` kernel, the functional golden model, and
//!    the cycle-accurate simulator (with energy).
//! 2. **`ModelServer`** — the `eie-serve` request/response lifecycle:
//!    a bounded queue feeding backend workers through a dynamic
//!    micro-batcher, with per-request latency and queue-time metrics.
//!
//! Outputs are bit-identical everywhere: across backends, between
//! direct jobs and served requests, and however the micro-batcher
//! coalesced the stream.
//!
//! ```text
//! cargo run --release --example serve_batch
//! ```

use eie::prelude::*;
use eie::serve::{ModelServer, ServerConfig};

fn main() {
    // 1. Build once: a small two-layer network compiled into a .eie
    //    artifact on disk.
    let w1 = random_sparse(256, 256, 0.09, 1);
    let w2 = random_sparse(64, 256, 0.09, 2);
    let config = EieConfig::default().with_num_pes(16);
    let compiled = CompiledModel::compile(config, &[&w1, &w2]).with_name("serve demo");
    let path = std::env::temp_dir().join("serve_batch.eie");
    compiled.save(&path).expect("save artifact");

    // 2. Load many: serving starts from the validated artifact, never
    //    from f32 weights.
    let model = CompiledModel::load(&path).expect("load artifact");
    assert_eq!(model, compiled, "artifact roundtrip must be bit-exact");
    println!("loaded      : {model}");

    // 3. A batch of 32 requests at AlexNet FC7 activation density.
    let batch: Vec<Vec<f32>> = (0..32u64)
        .map(|i| eie::nn::zoo::sample_activations(256, 0.35, false, 40 + i))
        .collect();

    // 4. One inference surface, three engines. Native kernel first —
    //    the offline/bulk serving path.
    let native = model.infer(BackendKind::NativeCpu(0)).submit(&batch);
    println!(
        "infer native: {:.0} frames/s, batch wall {:.1} µs",
        native.frames_per_second(),
        native.time_us()
    );

    // 5. Same job on the golden model — bit-identical outputs.
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    for i in 0..batch.len() {
        assert_eq!(native.outputs(i), golden.outputs(i), "bit-exactness broken");
    }
    println!(
        "functional  : outputs bit-identical for all {} items",
        batch.len()
    );

    // 6. What the accelerator itself would do, per frame (batch 1 —
    //    EIE's latency needs no batching; §VI-B), with priced energy.
    let hw = model
        .infer(BackendKind::CycleAccurate)
        .energy(true)
        .submit(&batch[..4]);
    println!(
        "EIE modelled: {:.2} µs/frame (p95 {:.2}), {:.0} frames/s, {:.3} µJ/frame",
        hw.mean_latency_us(),
        hw.p95(),
        hw.frames_per_second(),
        hw.energy_per_frame_uj()
            .expect("cycle backend prices energy")
    );
    for i in 0..4 {
        assert_eq!(hw.outputs(i), golden.outputs(i), "cycle model diverged");
    }

    // 7. Live serving: a ModelServer on the same artifact — bounded
    //    queue, two native workers, dynamic micro-batching.
    let server = ModelServer::load(
        &path,
        ServerConfig::default()
            .with_backend(BackendKind::NativeCpu(1))
            .with_workers(2)
            .with_max_batch(8)
            .with_max_wait_us(200),
    )
    .expect("serve artifact");
    let responses: Vec<_> = batch
        .iter()
        .map(|input| server.submit(input).expect("submit"))
        .collect();
    for (i, response) in responses.into_iter().enumerate() {
        let result = response.wait().expect("request failed");
        assert_eq!(
            result.outputs[..],
            *golden.outputs(i),
            "served output diverged from the golden model"
        );
    }
    let stats = server.shutdown();
    println!("served      : {stats}");

    let _ = std::fs::remove_file(&path);
    println!("done        : one artifact, one surface, same bits everywhere");
}
