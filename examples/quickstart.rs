//! Quickstart: the model lifecycle end to end — compile a dense FC layer
//! through the unified pipeline, save the versioned `.eie` artifact,
//! load it back, and run it on the simulated EIE accelerator.
//!
//! Walks the paper's full flow: magnitude pruning (§III) → k-means
//! weight sharing → interleaved CSC encoding → validation → a `.eie`
//! model container → cycle-accurate execution (§IV) → time, energy and
//! verification against the f32 reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The same lifecycle is scriptable from the shell:
//!
//! ```text
//! eie compress --zoo alex7 -o model.eie && eie run model.eie --verify
//! ```

use eie::compress::prune::prune_to_density;
use eie::prelude::*;

fn main() {
    // 1. A dense 256×512 FC layer (weights synthesized here; in real use
    //    these would come from a trained model).
    let dense = Matrix::from_fn(256, 512, |r, c| {
        let i = (r * 512 + c) as f32;
        (i * 0.618).sin() * (i * 0.003).cos()
    });
    println!("dense layer : 256x512 = {} weights", 256 * 512);

    // 2. Prune to 10% density (Deep Compression stage 1), then compile:
    //    codebook fit, interleaved CSC encoding and validation all run
    //    inside the unified pipeline behind `CompiledModel::compile`.
    let config = EieConfig::default().with_num_pes(16);
    let pruned = prune_to_density(&dense, 0.10);
    println!(
        "pruned      : {} non-zeros ({:.1}% density)",
        pruned.nnz(),
        pruned.density() * 100.0
    );
    let model = CompiledModel::compile_layer(config, &pruned).with_name("quickstart fc");
    let stats = model.layer(0).stats();
    println!(
        "compiled    : {} entries ({} padding), {:.1}x smaller than dense f32",
        stats.total_entries(),
        stats.padding_entries,
        stats.compression_ratio()
    );

    // 3. Save the versioned .eie artifact — the deployment unit — then
    //    load it back as any serving worker would.
    let path = std::env::temp_dir().join("quickstart.eie");
    model.save(&path).expect("save artifact");
    let loaded = CompiledModel::load(&path).expect("load artifact");
    println!(
        "artifact    : {} ({} bytes on disk)",
        loaded,
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // 4. A 35%-dense input activation vector (post-ReLU statistics).
    let acts = eie::nn::zoo::sample_activations(512, 0.35, false, 42);

    // 5. Cycle-accurate execution of the loaded artifact through the
    //    unified inference surface: one job, outputs + stats + energy.
    let result = loaded
        .infer(BackendKind::CycleAccurate)
        .energy(true)
        .submit_one(&acts);
    let stats = result.stats(0).expect("cycle backend records activity");
    println!(
        "execution   : {} cycles = {:.2} µs at 800 MHz",
        stats.total_cycles,
        result.time_us()
    );
    println!(
        "              {:.1} GOP/s sustained, load balance {:.1}%",
        result.gops().expect("cycle backend"),
        stats.load_balance_efficiency() * 100.0
    );
    let energy = result.energy().expect("energy pricing enabled");
    println!(
        "energy      : {:.3} µJ ({:.1} mW average)",
        energy.total_uj(),
        energy.average_power_w() * 1e3
    );

    // 6. Verify against the f32 reference on the encoded form (the
    //    compressed model is quantized, so allow codebook + fixed-point
    //    tolerance).
    let quantized_ref = loaded.layer(0).spmv_f32(&acts);
    let outputs = result.outputs_f32(0);
    let max_err = outputs
        .iter()
        .zip(&quantized_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("verification: max |sim - reference| = {max_err:.4}");
    assert!(max_err < 0.25, "simulation diverged from reference");
    let _ = std::fs::remove_file(&path);
    println!("OK");
}
