//! AlexNet classifier pipeline: the three fully-connected layers
//! (FC6 → FC7 → FC8) of the paper's headline workload, run back-to-back
//! on the simulated 64-PE EIE with ReLU between layers — the multi-layer
//! mode of §IV where source/destination activation registers swap roles.
//!
//! Layer shapes and densities follow Table III; with EIE_SCALE unset this
//! runs the full 9216→4096→4096→1000 stack (the paper reports
//! 1.88 × 10⁴ frames/s for it).
//!
//! ```text
//! cargo run --release --example alexnet_fc            # full size
//! EIE_SCALE=8 cargo run --release --example alexnet_fc # 1/8 scale
//! ```

use eie::prelude::*;

fn scale() -> usize {
    std::env::var("EIE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn main() {
    let s = scale();
    let config = EieConfig::default().with_num_pes(if s == 1 { 64 } else { 16 });
    println!("engine: {config}");

    // Generate and compress the three AlexNet FC layers.
    let gen = |b: Benchmark| {
        if s == 1 {
            b.generate(DEFAULT_SEED)
        } else {
            b.generate_scaled(DEFAULT_SEED, s)
        }
    };
    let fc6 = gen(Benchmark::Alex6);
    let fc7 = gen(Benchmark::Alex7);
    let fc8 = gen(Benchmark::Alex8);
    println!(
        "layers: FC6 {}x{}, FC7 {}x{}, FC8 {}x{}",
        fc6.weights.rows(),
        fc6.weights.cols(),
        fc7.weights.rows(),
        fc7.weights.cols(),
        fc8.weights.rows(),
        fc8.weights.cols()
    );

    // One whole-model artifact: the classifier head as a single
    // CompiledModel, the unit a `.eie` file stores.
    let model = CompiledModel::compile(config, &[&fc6.weights, &fc7.weights, &fc8.weights])
        .with_name(format!("AlexNet FC6-8 1/{s}"));
    let total_entries: usize = model.layers().iter().map(|l| l.total_entries()).sum();
    println!(
        "compressed: {total_entries} entries total ({:.1} KB/PE sparse-matrix storage)",
        total_entries as f64 / config.num_pes as f64 / 1024.0
    );

    // One "image": the pool5 feature vector entering FC6 (post-ReLU,
    // Table III says 35.1% dense).
    let input = fc6.sample_activations(DEFAULT_SEED);

    // Run the whole classifier head through one inference job: the
    // job's per-layer phases replace the old per-layer network runs.
    let result = model.infer(BackendKind::CycleAccurate).submit_one(&input);
    println!("\nper-layer results:");
    for (name, phase) in ["FC6", "FC7", "FC8"].iter().zip(result.layer_phases()) {
        let stats = phase.stats.as_ref().expect("cycle backend");
        println!(
            "  {name}: {:>9} cycles  ({:.1} µs, balance {:.1}%, {:.1}% padding work)",
            stats.total_cycles,
            stats.total_cycles as f64 / config.clock_hz * 1e6,
            stats.load_balance_efficiency() * 100.0,
            (1.0 - stats.real_work_ratio()) * 100.0,
        );
    }
    let time_us = result.time_us();
    println!(
        "\nend-to-end: {:.1} µs → {:.0} frames/s (paper: 1.88e4 frames/s at full size)",
        time_us,
        1e6 / time_us
    );
    let energy = result.energy().expect("cycle backend prices energy");
    println!(
        "energy: {:.2} µJ/frame ({:.0} mW average over the run)",
        energy.total_uj(),
        energy.average_power_w() * 1e3
    );

    // The logits leave the accelerator as 16-bit fixed point.
    let top = eie::nn::ops::argmax(&result.outputs_f32(0));
    println!("argmax logit: class {top} (synthetic weights — for pipeline demonstration)");
}
