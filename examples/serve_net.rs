//! A multi-model serving node on the wire — the deployment shape the
//! compression pays for: many compressed models resident on one box,
//! served over TCP.
//!
//! Walks the network serving stack end to end, in one process over
//! loopback:
//!
//! 1. **`ModelRegistry`** — three named models behind one residency
//!    budget; nothing loads until a request routes to it, and cold
//!    models are evicted least-recently-used when the budget overflows.
//! 2. **`NetServer`** — the registry behind a `std::net` TCP listener
//!    speaking length-prefixed binary frames (`eie::serve::protocol`).
//! 3. **`Client`** — concurrent connections mixing requests across
//!    models, each response verified bit-identical to a one-at-a-time
//!    functional golden run: output activations travel as raw Q8.8
//!    words, so the network cannot perturb them.
//! 4. **STATS / SHUTDOWN** — live percentiles + registry occupancy over
//!    the wire, then a graceful drain.
//!
//! ```text
//! cargo run --release --example serve_net
//! ```

use std::sync::Arc;
use std::thread;

use eie::prelude::*;
use eie::serve::{Client, ModelRegistry, NetServer, ServerConfig};

fn compile(name: &str, dims: &[usize], density: f64, seed: u64) -> CompiledModel {
    let weights: Vec<_> = dims
        .windows(2)
        .enumerate()
        .map(|(i, p)| random_sparse(p[1], p[0], density, seed + i as u64))
        .collect();
    let refs: Vec<_> = weights.iter().collect();
    CompiledModel::compile(EieConfig::default().with_num_pes(16), &refs).with_name(name)
}

fn main() {
    // 1. Three models, one registry, a budget sized to hold only two —
    //    the third admission will evict the least recently used.
    let models = [
        ("fc6", compile("fc6", &[256, 128], 0.09, 1)),
        ("fc7", compile("fc7", &[128, 128], 0.09, 2)),
        ("lstm", compile("lstm", &[192, 96], 0.10, 3)),
    ];
    let budget: usize = models
        .iter()
        .map(|(_, m)| m.artifact_bytes())
        .sum::<usize>()
        - models
            .iter()
            .map(|(_, m)| m.artifact_bytes())
            .min()
            .unwrap()
            / 2;
    let registry = ModelRegistry::new(
        ServerConfig::default()
            .with_workers(2)
            .with_max_batch(8)
            .with_max_wait_us(200),
    )
    .with_budget_bytes(budget);
    for (name, model) in &models {
        registry.register_model(*name, model).expect("register");
        println!(
            "registered  : {name} ({} artifact bytes)",
            model.artifact_bytes()
        );
    }
    println!("budget      : {budget} bytes (fits two of three)");

    // 2. On the wire. Port 0 = ephemeral; real deployments pass a fixed
    //    address (`eie serve --listen 0.0.0.0:7070 --model fc6=fc6.eie ...`).
    let server = NetServer::bind("127.0.0.1:0", registry).expect("bind");
    let addr = server.local_addr();
    println!("listening   : {addr}");

    // 3. Four concurrent client connections, mixing fc6 and fc7
    //    traffic, each verifying every response against the golden run.
    let goldens: Arc<Vec<(String, CompiledModel)>> = Arc::new(
        models[..2]
            .iter()
            .map(|(n, m)| (n.to_string(), m.clone()))
            .collect(),
    );
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let goldens = Arc::clone(&goldens);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for j in 0..24usize {
                    let (name, model) = &goldens[(t + j) % goldens.len()];
                    let input = eie::nn::zoo::sample_activations(
                        model.input_dim(),
                        0.35,
                        false,
                        (t * 100 + j) as u64,
                    );
                    let served = client.infer_outputs(name, &input).expect("infer");
                    let golden = model.infer(BackendKind::Functional).submit_one(&input);
                    assert_eq!(served, golden.outputs(0), "wire changed the numbers");
                }
            })
        })
        .collect();
    threads.into_iter().for_each(|t| t.join().expect("client"));
    println!("verified    : 96 responses bit-exact across 4 connections × 2 models");

    // 4. Routing to the third model overflows the budget: the LRU
    //    resident is evicted, the newcomer admitted.
    let mut control = Client::connect(addr).expect("connect");
    let lstm_in = eie::nn::zoo::sample_activations(192, 0.35, false, 999);
    control.infer_outputs("lstm", &lstm_in).expect("lstm infer");

    let report = control.stats().expect("stats");
    println!(
        "server      : {} requests in {} micro-batches (max {}/batch)",
        report.requests, report.batches, report.max_coalesced
    );
    println!(
        "latency     : p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs",
        report.p50_us, report.p95_us, report.p99_us
    );
    println!(
        "registry    : {}/{} resident, {} of {} budget bytes, {} loads, {} evictions",
        report.models_resident,
        report.models_registered,
        report.resident_bytes,
        report.budget_bytes,
        report.loads,
        report.evictions
    );
    assert_eq!(
        report.evictions, 1,
        "lstm admission should evict one LRU model"
    );

    // 5. Graceful drain: acknowledged on the wire, every accepted
    //    request answered before the listener dies.
    control.shutdown_server().expect("shutdown");
    let stats = server.stop();
    assert_eq!(
        stats.requests, 97,
        "lifetime stats must include the evicted model's requests"
    );
    println!(
        "drained     : {} requests served, {:.0} frames/s lifetime",
        stats.requests,
        stats.frames_per_second()
    );
}
