//! Paper-claim regression tests: the qualitative findings of the
//! evaluation section must hold on scaled-down runs. These are the
//! "shape" assertions of the reproduction — if one of these breaks, an
//! experiment binary would contradict the paper.

use eie::prelude::*;

fn prep(benchmark: Benchmark, pes: usize) -> (EncodedLayer, Vec<f32>) {
    let layer = benchmark.generate_scaled(DEFAULT_SEED, 16);
    let config = EieConfig::default().with_num_pes(pes);
    let enc = config.pipeline().compile_matrix(&layer.weights);
    let acts = layer.sample_activations(DEFAULT_SEED);
    (enc, acts)
}

#[test]
fn fig8_claim_fifo_knee_at_8() {
    // Load balance improves with FIFO depth, with diminishing returns
    // beyond 8 (the paper picks depth 8).
    let (enc, acts) = prep(Benchmark::Alex7, 16);
    let eff = |d: usize| {
        simulate(&enc, &acts, &SimConfig::with_fifo_depth(d))
            .stats
            .load_balance_efficiency()
    };
    let (e1, e8, e64) = (eff(1), eff(8), eff(64));
    assert!(e8 > e1, "depth 8 ({e8}) must beat depth 1 ({e1})");
    let gain_1_to_8 = e8 - e1;
    let gain_8_to_64 = e64 - e8;
    assert!(
        gain_8_to_64 < gain_1_to_8,
        "returns must diminish: 1→8 {gain_1_to_8}, 8→64 {gain_8_to_64}"
    );
}

#[test]
fn fig11_claim_near_linear_scaling_except_ntwe() {
    let cycles = |benchmark: Benchmark, pes: usize| {
        let (enc, acts) = prep(benchmark, pes);
        simulate(&enc, &acts, &SimConfig::default())
            .stats
            .total_cycles as f64
    };
    // Alex-7 scales well from 2 to 8 PEs…
    let alex_speedup = cycles(Benchmark::Alex7, 2) / cycles(Benchmark::Alex7, 8);
    assert!(alex_speedup > 3.0, "Alex-7 2→8 PE speedup {alex_speedup}");
    // …NT-We (few rows) scales worse at the same point.
    let ntwe_speedup = cycles(Benchmark::NtWe, 2) / cycles(Benchmark::NtWe, 8);
    assert!(
        ntwe_speedup < alex_speedup,
        "NT-We ({ntwe_speedup}) should scale worse than Alex-7 ({alex_speedup})"
    );
}

#[test]
fn fig12_claim_padding_decreases_with_pes() {
    let layer = Benchmark::Vgg7.generate_scaled(DEFAULT_SEED, 16);
    let ratio = |pes: usize| {
        compress(&layer.weights, CompressConfig::with_pes(pes))
            .stats()
            .real_work_ratio()
    };
    assert!(ratio(1) < ratio(4));
    assert!(ratio(4) <= ratio(16) + 1e-12);
}

#[test]
fn fig13_claim_balance_degrades_with_pes() {
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 16);
    let acts = layer.sample_activations(DEFAULT_SEED);
    let eff = |pes: usize| {
        let enc = compress(&layer.weights, CompressConfig::with_pes(pes));
        simulate(&enc, &acts, &SimConfig::default())
            .stats
            .load_balance_efficiency()
    };
    assert!(
        eff(64) < eff(4),
        "64 PEs ({}) should balance worse than 4 ({})",
        eff(64),
        eff(4)
    );
}

#[test]
fn table_iv_claim_actual_near_theoretical() {
    // "The actual computation time is around 10% more than the
    // theoretical computation time due to load imbalance" — allow up to
    // 40% at this small scale, and require it non-negative.
    let (enc, acts) = prep(Benchmark::Alex6, 8);
    let run = simulate(&enc, &acts, &SimConfig::default());
    let overhead = run.stats.overhead_factor();
    assert!((1.0..1.4).contains(&overhead), "overhead factor {overhead}");
}

#[test]
fn fig10_claim_16bit_safe_8bit_collapses() {
    use eie::nn::dataset::{gaussian_clusters, ClusterSpec};
    use eie::nn::train::{new_classifier_mlp, train_classifier, TrainConfig};

    let data = gaussian_clusters(
        DEFAULT_SEED,
        ClusterSpec {
            num_classes: 12,
            dim: 10,
            per_class: 80,
            center_radius: 4.2,
            noise_std: 2.2,
        },
    );
    let (train, test) = data.split(0.25);
    let mut mlp = new_classifier_mlp(7, &[10, 32, 24, 12]);
    train_classifier(
        &mut mlp,
        &train,
        TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
    );
    let acc_f = mlp.accuracy(&test.inputs, &test.labels);
    let acc_16 = mlp
        .quantized(Precision::Fixed16)
        .accuracy(&test.inputs, &test.labels);
    let acc_8 = mlp
        .quantized(Precision::Fixed8)
        .accuracy(&test.inputs, &test.labels);
    assert!(acc_f > 0.5, "reference net failed to train: {acc_f}");
    assert!(
        (acc_f - acc_16).abs() < 0.05,
        "16-bit should track float: {acc_f} vs {acc_16}"
    );
    assert!(
        acc_8 < acc_16,
        "8-bit ({acc_8}) should fall below 16-bit ({acc_16})"
    );
}

#[test]
fn section_vi_claim_eie_beats_roofline_gpu_per_frame() {
    // At batch 1 the GPU is bandwidth-bound; EIE's compressed SRAM
    // execution must beat it on the same (scaled) layer.
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 8);
    let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(16), &layer.weights);
    let result = model
        .infer(BackendKind::CycleAccurate)
        .submit_one(&layer.sample_activations(DEFAULT_SEED));
    let gpu = Platform::titan_x().roofline.unwrap();
    let gpu_us = gpu.dense_time_us(layer.weights.rows(), layer.weights.cols(), 1);
    assert!(
        result.time_us() < gpu_us,
        "EIE {} µs should beat GPU dense {gpu_us} µs",
        result.time_us()
    );
}

#[test]
fn discussion_claim_output_locality() {
    // §VII-A: with row interleaving, each output is produced by exactly
    // one PE (full locality for b) — no cross-PE reduction exists.
    // Verified structurally: every global row maps to exactly one
    // (pe, local) pair.
    let layer = Benchmark::Alex8.generate_scaled(DEFAULT_SEED, 16);
    let enc = compress(&layer.weights, CompressConfig::with_pes(8));
    let mut owners = vec![0u32; enc.rows()];
    for pe in 0..enc.num_pes() {
        for local in 0..enc.slice(pe).local_rows() {
            owners[enc.global_row(pe, local)] += 1;
        }
    }
    assert!(owners.iter().all(|&c| c == 1));
}
