//! Convolution-on-EIE integration (paper §VII-C): the 1×1 and Winograd
//! reductions must produce the same results through the cycle simulator
//! as through the f32 reference on the compressed weights.

use eie::compress::prune::prune_to_density;
use eie::nn::conv::{conv1x1, FeatureMap, WinogradConv3x3};
use eie::prelude::*;

fn relu_map(ch: usize, h: usize, w: usize) -> FeatureMap {
    FeatureMap::from_fn(ch, h, w, |c, y, x| {
        let v = ((c * 11 + y * 3 + x * 7) as f32 * 0.29).sin();
        if v > 0.0 {
            v
        } else {
            0.0
        }
    })
}

#[test]
fn conv1x1_on_eie_matches_reference() {
    let (out_ch, in_ch) = (12usize, 16usize);
    let w = Matrix::from_fn(out_ch, in_ch, |r, c| ((r * 5 + c) as f32 * 0.23).sin());
    let pruned = prune_to_density(&w, 0.3);
    let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &pruned);
    let job = model.infer(BackendKind::CycleAccurate);

    let input = relu_map(in_ch, 5, 6);
    let reference = conv1x1(&model.layer(0).decode().to_dense(), &input);
    for y in 0..input.height() {
        for x in 0..input.width() {
            let got = job.submit_one(&input.pixel_channels(y, x)).outputs_f32(0);
            for (oc, &v) in got.iter().enumerate() {
                assert!(
                    (v - reference.get(oc, y, x)).abs() < 0.25,
                    "pixel ({y},{x}) channel {oc}: {v} vs {}",
                    reference.get(oc, y, x)
                );
            }
        }
    }
}

#[test]
fn winograd_on_eie_matches_reference() {
    let (out_ch, in_ch) = (8usize, 6usize);
    let kernels: Vec<Vec<[f32; 9]>> = (0..out_ch)
        .map(|oc| {
            (0..in_ch)
                .map(|ic| {
                    let mut k = [0.0f32; 9];
                    for (i, v) in k.iter_mut().enumerate() {
                        *v = ((oc * 37 + ic * 13 + i) as f32 * 0.17).sin() * 0.4;
                    }
                    k
                })
                .collect()
        })
        .collect();
    let conv = WinogradConv3x3::from_kernels(&kernels);
    let config = EieConfig::default().with_num_pes(4);
    let models: Vec<CompiledModel> = (0..16)
        .map(|pos| {
            let pruned = prune_to_density(conv.position_matrix(pos / 4, pos % 4), 0.5);
            CompiledModel::compile_layer(config, &pruned)
        })
        .collect();

    let input = relu_map(in_ch, 6, 6);
    let on_eie = conv.forward_with(&input, |pos, v| {
        models[pos]
            .infer(BackendKind::CycleAccurate)
            .submit_one(v)
            .outputs_f32(0)
    });
    let reference = conv.forward_with(&input, |pos, v| models[pos].layer(0).spmv_f32(v));
    for c in 0..on_eie.channels() {
        for y in 0..on_eie.height() {
            for x in 0..on_eie.width() {
                let (a, b) = (on_eie.get(c, y, x), reference.get(c, y, x));
                assert!((a - b).abs() < 0.3, "({c},{y},{x}): {a} vs {b}");
            }
        }
    }
}

#[test]
fn winograd_exploits_dynamic_sparsity() {
    // Post-ReLU inputs mean many transformed-tile vector entries are
    // linear combinations of zeros; the simulator should broadcast fewer
    // activations than the vector length on at least some positions.
    let in_ch = 8usize;
    let kernels: Vec<Vec<[f32; 9]>> = vec![(0..in_ch)
        .map(|ic| {
            let mut k = [0.0f32; 9];
            k[4] = 1.0 + ic as f32 * 0.1;
            k
        })
        .collect()];
    let conv = WinogradConv3x3::from_kernels(&kernels);
    // Position (1,1) mixes all kernel taps (G row 1 = [1/2,1/2,1/2]), so
    // its U matrix is dense even for center-only kernels.
    let model = CompiledModel::compile_layer(
        EieConfig::default().with_num_pes(2),
        &prune_to_density(conv.position_matrix(1, 1), 0.9),
    );

    // A mostly-zero input map → mostly-zero transformed vectors.
    let input = FeatureMap::from_fn(in_ch, 4, 4, |c, y, x| {
        if c == 0 && y == 1 && x == 1 {
            1.0
        } else {
            0.0
        }
    });
    let v = conv.input_tile_vectors(&input, 0, 0);
    let run = model.infer(BackendKind::CycleAccurate).submit_one(&v[5]); // position (1,1)
    let stats = run.stats(0).expect("cycle backend");
    assert!(
        stats.broadcasts < in_ch as u64,
        "expected sparse broadcast, got {} of {}",
        stats.broadcasts,
        in_ch
    );
}
