//! The model-lifecycle acceptance test: a zoo model compiled to a
//! `.eie` file and reloaded must produce **bit-exact** outputs versus
//! the in-process compile on all three backends, and corrupt /
//! truncated / version-mismatched files must be rejected with typed
//! errors. (Runs in CI as part of the tier-1 suite.)

use eie::prelude::*;
use eie::{MODEL_MAGIC, MODEL_VERSION};

fn zoo_model() -> CompiledModel {
    zoo_model_with_codec(WeightCodecKind::CscNibble)
}

fn zoo_model_with_codec(codec: WeightCodecKind) -> CompiledModel {
    CompiledModel::from_zoo(
        Benchmark::Alex7,
        EieConfig::default().with_num_pes(8).with_codec(codec),
        DEFAULT_SEED,
        32,
    )
}

#[test]
fn saved_zoo_model_runs_bit_exactly_on_all_three_backends() {
    let model = zoo_model();
    let path = std::env::temp_dir().join("eie_model_artifact_acceptance.eie");
    model.save(&path).expect("save");
    let loaded = CompiledModel::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, model, "save → load must be the identity");
    assert_eq!(loaded.name(), "Alex-7 1/32");

    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 32);
    let batch = layer.sample_activation_batch(DEFAULT_SEED, 3);
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    for kind in [
        BackendKind::CycleAccurate,
        BackendKind::Functional,
        BackendKind::NativeCpu(2),
    ] {
        let result = loaded.infer(kind).submit(&batch);
        for i in 0..batch.len() {
            assert_eq!(
                result.outputs(i),
                golden.outputs(i),
                "{kind} diverged from the in-process compile at item {i}"
            );
        }
    }
}

#[test]
fn container_starts_with_magic_and_version() {
    // The default codec keeps the historical version-1 container, byte
    // for byte; non-default codecs bump to the current version.
    let bytes = zoo_model().to_bytes();
    assert_eq!(&bytes[..4], &MODEL_MAGIC);
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);

    let bytes = zoo_model_with_codec(WeightCodecKind::HuffmanPacked).to_bytes();
    assert_eq!(&bytes[..4], &MODEL_MAGIC);
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), MODEL_VERSION);
}

#[test]
fn version_1_artifacts_load_as_csc_nibble() {
    let model = zoo_model();
    let loaded = CompiledModel::from_bytes(&model.to_bytes()).expect("v1 loads");
    assert_eq!(loaded.config().codec, WeightCodecKind::CscNibble);
    assert_eq!(loaded, model);
}

#[test]
fn every_codec_roundtrips_the_zoo_model_bit_exactly() {
    let golden_model = zoo_model();
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 32);
    let batch = layer.sample_activation_batch(DEFAULT_SEED, 3);
    let golden = golden_model.infer(BackendKind::Functional).submit(&batch);
    for codec in WeightCodecKind::ALL {
        let model = zoo_model_with_codec(codec);
        let loaded = CompiledModel::from_bytes(&model.to_bytes()).expect("roundtrip");
        assert_eq!(loaded, model, "{codec}");
        assert_eq!(loaded.config().codec, codec);
        for kind in [
            BackendKind::CycleAccurate,
            BackendKind::Functional,
            BackendKind::NativeCpu(2),
        ] {
            let result = loaded.infer(kind).submit(&batch);
            for i in 0..batch.len() {
                assert_eq!(
                    result.outputs(i),
                    golden.outputs(i),
                    "{codec} on {kind} diverged from golden at item {i}"
                );
            }
        }
    }
}

#[test]
fn unknown_codec_id_is_a_typed_error_not_a_panic() {
    let model = zoo_model_with_codec(WeightCodecKind::BitPlane);
    let mut bytes = model.to_bytes();
    // First layer record: preamble (16) + config (28) + name_len (2) +
    // name + num_layers (4); its first byte is the codec id.
    let pos = 16 + 28 + 2 + model.name().len() + 4;
    assert_eq!(bytes[pos], WeightCodecKind::BitPlane.id());
    bytes[pos] = 0xEE;
    // Re-seal the payload CRC so the codec check itself is reached.
    let crc = crc32(&bytes[16..]);
    bytes[12..16].copy_from_slice(&crc.to_le_bytes());
    match CompiledModel::from_bytes(&bytes) {
        Err(ModelArtifactError::UnknownCodec { index, id }) => {
            assert_eq!((index, id), (0, 0xEE));
        }
        other => panic!("expected UnknownCodec, got {other:?}"),
    }
}

/// CRC-32/IEEE, duplicated from the artifact module so tests can re-seal
/// deliberately patched payloads.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[test]
fn corrupt_files_are_rejected_with_typed_errors() {
    let bytes = zoo_model().to_bytes();

    // Bit flip in the payload → checksum mismatch.
    let mut corrupt = bytes.clone();
    let mid = 16 + (corrupt.len() - 16) / 2;
    corrupt[mid] ^= 0x40;
    assert!(matches!(
        CompiledModel::from_bytes(&corrupt),
        Err(ModelArtifactError::ChecksumMismatch { .. })
    ));

    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] = b'Z';
    assert!(matches!(
        CompiledModel::from_bytes(&wrong),
        Err(ModelArtifactError::BadMagic)
    ));

    // Future version.
    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&(MODEL_VERSION + 7).to_le_bytes());
    match CompiledModel::from_bytes(&future) {
        Err(ModelArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, MODEL_VERSION + 7);
            assert_eq!(supported, MODEL_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }

    // Truncation at many prefix lengths → typed truncation, never a panic.
    for frac in [1usize, 3, 10, 30, 95] {
        let cut = bytes.len() * frac / 100;
        assert!(
            matches!(
                CompiledModel::from_bytes(&bytes[..cut]),
                Err(ModelArtifactError::Truncated { .. })
            ),
            "prefix of {cut} bytes not rejected as truncated"
        );
    }
}

#[test]
fn error_messages_are_actionable() {
    let err = CompiledModel::from_bytes(b"EIEMxx").unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());

    let mut bytes = zoo_model().to_bytes();
    bytes[20] ^= 0xFF; // payload corruption
    let msg = CompiledModel::from_bytes(&bytes).unwrap_err().to_string();
    assert!(msg.contains("CRC") || msg.contains("corrupt"), "{msg}");
}

#[test]
fn multi_layer_and_shared_codebook_artifacts_roundtrip() {
    let w1 = random_sparse(48, 32, 0.2, 11);
    let w2 = random_sparse(24, 48, 0.2, 12);
    let config = EieConfig::default().with_num_pes(4);
    for shared in [false, true] {
        let model = if shared {
            CompiledModel::compile_shared_codebook(config, &[&w1, &w2])
        } else {
            CompiledModel::compile(config, &[&w1, &w2])
        };
        assert_eq!(model.has_shared_codebook(), shared);
        let loaded = CompiledModel::from_bytes(&model.to_bytes()).expect("roundtrip");
        assert_eq!(loaded, model);
        let batch = vec![vec![0.25f32; 32]; 2];
        let a = model.infer(BackendKind::NativeCpu(1)).submit(&batch);
        let b = loaded.infer(BackendKind::NativeCpu(1)).submit(&batch);
        for i in 0..batch.len() {
            assert_eq!(a.outputs(i), b.outputs(i), "shared={shared}");
        }
    }
}
