//! Multi-layer network execution across crates: the accelerator's
//! source/destination register swap (§IV) against a host-side reference.

use eie::prelude::*;

/// Builds a small MLP-like stack of sparse layers.
fn stack(seed: u64) -> (Vec<CsrMatrix>, Vec<f32>) {
    let l1 = random_sparse(48, 64, 0.2, seed);
    let l2 = random_sparse(32, 48, 0.25, seed + 1);
    let l3 = random_sparse(10, 32, 0.4, seed + 2);
    let input = eie::nn::zoo::sample_activations(64, 0.5, false, seed + 3);
    (vec![l1, l2, l3], input)
}

/// Host-side reference: the same quantized network computed layer by
/// layer with f32 accumulation on the codebook-quantized weights.
fn reference_forward(encoded: &[EncodedLayer], input: &[f32]) -> Vec<f32> {
    let mut acts: Vec<f32> = input.iter().map(|&a| Q8p8::from_f32(a).to_f32()).collect();
    for (i, layer) in encoded.iter().enumerate() {
        let mut y = layer.spmv_f32(&acts);
        if i + 1 < encoded.len() {
            eie::nn::ops::relu_inplace(&mut y);
        }
        // Layer boundaries quantize to Q8.8 in hardware.
        for v in y.iter_mut() {
            *v = Q8p8::from_f32(*v).to_f32();
        }
        acts = y;
    }
    acts
}

#[test]
fn network_matches_reference_within_fixed_point_error() {
    let (layers, input) = stack(100);
    let refs: Vec<&CsrMatrix> = layers.iter().collect();
    let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &refs);

    let net = model.infer(BackendKind::CycleAccurate).submit_one(&input);
    let expected = reference_forward(model.layers(), &input);

    for (i, (got, want)) in net
        .outputs(0)
        .iter()
        .map(|v| v.to_f32())
        .zip(&expected)
        .enumerate()
    {
        // Three layers of quantization accumulate error; 0.75 in Q8.8
        // units is ~192 LSBs over three ~200-term accumulations.
        assert!((got - want).abs() < 0.75, "output {i}: {got} vs {want}");
    }
}

#[test]
fn network_stats_merge_all_layers() {
    let (layers, input) = stack(200);
    let refs: Vec<&CsrMatrix> = layers.iter().collect();
    let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &refs);

    let net = model.infer(BackendKind::CycleAccurate).submit_one(&input);
    assert_eq!(net.layer_phases().len(), 3);
    let total = net.merged_stats().expect("cycle backend");
    let cycles_sum: u64 = net
        .layer_phases()
        .iter()
        .map(|p| p.stats.as_ref().unwrap().total_cycles)
        .sum();
    assert_eq!(total.total_cycles, cycles_sum);
    let macs_sum: u64 = net
        .layer_phases()
        .iter()
        .map(|p| p.stats.as_ref().unwrap().total_macs())
        .sum();
    assert_eq!(total.total_macs(), macs_sum);
}

#[test]
fn relu_between_layers_sparsifies_activations() {
    // The ReLU boundary creates the dynamic sparsity the next layer
    // exploits: its broadcast count must be below its input length.
    let (layers, input) = stack(300);
    let refs: Vec<&CsrMatrix> = layers.iter().collect();
    let model = CompiledModel::compile(EieConfig::default().with_num_pes(2), &refs);

    let net = model.infer(BackendKind::CycleAccurate).submit_one(&input);
    let second = net.layer_stats(1).expect("cycle backend");
    assert!(
        second.broadcasts < model.layer(1).cols() as u64,
        "ReLU produced no zeros? broadcasts {} of {}",
        second.broadcasts,
        model.layer(1).cols()
    );
}

#[test]
fn lstm_cell_runs_on_accelerated_gates() {
    // The NT-LSTM decomposition: gate M×V on EIE, element-wise on host.
    let hidden = 12;
    let input_dim = 12;
    let gate_w = random_sparse(4 * hidden, input_dim + hidden + 1, 0.3, 9);
    let cell = LstmCell::new(gate_w.to_dense(), hidden);

    let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &gate_w);
    let job = model.infer(BackendKind::CycleAccurate);

    let x: Vec<f32> = (0..input_dim).map(|i| ((i as f32) * 0.3).sin()).collect();
    let mut state_accel = LstmState::zeros(hidden);
    let mut state_host = LstmState::zeros(hidden);
    for _ in 0..3 {
        // Accelerated: gate pre-activations from the simulator.
        let gate_in = cell.concat_input(&x, &state_accel.h);
        let z = job.submit_one(&gate_in);
        state_accel = cell.apply_gates(&z.outputs_f32(0), &state_accel);
        // Host reference on the quantized weights.
        let z_ref = model
            .layer(0)
            .spmv_f32(&cell.concat_input(&x, &state_host.h));
        state_host = cell.apply_gates(&z_ref, &state_host);
    }
    for (a, b) in state_accel.h.iter().zip(&state_host.h) {
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }
}
