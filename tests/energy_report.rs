//! Energy model integration: simulator activity priced by the PE model
//! must reproduce the paper's structural energy claims.

use eie::prelude::*;

fn run_benchmark(pes: usize) -> JobResult {
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 8); // 512×512
    let model =
        CompiledModel::compile_layer(EieConfig::default().with_num_pes(pes), &layer.weights);
    model
        .infer(BackendKind::CycleAccurate)
        .submit_one(&layer.sample_activations(DEFAULT_SEED))
}

#[test]
fn components_sum_to_total() {
    let result = run_benchmark(16);
    let rows = result.energy().expect("cycle backend").rows();
    let sum: f64 = rows.iter().map(|r| r.1).sum();
    assert!((sum - result.energy().unwrap().total_nj()).abs() < 1e-9);
    let share_sum: f64 = rows.iter().map(|r| r.2).sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
}

#[test]
fn sram_dominates_layer_energy() {
    // The paper's core claim: memory access dominates (59% of PE power
    // is memory in Table II; activity-priced runs should be in the same
    // regime).
    let result = run_benchmark(16);
    let e = result.energy().expect("cycle backend");
    let mem = e.spmat_nj + e.ptr_nj;
    let frac = mem / e.total_nj();
    assert!(frac > 0.4, "memory fraction only {frac:.2}");
}

#[test]
fn average_power_is_pe_scale() {
    // Per-PE average power during a run should be within a small factor
    // of Table II's 9.157 mW (exact value depends on utilization and
    // column lengths).
    let result = run_benchmark(16);
    let per_pe_mw = result.average_power_w().expect("cycle backend") * 1000.0 / 16.0;
    assert!(
        (2.0..60.0).contains(&per_pe_mw),
        "per-PE power {per_pe_mw} mW out of physical range"
    );
}

#[test]
fn energy_scales_with_work_not_pes() {
    // The same layer on more PEs takes less time but similar energy
    // (same MACs, same SRAM traffic) — the scalability argument of
    // §VII-B. Leakage and per-column overheads allow some growth.
    let e4 = run_benchmark(4).energy().unwrap().total_nj();
    let e16 = run_benchmark(16).energy().unwrap().total_nj();
    let ratio = e16 / e4;
    assert!(
        (0.5..2.0).contains(&ratio),
        "energy changed {ratio}x from 4 to 16 PEs"
    );
}

#[test]
fn time_and_energy_consistent_with_power() {
    let result = run_benchmark(8);
    let p = result.average_power_w().expect("cycle backend");
    let t = result.time_us() * 1e-6;
    let e = result.energy().unwrap().total_nj() * 1e-9;
    assert!((p * t - e).abs() / e < 1e-9, "P*t != E");
}

#[test]
fn dram_free_operation() {
    // Everything EIE touches is on-chip; the energy report must contain
    // no DRAM term at all — the 120x saving of the paper's §I is
    // structural, not incidental. (Compile-time check by construction:
    // the report has no DRAM field; this test documents the invariant
    // by pricing a run and listing its components.)
    let result = run_benchmark(8);
    let names: Vec<&str> = result
        .energy()
        .unwrap()
        .rows()
        .iter()
        .map(|r| r.0)
        .collect();
    assert!(!names.iter().any(|n| n.contains("DRAM")));
    assert_eq!(names.len(), 7);
}
