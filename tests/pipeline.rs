//! End-to-end pipeline integration: generate → compress → simulate →
//! verify, for every Table III benchmark (scaled for test speed).

use eie::prelude::*;

/// Compress and simulate one benchmark at 1/32 scale; verify outputs
/// against both the bit-exact functional model and the f32 reference.
fn verify_benchmark(benchmark: Benchmark, pes: usize) {
    let layer = benchmark.generate_scaled(DEFAULT_SEED, 32);
    let model =
        CompiledModel::compile_layer(EieConfig::default().with_num_pes(pes), &layer.weights);
    let encoded = model.layer(0);
    let acts = layer.sample_activations(DEFAULT_SEED);

    let result = model.infer(BackendKind::CycleAccurate).submit_one(&acts);

    // 1. Bit-exact vs the functional golden model.
    let acts_q: Vec<Q8p8> = acts.iter().map(|&a| Q8p8::from_f32(a)).collect();
    let golden = functional::execute(encoded, &acts_q, false);
    assert_eq!(
        result.outputs(0),
        golden,
        "{benchmark}: cycle != functional"
    );

    // 2. Close to the f32 reference on the quantized matrix.
    let reference = encoded.spmv_f32(&acts);
    for (i, (got, want)) in result.outputs_f32(0).iter().zip(&reference).enumerate() {
        assert!(
            (got - want).abs() < 0.5,
            "{benchmark} row {i}: {got} vs {want}"
        );
    }

    // 3. The encoding round-trips.
    assert_eq!(encoded.decode().nnz(), layer.weights.nnz(), "{benchmark}");

    // 4. Sanity on the stats.
    let stats = result.stats(0).expect("cycle backend records activity");
    assert!(stats.total_cycles > 0, "{benchmark}");
    assert!(
        stats.total_cycles >= stats.theoretical_cycles(),
        "{benchmark}"
    );
    let eff = stats.load_balance_efficiency();
    assert!((0.0..=1.0).contains(&eff), "{benchmark}: efficiency {eff}");
}

#[test]
fn alex6_pipeline() {
    verify_benchmark(Benchmark::Alex6, 8);
}

#[test]
fn alex7_pipeline() {
    verify_benchmark(Benchmark::Alex7, 8);
}

#[test]
fn alex8_pipeline() {
    verify_benchmark(Benchmark::Alex8, 8);
}

#[test]
fn vgg6_pipeline() {
    verify_benchmark(Benchmark::Vgg6, 8);
}

#[test]
fn vgg7_pipeline() {
    verify_benchmark(Benchmark::Vgg7, 8);
}

#[test]
fn vgg8_pipeline() {
    verify_benchmark(Benchmark::Vgg8, 8);
}

#[test]
fn ntwe_pipeline() {
    verify_benchmark(Benchmark::NtWe, 8);
}

#[test]
fn ntwd_pipeline() {
    verify_benchmark(Benchmark::NtWd, 8);
}

#[test]
fn ntlstm_pipeline() {
    verify_benchmark(Benchmark::NtLstm, 8);
}

#[test]
fn pipeline_works_at_odd_pe_counts() {
    for pes in [1, 3, 5, 7, 13] {
        verify_benchmark(Benchmark::Alex7, pes);
    }
}

#[test]
fn prune_compress_simulate_from_dense() {
    // The quickstart path: dense weights → prune → compress → simulate.
    let dense = Matrix::from_fn(96, 128, |r, c| ((r * 131 + c * 7) as f32 * 0.01).sin());
    let pruned = eie::compress::prune::prune_to_density(&dense, 0.15);
    assert!((pruned.density() - 0.15).abs() < 0.02);

    let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &pruned);
    let acts = eie::nn::zoo::sample_activations(128, 0.5, false, 3);
    let result = model.infer(BackendKind::CycleAccurate).submit_one(&acts);

    let reference = model.layer(0).spmv_f32(&acts);
    for (got, want) in result.outputs_f32(0).iter().zip(&reference) {
        assert!((got - want).abs() < 0.25, "{got} vs {want}");
    }
}

#[test]
fn compression_ratio_in_paper_ballpark() {
    // The paper stores AlexNet-class layers at roughly 10x below dense
    // f32 before Huffman; verify the full-pipeline ratio is in that
    // regime for a 9%-dense layer.
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 8);
    let config = EieConfig::default().with_num_pes(16);
    let encoded = config.pipeline().compile_matrix(&layer.weights);
    let ratio = encoded.stats().compression_ratio();
    assert!((5.0..50.0).contains(&ratio), "ratio {ratio}");
}
