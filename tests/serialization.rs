//! Layer-image serialization through the public API: the I/O-mode path
//! (DMA payload → validate → simulate).

use eie::compress::{DecodeLayerError, EncodedLayer};
use eie::prelude::*;

fn sample_layer() -> (EncodedLayer, Vec<f32>) {
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 32);
    let config = EieConfig::default().with_num_pes(4);
    let enc = config.pipeline().compile_matrix(&layer.weights);
    (enc, layer.sample_activations(DEFAULT_SEED))
}

#[test]
fn serialized_layer_simulates_identically() {
    let (enc, acts) = sample_layer();
    let bytes = enc.to_bytes();
    let loaded = EncodedLayer::from_bytes(&bytes).expect("valid image");

    let cfg = SimConfig::default();
    let a = simulate(&enc, &acts, &cfg);
    let b = simulate(&loaded, &acts, &cfg);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn image_is_deterministic() {
    let (enc, _) = sample_layer();
    assert_eq!(enc.to_bytes(), enc.to_bytes());
}

#[test]
fn image_is_much_smaller_than_dense() {
    let (enc, _) = sample_layer();
    let dense_bytes = enc.rows() * enc.cols() * 4;
    let image = enc.to_bytes();
    assert!(
        image.len() * 4 < dense_bytes,
        "image {} vs dense {}",
        image.len(),
        dense_bytes
    );
}

#[test]
fn bitflips_never_panic_and_mostly_get_caught() {
    // Failure injection over the wire format: flip bytes across the image
    // and require a clean Err or a still-valid layer — never a panic.
    let (enc, _) = sample_layer();
    let bytes = enc.to_bytes();
    let mut caught = 0usize;
    let mut survived = 0usize;
    let stride = (bytes.len() / 97).max(1);
    for pos in (0..bytes.len()).step_by(stride) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xA5;
        match EncodedLayer::from_bytes(&corrupt) {
            Err(_) => caught += 1,
            Ok(layer) => {
                // A flip in codebook values or entry codes can produce a
                // different-but-valid layer; it must still validate.
                layer.validate().expect("decoded layer must be valid");
                survived += 1;
            }
        }
    }
    assert!(caught > 0, "no corruption was ever caught");
    // Most flips land in structural fields and must be rejected.
    assert!(
        caught + survived > 0 && caught * 3 >= survived,
        "caught {caught}, silently survived {survived}"
    );
}

#[test]
fn truncation_reports_offset() {
    let (enc, _) = sample_layer();
    let bytes = enc.to_bytes();
    match EncodedLayer::from_bytes(&bytes[..bytes.len() / 3]) {
        Err(DecodeLayerError::Truncated { offset, .. }) => {
            assert!(offset <= bytes.len() / 3);
        }
        other => panic!("expected truncation error, got {other:?}"),
    }
}
