//! A tiny, dependency-free command-line option scanner.
//!
//! Supports `--flag`, `--key value`, `--key=value` and positional
//! operands, with typed extraction and "unknown option" detection. This
//! is deliberately minimal — the `eie` tool has four small subcommands
//! and the workspace builds offline, so a vendored `clap` would be all
//! cost and no benefit.

use std::str::FromStr;

/// Scanner over a subcommand's raw arguments.
pub struct Opts {
    raw: Vec<String>,
}

impl Opts {
    /// Wraps the arguments following the subcommand name.
    pub fn new(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// True when `--help`/`-h` appears anywhere.
    pub fn wants_help(&self) -> bool {
        self.raw.iter().any(|a| a == "--help" || a == "-h")
    }

    /// Consumes a boolean `--name` flag; returns whether it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.raw.iter().position(|a| a == name) {
            self.raw.remove(i);
            true
        } else {
            false
        }
    }

    /// Consumes `--name value` or `--name=value` (the last occurrence
    /// wins if repeated). `aliases` lets `-o` stand for `--output`.
    pub fn value(&mut self, names: &[&str]) -> Result<Option<String>, String> {
        let mut found = None;
        while let Some(i) = self.raw.iter().position(|a| {
            names.contains(&a.as_str())
                || names
                    .iter()
                    .any(|n| a.starts_with(n) && a[n.len()..].starts_with('='))
        }) {
            let arg = self.raw.remove(i);
            found = Some(if let Some(eq) = arg.find('=') {
                arg[eq + 1..].to_string()
            } else {
                if i >= self.raw.len() || self.raw[i].starts_with("--") {
                    return Err(format!("option {arg} needs a value"));
                }
                self.raw.remove(i)
            });
        }
        Ok(found)
    }

    /// Consumes every `--name value` / `--name=value` occurrence, in
    /// command-line order — for repeatable options like
    /// `--model name=path --model name=path`.
    pub fn values(&mut self, names: &[&str]) -> Result<Vec<String>, String> {
        let mut found = Vec::new();
        while let Some(i) = self.raw.iter().position(|a| {
            names.contains(&a.as_str())
                || names
                    .iter()
                    .any(|n| a.starts_with(n) && a[n.len()..].starts_with('='))
        }) {
            let arg = self.raw.remove(i);
            found.push(if let Some(eq) = arg.find('=') {
                arg[eq + 1..].to_string()
            } else {
                if i >= self.raw.len() || self.raw[i].starts_with("--") {
                    return Err(format!("option {arg} needs a value"));
                }
                self.raw.remove(i)
            });
        }
        Ok(found)
    }

    /// Consumes `--name value` and parses it.
    pub fn parsed<T: FromStr>(&mut self, names: &[&str]) -> Result<Option<T>, String> {
        match self.value(names)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {:?} for {}", v, names[0])),
        }
    }

    /// Finishes scanning: everything left must be positional (no `--`
    /// options), and there must be at most `max` of them.
    pub fn finish(self, max: usize) -> Result<Vec<String>, String> {
        if let Some(unknown) = self.raw.iter().find(|a| a.starts_with('-')) {
            return Err(format!("unknown option {unknown}"));
        }
        if self.raw.len() > max {
            return Err(format!("unexpected argument {:?}", self.raw[max]));
        }
        Ok(self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        Opts::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_values_and_positionals() {
        let mut o = opts(&[
            "model.eie",
            "--batch",
            "8",
            "--verify",
            "--backend=native:2",
        ]);
        assert!(o.flag("--verify"));
        assert!(!o.flag("--verify"));
        assert_eq!(o.parsed::<usize>(&["--batch"]).unwrap(), Some(8));
        assert_eq!(
            o.value(&["--backend"]).unwrap(),
            Some("native:2".to_string())
        );
        assert_eq!(o.finish(1).unwrap(), vec!["model.eie".to_string()]);
    }

    #[test]
    fn aliases_and_errors() {
        let mut o = opts(&["-o", "out.eie"]);
        assert_eq!(
            o.value(&["--output", "-o"]).unwrap(),
            Some("out.eie".to_string())
        );

        let mut o = opts(&["--pes"]);
        assert!(o.value(&["--pes"]).unwrap_err().contains("needs a value"));

        let mut o = opts(&["--bogus"]);
        assert!(!o.flag("--known"));
        assert!(o.finish(0).unwrap_err().contains("unknown option"));

        let mut o = opts(&["--batch", "x"]);
        assert!(o.parsed::<usize>(&["--batch"]).is_err());

        let o = opts(&["a", "b"]);
        assert!(o.finish(1).unwrap_err().contains("unexpected argument"));
    }

    #[test]
    fn values_collects_every_occurrence_in_order() {
        let mut o = opts(&[
            "--model",
            "a=a.eie",
            "--model=b=b.eie",
            "run",
            "--model",
            "c",
        ]);
        assert_eq!(
            o.values(&["--model"]).unwrap(),
            vec![
                "a=a.eie".to_string(),
                "b=b.eie".to_string(),
                "c".to_string()
            ]
        );
        assert_eq!(o.values(&["--model"]).unwrap(), Vec::<String>::new());
        assert_eq!(o.finish(1).unwrap(), vec!["run".to_string()]);

        let mut o = opts(&["--model", "a=a.eie", "--model"]);
        assert!(o
            .values(&["--model"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn help_detection() {
        assert!(opts(&["--help"]).wants_help());
        assert!(opts(&["run", "-h"]).wants_help());
        assert!(!opts(&["run"]).wants_help());
    }
}
