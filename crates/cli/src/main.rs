//! `eie` — the model-lifecycle command-line tool.
//!
//! The `.eie` artifact is the deployment unit of this reproduction:
//! compress once, then inspect/run/bench the same file anywhere. Four
//! subcommands cover that lifecycle:
//!
//! ```text
//! eie compress --zoo alex7 -o model.eie     build a versioned artifact
//! eie inspect model.eie                     headers, layers, footprint
//! eie run model.eie --backend native        run a batch from the file
//! eie bench model.eie --iters 10            load + batch throughput
//! eie serve model.eie --qps 2000            live serving under load:
//!                                           micro-batching, p50/p95/p99
//! eie serve --listen 127.0.0.1:7070 \
//!           --model fc6=a.eie --model fc7=b.eie
//!                                           network node: multi-model
//!                                           registry over TCP
//! eie serve --connect 127.0.0.1:7070 \
//!           --model fc6=a.eie --verify      load-generator client
//! ```
//!
//! Every subcommand takes `--help`. Exit codes: `0` success, `1`
//! runtime failure (unreadable/corrupt artifact, failed verification),
//! `2` usage error.

mod commands;
mod opts;

use std::process::ExitCode;

use opts::Opts;

/// `println!` replacement that tolerates a closed stdout: piping into `head` (or any
/// reader that stops early) must not panic the process with a broken
/// pipe — it would break the documented 0/1/2 exit-code contract.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}
pub(crate) use outln;

const USAGE: &str = "eie — compress, inspect, run and bench EIE model artifacts

USAGE:
    eie <COMMAND> [OPTIONS]

COMMANDS:
    compress    Compile a model into a versioned .eie artifact
    inspect     Print an artifact's header, topology and footprint
    run         Load an artifact and run a batch on a backend
    bench       Measure artifact load and batch throughput
    serve       Serve artifacts under load: local self-driving mode,
                --listen (multi-model TCP node with LRU registry), or
                --connect (concurrent load-generator client)

Run `eie <COMMAND> --help` for per-command options.";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        outln!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args[0] == "--version" || args[0] == "-V" {
        outln!("eie {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    let opts = Opts::new(args);
    let result = match command.as_str() {
        "compress" => commands::compress::run(opts),
        "inspect" => commands::inspect::run(opts),
        "run" => commands::run::run(opts),
        "bench" => commands::bench::run(opts),
        "serve" => commands::serve::run(opts),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// A subcommand failure, split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (exit 2): unknown option, missing operand…
    Usage(String),
    /// The work itself failed (exit 1): I/O, corrupt artifact,
    /// verification mismatch…
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        // Option-scanner errors are usage errors.
        CliError::Usage(msg)
    }
}
