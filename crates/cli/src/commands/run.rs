//! `eie run` — load an artifact and serve a batch on a backend.

use eie_core::BackendKind;

use crate::commands::{load_model, parse_backend, parse_layout, sample_batch};
use crate::opts::Opts;
use crate::outln;
use crate::CliError;

const HELP: &str = "eie run — load a .eie artifact and serve a batch

USAGE:
    eie run <MODEL.eie> [OPTIONS]

OPTIONS:
    --backend <B>     cycle | functional | native[:threads] | streaming[:threads]
                      [default: native]
    --batch <N>       Batch size [default: 4]
    --shards <S>      Split each native dispatch into S row shards
                      (native backend only)
    --stages <N|auto> Pipeline the layer stack into N stages, `auto` =
                      one stage per layer (native backend only)
    --lane-tile <N>   Override the plan's lane-tile column width
                      (native backend only)
    --density <D>     Input activation density in [0, 1] [default: 0.35]
    --signed          Sample signed activations (embedding/LSTM inputs)
    --seed <N>        Input sampling seed [default: 1]
    --verify          Also run the functional golden model and require
                      bit-exact agreement (exit 1 on divergence)
    -h, --help        Show this help";

pub fn run(mut opts: Opts) -> Result<(), CliError> {
    if opts.wants_help() {
        outln!("{HELP}");
        return Ok(());
    }
    let backend = match opts.value(&["--backend"])? {
        Some(name) => parse_backend(&name)?,
        None => BackendKind::NativeCpu(0),
    };
    let (topology, lane_tile) = parse_layout(&mut opts, backend)?;
    let batch_size: usize = opts.parsed(&["--batch"])?.unwrap_or(4);
    let density: f64 = opts.parsed(&["--density"])?.unwrap_or(0.35);
    let signed = opts.flag("--signed");
    let seed: u64 = opts.parsed(&["--seed"])?.unwrap_or(1);
    let verify = opts.flag("--verify");
    let positional = opts.finish(1)?;
    let path = positional
        .first()
        .ok_or_else(|| CliError::Usage("run needs a model file (see --help)".into()))?;
    if batch_size == 0 {
        return Err(CliError::Usage("--batch must be positive".into()));
    }
    if !(0.0..=1.0).contains(&density) {
        return Err(CliError::Usage("--density must be in [0, 1]".into()));
    }

    let model = load_model(path)?;
    outln!("loaded    {model}");
    let batch = sample_batch(&model, batch_size, density, signed, seed);
    let mut job = model.infer(backend);
    if let Some(topology) = topology {
        outln!("layout    {topology}");
        job = job.topology(topology);
    }
    if let Some(tile) = lane_tile {
        job = job.lane_tile(tile);
    }
    let result = job.submit(&batch);
    outln!("served    {result}");
    if let Some(uj) = result.energy_per_frame_uj() {
        outln!("energy    {uj:.3} uJ/frame (modelled)");
    }

    if verify {
        let golden = model.infer(BackendKind::Functional).submit(&batch);
        for i in 0..batch.len() {
            if result.outputs(i) != golden.outputs(i) {
                return Err(CliError::Runtime(format!(
                    "verification FAILED: {backend} diverged from the functional \
                     golden model at batch item {i}"
                )));
            }
        }
        outln!(
            "verified  {} outputs bit-exact against the functional golden model",
            batch.len()
        );
    }
    Ok(())
}
