//! `eie compress` — build a versioned `.eie` artifact.

use eie_core::prelude::*;

use crate::opts::Opts;
use crate::outln;
use crate::CliError;

const HELP: &str = "eie compress — compile a model into a versioned .eie artifact

USAGE:
    eie compress --zoo <NAME> [OPTIONS]
    eie compress --layers <D0:D1:..:DN> --density <D> [OPTIONS]

MODEL SOURCE (exactly one):
    --zoo <NAME>          A Table III benchmark layer (alex6..8, vgg6..8,
                          nt-we, nt-wd, nt-lstm); names are case/punctuation
                          insensitive
    --layers <DIMS>       A synthetic feed-forward stack with the given
                          activation dimensions, e.g. 256:128:64 compiles
                          two layers (128x256 and 64x128); needs --density

OPTIONS:
    -o, --output <PATH>   Where to write the artifact [default: model.eie]
    --pes <N>             Processing elements [default: 64]
    --scale <N>           Divide zoo dimensions by N (1 = full size) [default: 1]
    --seed <N>            Generation seed [default: the zoo's 0xE1E]
    --density <D>         Weight density for --layers stacks (0 < D <= 1)
    --index-bits <N>      Relative-index width 1..=8 [default: 4]
    --codec <NAME>        Weight codec for the stored layer images:
                          csc-nibble (default, version-1 container),
                          huffman-packed, bit-plane; storage-only —
                          execution is bit-identical for every codec
    --shared-codebook     Fit one codebook shared by every layer
    --name <S>            Override the artifact's recorded model name
    -h, --help            Show this help";

pub fn run(mut opts: Opts) -> Result<(), CliError> {
    if opts.wants_help() {
        outln!("{HELP}");
        return Ok(());
    }
    let zoo = opts.value(&["--zoo"])?;
    let layers_spec = opts.value(&["--layers"])?;
    let output = opts
        .value(&["--output", "-o"])?
        .unwrap_or_else(|| "model.eie".to_string());
    let pes: usize = opts.parsed(&["--pes"])?.unwrap_or(64);
    let scale: usize = opts.parsed(&["--scale"])?.unwrap_or(1);
    let seed: u64 = opts.parsed(&["--seed"])?.unwrap_or(DEFAULT_SEED);
    let density: Option<f64> = opts.parsed(&["--density"])?;
    let index_bits: u32 = opts.parsed(&["--index-bits"])?.unwrap_or(4);
    let codec = match opts.value(&["--codec"])? {
        Some(name) => WeightCodecKind::from_name(&name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown codec {name:?} (try csc-nibble, huffman-packed or bit-plane)"
            ))
        })?,
        None => WeightCodecKind::CscNibble,
    };
    let shared = opts.flag("--shared-codebook");
    let name = opts.value(&["--name"])?;
    opts.finish(0)?;

    if pes == 0 || scale == 0 {
        return Err(CliError::Usage("--pes and --scale must be positive".into()));
    }
    if !(1..=8).contains(&index_bits) {
        return Err(CliError::Usage("--index-bits must be in 1..=8".into()));
    }
    let config = EieConfig::default()
        .with_num_pes(pes)
        .with_index_bits(index_bits)
        .with_codec(codec);

    let mut model = match (zoo, layers_spec) {
        (Some(zoo_name), None) => {
            if density.is_some() {
                // Zoo layers come at their Table III density; silently
                // ignoring --density would ship a 9x-off artifact.
                return Err(CliError::Usage(
                    "--density only applies to --layers stacks; zoo benchmarks use \
                     their Table III weight density"
                        .into(),
                ));
            }
            let benchmark = Benchmark::from_name(&zoo_name).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown zoo benchmark {zoo_name:?} (try alex7, vgg6, nt-lstm, ...)"
                ))
            })?;
            // A single zoo layer trivially satisfies --shared-codebook.
            CompiledModel::from_zoo(benchmark, config, seed, scale)
        }
        (None, Some(spec)) => compile_stack(&spec, config, density, shared, seed)?,
        _ => {
            return Err(CliError::Usage(
                "exactly one of --zoo or --layers is required (see --help)".into(),
            ))
        }
    };
    if let Some(name) = name {
        model = model.with_name(name);
    }

    model
        .save(&output)
        .map_err(|e| CliError::Runtime(format!("cannot write {output}: {e}")))?;
    let bytes = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    outln!("compiled  {model}");
    outln!(
        "saved     {output} ({bytes} bytes, {} layer{}, codec {codec}, container v{})",
        model.num_layers(),
        if model.num_layers() == 1 { "" } else { "s" },
        model.container_version(),
    );
    Ok(())
}

/// Compiles a random sparse stack from an `in:h1:..:out` dimension chain.
fn compile_stack(
    spec: &str,
    config: EieConfig,
    density: Option<f64>,
    shared: bool,
    seed: u64,
) -> Result<CompiledModel, CliError> {
    let density = density.ok_or_else(|| {
        CliError::Usage("--layers needs --density (weight density after pruning)".into())
    })?;
    if !(density > 0.0 && density <= 1.0) {
        return Err(CliError::Usage("--density must be in (0, 1]".into()));
    }
    let dims: Vec<usize> = spec
        .split(':')
        .map(|d| {
            d.parse::<usize>()
                .map_err(|_| format!("bad dimension {d:?} in --layers"))
        })
        .collect::<Result<_, _>>()
        .map_err(CliError::Usage)?;
    if dims.len() < 2 || dims.contains(&0) {
        return Err(CliError::Usage(
            "--layers needs at least two positive dimensions, e.g. 256:128:64".into(),
        ));
    }
    let weights: Vec<CsrMatrix> = dims
        .windows(2)
        .enumerate()
        .map(|(i, pair)| random_sparse(pair[1], pair[0], density, seed.wrapping_add(i as u64)))
        .collect();
    let refs: Vec<&CsrMatrix> = weights.iter().collect();
    let model = if shared {
        CompiledModel::compile_shared_codebook(config, &refs)
    } else {
        CompiledModel::compile(config, &refs)
    };
    Ok(model.with_name(format!("stack {spec} @{density}")))
}
