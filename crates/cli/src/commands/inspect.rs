//! `eie inspect` — print an artifact's header, topology and footprint.

use crate::commands::load_model;
use crate::opts::Opts;
use crate::outln;
use crate::CliError;

const HELP: &str = "eie inspect — print an artifact's header, topology and footprint

USAGE:
    eie inspect <MODEL.eie>

OPTIONS:
    -h, --help    Show this help";

pub fn run(opts: Opts) -> Result<(), CliError> {
    if opts.wants_help() {
        outln!("{HELP}");
        return Ok(());
    }
    let positional = opts.finish(1)?;
    let path = positional
        .first()
        .ok_or_else(|| CliError::Usage("inspect needs a model file (see --help)".into()))?;

    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let model = load_model(path)?;

    let codec = model.config().codec;
    outln!(
        "artifact  {path} ({file_bytes} bytes, container v{}, codec {codec})",
        model.container_version(),
    );
    if !model.name().is_empty() {
        outln!("name      {}", model.name());
    }
    outln!("config    {}", model.config());
    outln!(
        "topology  {} layer{}, {} -> {} activations, codebooks {}",
        model.num_layers(),
        if model.num_layers() == 1 { "" } else { "s" },
        model.input_dim(),
        model.output_dim(),
        if model.has_shared_codebook() {
            "shared"
        } else {
            "per-layer"
        },
    );

    let mut dense_total = 0usize;
    let mut stored_total = 0usize;
    for (i, layer) in model.layers().iter().enumerate() {
        let stats = layer.stats();
        let stored = codec.codec().encoded_bytes(layer);
        dense_total += stats.dense_bytes;
        stored_total += stored;
        outln!(
            "layer {i:>3}  {}x{}  {} entries ({} padding), codebook {} entries, \
             codec {codec}: {} bytes ({:.1}x vs dense f32)",
            layer.rows(),
            layer.cols(),
            stats.total_entries(),
            stats.padding_entries,
            layer.codebook().len(),
            stored,
            codec.codec().compression_ratio(layer),
        );
    }
    if model.num_layers() > 1 {
        outln!(
            "total     {} stored bytes, {:.1}x vs dense f32",
            stored_total,
            dense_total as f64 / stored_total as f64,
        );
    }
    Ok(())
}
