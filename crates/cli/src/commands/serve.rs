//! `eie serve` — serve an artifact under a self-driving request load.
//!
//! Loads a `.eie` model into a [`ModelServer`] (bounded queue, dynamic
//! micro-batching, N backend workers) and drives it with a generated
//! request stream at a target QPS, reporting the latency distribution
//! (p50/p95/p99), queue time, coalescing behaviour and throughput.

use std::time::{Duration, Instant};

use eie_core::BackendKind;
use eie_serve::{ModelServer, ServerConfig};

use crate::commands::{load_model, parse_backend, sample_batch};
use crate::opts::Opts;
use crate::outln;
use crate::CliError;

const HELP: &str = "eie serve — serve a .eie artifact under a generated request load

USAGE:
    eie serve <MODEL.eie> [OPTIONS]

SERVING POLICY:
    --backend <B>       Worker backend: cycle | functional | native[:threads] | streaming[:threads]
                        [default: native:1 — workers provide the parallelism]
    --workers <N>       Worker threads, one backend each [default: 2]
    --max-batch <N>     Micro-batch coalescing cap [default: 8]
    --max-wait-us <N>   Straggler-collection window, µs (0 = none) [default: 200]
    --queue-depth <N>   Bounded queue depth (backpressure point) [default: 256]

LOAD GENERATION:
    --requests <N>      Total requests to drive [default: 256]
    --qps <Q>           Target offered rate, requests/s (0 = unthrottled,
                        backpressure-paced) [default: 0]
    --density <D>       Input activation density in [0, 1] [default: 0.35]
    --signed            Sample signed activations (embedding/LSTM inputs)
    --seed <N>          Input sampling seed [default: 1]
    --verify            Re-check every response against a one-at-a-time
                        functional golden run (exit 1 on divergence)
    -h, --help          Show this help";

pub fn run(mut opts: Opts) -> Result<(), CliError> {
    if opts.wants_help() {
        outln!("{HELP}");
        return Ok(());
    }
    let backend = match opts.value(&["--backend"])? {
        Some(name) => parse_backend(&name)?,
        None => BackendKind::NativeCpu(1),
    };
    let workers: usize = opts.parsed(&["--workers"])?.unwrap_or(2);
    let max_batch: usize = opts.parsed(&["--max-batch"])?.unwrap_or(8);
    let max_wait_us: u64 = opts.parsed(&["--max-wait-us"])?.unwrap_or(200);
    let queue_depth: usize = opts.parsed(&["--queue-depth"])?.unwrap_or(256);
    let requests: usize = opts.parsed(&["--requests"])?.unwrap_or(256);
    let qps: f64 = opts.parsed(&["--qps"])?.unwrap_or(0.0);
    let density: f64 = opts.parsed(&["--density"])?.unwrap_or(0.35);
    let signed = opts.flag("--signed");
    let seed: u64 = opts.parsed(&["--seed"])?.unwrap_or(1);
    let verify = opts.flag("--verify");
    let positional = opts.finish(1)?;
    let path = positional
        .first()
        .ok_or_else(|| CliError::Usage("serve needs a model file (see --help)".into()))?;
    if workers == 0 || max_batch == 0 || queue_depth == 0 || requests == 0 {
        return Err(CliError::Usage(
            "--workers, --max-batch, --queue-depth and --requests must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&density) {
        return Err(CliError::Usage("--density must be in [0, 1]".into()));
    }
    if qps < 0.0 {
        return Err(CliError::Usage("--qps must be non-negative".into()));
    }

    let model = load_model(path)?;
    outln!("loaded    {model}");
    let golden = verify.then(|| model.clone());
    let config = ServerConfig::default()
        .with_backend(backend)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_wait_us(max_wait_us)
        .with_queue_depth(queue_depth);
    outln!("serving   {config}");

    let inputs = sample_batch(&model, requests, density, signed, seed);
    let server = ModelServer::start(model, config);
    outln!(
        "load      {requests} requests at {}",
        if qps > 0.0 {
            format!("{qps:.0} requests/s target")
        } else {
            "max speed (backpressure-paced)".to_string()
        }
    );

    // Open-loop pacing against absolute deadlines so a slow submit does
    // not silently shift the whole schedule; qps 0 submits back to back
    // and lets the bounded queue pace the stream.
    let started = Instant::now();
    let interval = (qps > 0.0).then(|| Duration::from_secs_f64(1.0 / qps));
    let mut responses = Vec::with_capacity(requests);
    for (i, input) in inputs.iter().enumerate() {
        if let Some(interval) = interval {
            let deadline = started + interval * i as u32;
            if let Some(wait) = deadline.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let response = server
            .submit(input)
            .map_err(|e| CliError::Runtime(format!("submit failed at request {i}: {e}")))?;
        responses.push(response);
    }
    let offered_s = started.elapsed().as_secs_f64();

    let results: Vec<_> = responses.into_iter().map(|r| r.wait()).collect();
    let stats = server.shutdown();

    if let Some(golden) = &golden {
        let job = golden.infer(BackendKind::Functional);
        for (i, (input, result)) in inputs.iter().zip(&results).enumerate() {
            if job.submit_one(input).outputs(0) != &result.outputs[..] {
                return Err(CliError::Runtime(format!(
                    "verification FAILED: served output diverged from the \
                     one-at-a-time functional golden run at request {i}"
                )));
            }
        }
        outln!(
            "verified  {} responses bit-exact against the functional golden model",
            results.len()
        );
    }

    outln!(
        "offered   {:.0} requests/s over {:.1} ms",
        requests as f64 / offered_s,
        offered_s * 1e3
    );
    outln!(
        "served    {:.0} frames/s ({} requests in {} micro-batches, mean {:.1}/batch, max {})",
        stats.frames_per_second(),
        stats.requests,
        stats.batches,
        stats.mean_coalesced(),
        stats.max_coalesced
    );
    outln!(
        "latency   p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs (queue mean {:.1} µs)",
        stats.p50(),
        stats.p95(),
        stats.p99(),
        stats.mean_queue_us()
    );
    if stats.requests != requests as u64 {
        return Err(CliError::Runtime(format!(
            "server answered {} of {requests} requests",
            stats.requests
        )));
    }
    Ok(())
}
