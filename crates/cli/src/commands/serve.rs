//! `eie serve` — serve artifacts under load, locally or over TCP.
//!
//! Three modes share one subcommand:
//!
//! * **Local** (default): load one `.eie` into a [`ModelServer`] and
//!   drive it with a generated request stream at a target QPS,
//!   reporting the latency distribution (p50/p95/p99), queue time,
//!   coalescing behaviour and throughput.
//! * **`--listen <addr>`**: put a [`ModelRegistry`] of named artifacts
//!   behind a TCP listener speaking the EIE wire protocol
//!   ([`eie_serve::protocol`]), with LRU-by-bytes eviction past
//!   `--budget-bytes` and per-request shed-load admission control.
//! * **`--connect <addr>`**: the matching load generator — N client
//!   connections mixing requests across models, optionally verifying
//!   every response bit-exact against a local functional golden run.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use eie_core::{BackendKind, CompiledModel};
use eie_serve::protocol::{ErrorCode, Response};
use eie_serve::{
    Client, ClientTimeouts, FaultPlan, ModelRegistry, ModelServer, NetPolicy, NetServer,
    RetryPolicy, ServerConfig, ServerStats, SubmitOptions,
};

use crate::commands::{load_model, parse_backend, sample_batch};
use crate::opts::Opts;
use crate::outln;
use crate::CliError;

const HELP: &str = "eie serve — serve .eie artifacts under load, locally or over TCP

USAGE:
    eie serve <MODEL.eie> [OPTIONS]                          local self-driving load
    eie serve --listen <ADDR> --model <NAME=PATH>... [OPTIONS]   network serving node
    eie serve --connect <ADDR> --model <NAME=PATH>... [OPTIONS]  load-generator client

SERVING POLICY (local and --listen):
    --backend <B>       Worker backend: cycle | functional | native[:threads] | streaming[:threads]
                        [default: native:1 — workers provide the parallelism]
    --workers <N>       Worker threads per model, one backend each [default: 2]
    --max-batch <N>     Micro-batch coalescing cap [default: 8]
    --max-wait-us <N>   Straggler-collection window, µs (0 = none) [default: 200]
    --queue-depth <N>   Bounded queue depth (admission-control point) [default: 256]

NETWORK NODE (--listen):
    --model <NAME=PATH> Register PATH under NAME (repeatable); a bare PATH
                        registers under its file stem
    --budget-bytes <N>  Resident-artifact byte budget: past it, cold models
                        are evicted LRU [default: unbounded]

LOAD GENERATION (local and --connect):
    --requests <N>      Requests to drive (per connection when --connect)
                        [default: 256]
    --clients <N>       Concurrent client connections (--connect) [default: 4]
    --qps <Q>           Target offered rate, requests/s, local mode only
                        (0 = unthrottled, backpressure-paced) [default: 0]
    --density <D>       Input activation density in [0, 1] [default: 0.35]
    --signed            Sample signed activations (embedding/LSTM inputs)
    --seed <N>          Input sampling seed [default: 1]
    --verify            Re-check every response against a one-at-a-time
                        functional golden run (exit 1 on divergence)
    --shutdown          After the load, ask the server to drain and exit
                        (--connect)

FAULT TOLERANCE:
    --deadline-ms <N>   Per-request deadline, ms; lapsed requests are
                        answered DEADLINE_EXCEEDED, never executed
                        (local and --connect) [default: none]
    --retries <N>       Attempts per request (--connect): transport
                        failures, OVERLOADED and WORKER_FAILED retry
                        with deterministic exponential backoff
                        [default: 3]
    --write-grace-ms <N> Evict clients that stall response writes longer
                        than this (--listen) [default: 2000]
    EIE_FAULTS=<SPEC>   (--listen, env) Install a deterministic fault
                        plan, e.g. \"panic@3,stall@5:2000,latency:100\" —
                        chaos testing only
    -h, --help          Show this help";

pub fn run(mut opts: Opts) -> Result<(), CliError> {
    if opts.wants_help() {
        outln!("{HELP}");
        return Ok(());
    }
    let listen = opts.value(&["--listen"])?;
    let connect = opts.value(&["--connect"])?;
    match (listen, connect) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--listen and --connect are mutually exclusive".into(),
        )),
        (Some(addr), None) => run_listen(&addr, opts),
        (None, Some(addr)) => run_connect(&addr, opts),
        (None, None) => run_local(opts),
    }
}

/// Parses the shared serving-policy options.
fn parse_policy(opts: &mut Opts) -> Result<ServerConfig, CliError> {
    let backend = match opts.value(&["--backend"])? {
        Some(name) => parse_backend(&name)?,
        None => BackendKind::NativeCpu(1),
    };
    let workers: usize = opts.parsed(&["--workers"])?.unwrap_or(2);
    let max_batch: usize = opts.parsed(&["--max-batch"])?.unwrap_or(8);
    let max_wait_us: u64 = opts.parsed(&["--max-wait-us"])?.unwrap_or(200);
    let queue_depth: usize = opts.parsed(&["--queue-depth"])?.unwrap_or(256);
    if workers == 0 || max_batch == 0 || queue_depth == 0 {
        return Err(CliError::Usage(
            "--workers, --max-batch and --queue-depth must be positive".into(),
        ));
    }
    Ok(ServerConfig::default()
        .with_backend(backend)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_wait_us(max_wait_us)
        .with_queue_depth(queue_depth))
}

/// Splits a `--model` operand: `name=path`, or a bare path registered
/// under its file stem.
fn parse_model_spec(spec: &str) -> Result<(String, String), CliError> {
    if let Some((name, path)) = spec.split_once('=') {
        if name.is_empty() || path.is_empty() {
            return Err(CliError::Usage(format!(
                "--model {spec:?}: expected NAME=PATH with both parts non-empty"
            )));
        }
        return Ok((name.to_string(), path.to_string()));
    }
    let stem = std::path::Path::new(spec)
        .file_stem()
        .and_then(|s| s.to_str())
        .filter(|s| !s.is_empty())
        .ok_or_else(|| CliError::Usage(format!("--model {spec:?}: cannot derive a model name")))?;
    Ok((stem.to_string(), spec.to_string()))
}

/// Collects `--model` operands (plus an optional positional artifact)
/// into (name, path) pairs; at least one is required.
fn collect_models(opts: &mut Opts) -> Result<Vec<(String, String)>, CliError> {
    let specs = opts.values(&["--model"])?;
    let mut models = Vec::with_capacity(specs.len() + 1);
    for spec in &specs {
        models.push(parse_model_spec(spec)?);
    }
    Ok(models)
}

fn print_serving_stats(stats: &ServerStats) {
    outln!(
        "served    {:.0} frames/s ({} requests in {} micro-batches, mean {:.1}/batch, max {})",
        stats.frames_per_second(),
        stats.requests,
        stats.batches,
        stats.mean_coalesced(),
        stats.max_coalesced
    );
    outln!(
        "latency   p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs (queue mean {:.1} µs)",
        stats.p50(),
        stats.p95(),
        stats.p99(),
        stats.mean_queue_us()
    );
    let faulted = stats.shed
        + stats.expired
        + stats.failed
        + stats.worker_restarts
        + stats.slow_client_evictions
        + stats.degraded;
    if faulted > 0 || !stats.errors.is_empty() {
        outln!(
            "faults    shed {}, expired {}, failed {}, worker restarts {}, \
             slow-client evictions {}{}",
            stats.shed,
            stats.expired,
            stats.failed,
            stats.worker_restarts,
            stats.slow_client_evictions,
            if stats.degraded > 0 { ", DEGRADED" } else { "" }
        );
        for error in &stats.errors {
            outln!("fault     {error}");
        }
    }
}

/// `--listen`: a network serving node. Runs until a client sends a
/// SHUTDOWN frame, then drains and reports.
fn run_listen(addr: &str, mut opts: Opts) -> Result<(), CliError> {
    let config = parse_policy(&mut opts)?;
    let budget: Option<u64> = opts.parsed(&["--budget-bytes"])?;
    let write_grace_ms: Option<u64> = opts.parsed(&["--write-grace-ms"])?;
    let mut models = collect_models(&mut opts)?;
    let positional = opts.finish(1)?;
    if let Some(path) = positional.first() {
        models.push(parse_model_spec(path)?);
    }
    if models.is_empty() {
        return Err(CliError::Usage(
            "--listen needs at least one --model NAME=PATH (see --help)".into(),
        ));
    }

    let mut registry = ModelRegistry::new(config);
    if let Some(budget) = budget {
        if budget == 0 {
            return Err(CliError::Usage("--budget-bytes must be positive".into()));
        }
        registry = registry.with_budget_bytes(budget as usize);
    }
    // Chaos testing only: EIE_FAULTS installs a deterministic fault
    // plan (worker panics, stalls, latency, connection faults) so the
    // recovery path can be driven end to end from CI.
    if let Ok(spec) = std::env::var("EIE_FAULTS") {
        if !spec.trim().is_empty() {
            let plan = FaultPlan::parse(&spec)
                .map_err(|e| CliError::Usage(format!("EIE_FAULTS {spec:?}: {e}")))?;
            outln!("faults    injecting {plan}");
            registry = registry.with_fault_plan(Arc::new(plan));
        }
    }
    for (name, path) in &models {
        registry
            .register_file(name.clone(), path)
            .map_err(|e| CliError::Usage(e.to_string()))?;
        outln!("model     {name} <- {path}");
    }
    outln!("serving   {}", registry.server_config());

    let mut policy = NetPolicy::default();
    if let Some(ms) = write_grace_ms {
        if ms == 0 {
            return Err(CliError::Usage("--write-grace-ms must be positive".into()));
        }
        policy = policy.with_write_grace(Duration::from_millis(ms));
    }
    let server = NetServer::bind_with_policy(addr, registry, policy)
        .map_err(|e| CliError::Runtime(format!("cannot listen on {addr}: {e}")))?;
    outln!("listening {}", server.local_addr());

    server.wait_for_shutdown();
    outln!("draining  shutdown requested");
    let stats = server.stop();
    print_serving_stats(&stats);
    Ok(())
}

/// What one load-generator connection did.
#[derive(Debug, Default)]
struct ClientTally {
    served: usize,
    overloaded: usize,
    verified: usize,
    /// Retry attempts spent (transport, OVERLOADED, WORKER_FAILED).
    retried: usize,
    /// Requests that succeeded only after ≥ 1 retry.
    recovered: usize,
    /// Requests answered DEADLINE_EXCEEDED.
    expired: usize,
}

/// `--connect`: drive a serving node with N concurrent connections
/// mixing requests across the named models.
fn run_connect(addr: &str, mut opts: Opts) -> Result<(), CliError> {
    let requests: usize = opts.parsed(&["--requests"])?.unwrap_or(256);
    let clients: usize = opts.parsed(&["--clients"])?.unwrap_or(4);
    let density: f64 = opts.parsed(&["--density"])?.unwrap_or(0.35);
    let signed = opts.flag("--signed");
    let seed: u64 = opts.parsed(&["--seed"])?.unwrap_or(1);
    let verify = opts.flag("--verify");
    let shutdown = opts.flag("--shutdown");
    let deadline_ms: Option<u64> = opts.parsed(&["--deadline-ms"])?;
    let retries: u32 = opts.parsed(&["--retries"])?.unwrap_or(3);
    let models = collect_models(&mut opts)?;
    opts.finish(0)?;
    if models.is_empty() {
        return Err(CliError::Usage(
            "--connect needs at least one --model NAME=PATH (see --help)".into(),
        ));
    }
    if requests == 0 || clients == 0 || retries == 0 {
        return Err(CliError::Usage(
            "--requests, --clients and --retries must be positive".into(),
        ));
    }
    let deadline = match deadline_ms {
        Some(0) => return Err(CliError::Usage("--deadline-ms must be positive".into())),
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    if !(0.0..=1.0).contains(&density) {
        return Err(CliError::Usage("--density must be in [0, 1]".into()));
    }

    // The client loads each artifact locally too: it needs the input
    // dimension to sample requests, and (under --verify) the model
    // itself to recompute the functional golden answer.
    let mut loaded: Vec<(String, Arc<CompiledModel>)> = Vec::with_capacity(models.len());
    for (name, path) in &models {
        loaded.push((name.clone(), Arc::new(load_model(path)?)));
    }
    outln!(
        "load      {clients} connections x {requests} requests over {} models -> {addr}",
        loaded.len()
    );

    let loaded = Arc::new(loaded);
    let started = Instant::now();
    let mut threads = Vec::with_capacity(clients);
    for t in 0..clients {
        let loaded = Arc::clone(&loaded);
        let addr = addr.to_string();
        threads.push(thread::spawn(move || {
            drive_connection(
                &addr, t, requests, &loaded, density, signed, seed, verify, deadline, retries,
            )
        }));
    }
    let mut tally = ClientTally::default();
    for thread in threads {
        let t = thread
            .join()
            .map_err(|_| CliError::Runtime("load-generator thread panicked".into()))?
            .map_err(CliError::Runtime)?;
        tally.served += t.served;
        tally.overloaded += t.overloaded;
        tally.verified += t.verified;
        tally.retried += t.retried;
        tally.recovered += t.recovered;
        tally.expired += t.expired;
    }
    let wall_s = started.elapsed().as_secs_f64();
    outln!(
        "offered   {:.0} requests/s over {:.1} ms ({} served, {} shed as OVERLOADED)",
        tally.served as f64 / wall_s,
        wall_s * 1e3,
        tally.served,
        tally.overloaded
    );
    outln!(
        "resilience {} retried, {} recovered, {} expired past deadline",
        tally.retried,
        tally.recovered,
        tally.expired
    );
    if verify {
        outln!(
            "verified  {} responses bit-exact against the functional golden model",
            tally.verified
        );
    }

    let mut control = Client::connect(addr)
        .map_err(|e| CliError::Runtime(format!("cannot connect to {addr}: {e}")))?;
    let report = control
        .stats()
        .map_err(|e| CliError::Runtime(format!("stats request failed: {e}")))?;
    outln!(
        "server    {} requests in {} micro-batches (max {}/batch), {}/{} models resident ({} bytes)",
        report.requests,
        report.batches,
        report.max_coalesced,
        report.models_resident,
        report.models_registered,
        report.resident_bytes
    );
    outln!(
        "latency   p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs (queue mean {:.1} µs, depth {})",
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.mean_queue_us,
        report.queue_depth
    );
    if report.shed + report.expired + report.failed + report.worker_restarts > 0
        || report.degraded > 0
        || report.slow_client_evictions > 0
    {
        outln!(
            "faults    shed {}, expired {}, failed {}, worker restarts {}, \
             slow-client evictions {}{}",
            report.shed,
            report.expired,
            report.failed,
            report.worker_restarts,
            report.slow_client_evictions,
            if report.degraded > 0 {
                ", DEGRADED"
            } else {
                ""
            }
        );
    }
    if shutdown {
        control
            .shutdown_server()
            .map_err(|e| CliError::Runtime(format!("shutdown request failed: {e}")))?;
        outln!("shutdown  acknowledged");
    }
    Ok(())
}

/// One connection's request loop: round-robin across models, retrying
/// under the typed [`RetryPolicy`] (transport failures, OVERLOADED,
/// WORKER_FAILED), verifying against the local golden when asked.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: &str,
    t: usize,
    requests: usize,
    models: &[(String, Arc<CompiledModel>)],
    density: f64,
    signed: bool,
    seed: u64,
    verify: bool,
    deadline: Option<Duration>,
    retries: u32,
) -> Result<ClientTally, String> {
    let policy = RetryPolicy::default()
        .with_max_attempts(retries)
        .with_jitter_seed(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut client = Client::connect_with(addr, ClientTimeouts::all(Duration::from_secs(10)))
        .map_err(|e| format!("connection {t}: connect failed: {e}"))?
        .with_retry_policy(policy);
    let goldens: Vec<_> = if verify {
        models
            .iter()
            .map(|(_, m)| m.infer(BackendKind::Functional))
            .collect()
    } else {
        Vec::new()
    };
    let mut tally = ClientTally::default();
    for j in 0..requests {
        let m = (t + j) % models.len();
        let (name, model) = &models[m];
        let input = eie_core::nn::zoo::sample_activations(
            model.input_dim(),
            density,
            signed,
            seed.wrapping_add((t * requests + j) as u64),
        );
        // Shed load is an answer, not a failure: when even the retry
        // budget comes back OVERLOADED, wait out a micro-batch window
        // and offer the request again.
        let output = loop {
            let (response, stats) = client
                .infer_retrying(name, &input, deadline)
                .map_err(|e| format!("connection {t}: request {j} failed: {e}"))?;
            tally.retried += stats.retries as usize;
            if stats.recovered {
                tally.recovered += 1;
            }
            match response {
                Response::Output(output) => break Some(output),
                Response::Overloaded { .. } => {
                    tally.overloaded += 1;
                    thread::sleep(Duration::from_micros(500));
                }
                Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    ..
                } => {
                    tally.expired += 1;
                    break None;
                }
                other => {
                    return Err(format!(
                        "connection {t}: request {j} to {name:?} refused: {other:?}"
                    ))
                }
            }
        };
        let Some(output) = output else { continue };
        tally.served += 1;
        if verify {
            let golden = goldens[m].submit_one(&input);
            let expect: Vec<i16> = golden.outputs(0).iter().map(|q| q.raw()).collect();
            if output.outputs != expect {
                return Err(format!(
                    "verification FAILED: connection {t} request {j} to {name:?} \
                     diverged from the one-at-a-time functional golden run"
                ));
            }
            tally.verified += 1;
        }
    }
    Ok(tally)
}

/// The original self-driving mode: one model, in-process server,
/// generated load.
fn run_local(mut opts: Opts) -> Result<(), CliError> {
    let config = parse_policy(&mut opts)?;
    let requests: usize = opts.parsed(&["--requests"])?.unwrap_or(256);
    let qps: f64 = opts.parsed(&["--qps"])?.unwrap_or(0.0);
    let density: f64 = opts.parsed(&["--density"])?.unwrap_or(0.35);
    let signed = opts.flag("--signed");
    let seed: u64 = opts.parsed(&["--seed"])?.unwrap_or(1);
    let verify = opts.flag("--verify");
    let deadline_ms: Option<u64> = opts.parsed(&["--deadline-ms"])?;
    let positional = opts.finish(1)?;
    let path = positional
        .first()
        .ok_or_else(|| CliError::Usage("serve needs a model file (see --help)".into()))?;
    if requests == 0 {
        return Err(CliError::Usage("--requests must be positive".into()));
    }
    let deadline = match deadline_ms {
        Some(0) => return Err(CliError::Usage("--deadline-ms must be positive".into())),
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    if !(0.0..=1.0).contains(&density) {
        return Err(CliError::Usage("--density must be in [0, 1]".into()));
    }
    if qps < 0.0 {
        return Err(CliError::Usage("--qps must be non-negative".into()));
    }

    let model = load_model(path)?;
    outln!("loaded    {model}");
    let golden = verify.then(|| model.clone());
    outln!("serving   {config}");

    let inputs = sample_batch(&model, requests, density, signed, seed);
    let server = ModelServer::start(model, config);
    outln!(
        "load      {requests} requests at {}",
        if qps > 0.0 {
            format!("{qps:.0} requests/s target")
        } else {
            "max speed (backpressure-paced)".to_string()
        }
    );

    // Open-loop pacing against absolute deadlines so a slow submit does
    // not silently shift the whole schedule; qps 0 submits back to back
    // and lets the bounded queue pace the stream.
    let started = Instant::now();
    let interval = (qps > 0.0).then(|| Duration::from_secs_f64(1.0 / qps));
    let mut responses = Vec::with_capacity(requests);
    for (i, input) in inputs.iter().enumerate() {
        if let Some(interval) = interval {
            let deadline = started + interval * i as u32;
            if let Some(wait) = deadline.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let mut submit_opts = SubmitOptions::default();
        if let Some(budget) = deadline {
            submit_opts = submit_opts.with_deadline(Instant::now() + budget);
        }
        let response = match server.submit_with(input, submit_opts) {
            Ok(response) => response,
            // A pre-expired deadline is a typed answer, not a CLI
            // failure; nothing to wait on.
            Err(eie_serve::SubmitError::DeadlineExceeded) => continue,
            Err(e) => {
                return Err(CliError::Runtime(format!(
                    "submit failed at request {i}: {e}"
                )))
            }
        };
        responses.push((i, response));
    }
    let offered_s = started.elapsed().as_secs_f64();

    let results: Vec<_> = responses.into_iter().map(|(i, r)| (i, r.wait())).collect();
    let stats = server.shutdown();

    let answered: Vec<_> = results
        .iter()
        .filter_map(|(i, r)| r.as_ref().ok().map(|result| (*i, result)))
        .collect();
    if let Some(golden) = &golden {
        let job = golden.infer(BackendKind::Functional);
        for (i, result) in &answered {
            if job.submit_one(&inputs[*i]).outputs(0) != &result.outputs[..] {
                return Err(CliError::Runtime(format!(
                    "verification FAILED: served output diverged from the \
                     one-at-a-time functional golden run at request {i}"
                )));
            }
        }
        outln!(
            "verified  {} responses bit-exact against the functional golden model",
            answered.len()
        );
    }

    outln!(
        "offered   {:.0} requests/s over {:.1} ms",
        requests as f64 / offered_s,
        offered_s * 1e3
    );
    print_serving_stats(&stats);
    // Every request must have a disposition: answered, or typed as
    // expired/failed. With no deadline and no faults this degenerates
    // to the old exact answered == offered check.
    if stats.requests + stats.expired + stats.failed != requests as u64 {
        return Err(CliError::Runtime(format!(
            "server answered {} of {requests} requests ({} expired, {} failed)",
            stats.requests, stats.expired, stats.failed
        )));
    }
    Ok(())
}
