//! The four subcommands, plus the helpers they share.

pub mod bench;
pub mod compress;
pub mod inspect;
pub mod run;
pub mod serve;

use eie_core::prelude::*;
use eie_core::BackendKind;

use crate::CliError;

/// Parses a backend name: `cycle`, `functional`, `native[:threads]`, or
/// `streaming[:threads]` (the plan-less native baseline — the A/B knob
/// for `eie bench`).
pub fn parse_backend(name: &str) -> Result<BackendKind, CliError> {
    match name {
        "cycle" | "cycle-accurate" => Ok(BackendKind::CycleAccurate),
        "functional" | "golden" => Ok(BackendKind::Functional),
        "native" | "native-cpu" => Ok(BackendKind::NativeCpu(0)),
        "streaming" | "native-streaming" => Ok(BackendKind::NativeStreaming(0)),
        other => {
            if let Some(threads) = other
                .strip_prefix("native:")
                .or_else(|| other.strip_prefix("native-cpu:"))
            {
                let threads: usize = threads
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad thread count in {other:?}")))?;
                return Ok(BackendKind::NativeCpu(threads));
            }
            if let Some(threads) = other
                .strip_prefix("streaming:")
                .or_else(|| other.strip_prefix("native-streaming:"))
            {
                let threads: usize = threads
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad thread count in {other:?}")))?;
                return Ok(BackendKind::NativeStreaming(threads));
            }
            Err(CliError::Usage(format!(
                "unknown backend {other:?} \
                 (expected cycle | functional | native[:threads] | streaming[:threads])"
            )))
        }
    }
}

/// Loads an artifact, mapping failures to runtime errors.
pub fn load_model(path: &str) -> Result<CompiledModel, CliError> {
    CompiledModel::load(path).map_err(|e| CliError::Runtime(format!("cannot load {path}: {e}")))
}

/// Samples a deterministic activation batch sized for the model's input
/// layer: item `i` uses `seed + i`, like the zoo's batch sampler.
pub fn sample_batch(
    model: &CompiledModel,
    batch: usize,
    density: f64,
    signed: bool,
    seed: u64,
) -> Vec<Vec<f32>> {
    (0..batch as u64)
        .map(|i| {
            eie_core::nn::zoo::sample_activations(
                model.input_dim(),
                density,
                signed,
                seed.wrapping_add(i),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_parse() {
        assert_eq!(parse_backend("cycle").unwrap(), BackendKind::CycleAccurate);
        assert_eq!(
            parse_backend("functional").unwrap(),
            BackendKind::Functional
        );
        assert_eq!(parse_backend("native").unwrap(), BackendKind::NativeCpu(0));
        assert_eq!(
            parse_backend("native:3").unwrap(),
            BackendKind::NativeCpu(3)
        );
        assert_eq!(
            parse_backend("streaming").unwrap(),
            BackendKind::NativeStreaming(0)
        );
        assert_eq!(
            parse_backend("streaming:2").unwrap(),
            BackendKind::NativeStreaming(2)
        );
        assert!(parse_backend("gpu").is_err());
        assert!(parse_backend("native:x").is_err());
        assert!(parse_backend("streaming:x").is_err());
    }

    #[test]
    fn sample_batch_matches_model_input() {
        let w = random_sparse(16, 24, 0.3, 1);
        let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(2), &w);
        let batch = sample_batch(&model, 3, 0.5, false, 7);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|item| item.len() == 24));
        // Deterministic and anchored per item.
        assert_eq!(batch, sample_batch(&model, 3, 0.5, false, 7));
        assert_ne!(batch[0], batch[1]);
    }
}
