//! The four subcommands, plus the helpers they share.

pub mod bench;
pub mod compress;
pub mod inspect;
pub mod run;
pub mod serve;

use eie_core::prelude::*;
use eie_core::BackendKind;

use crate::CliError;

/// Parses a backend name: `cycle`, `functional`, `native[:threads]`, or
/// `streaming[:threads]` (the plan-less native baseline — the A/B knob
/// for `eie bench`).
pub fn parse_backend(name: &str) -> Result<BackendKind, CliError> {
    match name {
        "cycle" | "cycle-accurate" => Ok(BackendKind::CycleAccurate),
        "functional" | "golden" => Ok(BackendKind::Functional),
        "native" | "native-cpu" => Ok(BackendKind::NativeCpu(0)),
        "streaming" | "native-streaming" => Ok(BackendKind::NativeStreaming(0)),
        other => {
            if let Some(threads) = other
                .strip_prefix("native:")
                .or_else(|| other.strip_prefix("native-cpu:"))
            {
                let threads: usize = threads
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad thread count in {other:?}")))?;
                return Ok(BackendKind::NativeCpu(threads));
            }
            if let Some(threads) = other
                .strip_prefix("streaming:")
                .or_else(|| other.strip_prefix("native-streaming:"))
            {
                let threads: usize = threads
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad thread count in {other:?}")))?;
                return Ok(BackendKind::NativeStreaming(threads));
            }
            Err(CliError::Usage(format!(
                "unknown backend {other:?} \
                 (expected cycle | functional | native[:threads] | streaming[:threads])"
            )))
        }
    }
}

/// Parses the execution-layout options `run` and `bench` share:
/// `--shards S` (row shards per native dispatch), `--stages auto|N`
/// (pipeline stage count, `auto` = one stage per layer) and
/// `--lane-tile N` (plan lane-tile column override).
///
/// Layout is a property of the native plan executor, so any of the
/// three on a non-native backend is a usage error (exit 2) — as are
/// zero counts and a stage value that is neither `auto` nor a number.
pub fn parse_layout(
    opts: &mut crate::opts::Opts,
    backend: BackendKind,
) -> Result<(Option<Topology>, Option<LaneTile>), CliError> {
    let shards: Option<usize> = opts.parsed(&["--shards"])?;
    let stages = match opts.value(&["--stages"])?.as_deref() {
        None => None,
        Some("auto") => Some(0usize),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) | Err(_) => {
                return Err(CliError::Usage(format!(
                    "--stages expects `auto` or a positive stage count, got {raw:?}"
                )))
            }
            Ok(n) => Some(n),
        },
    };
    let lane_tile: Option<usize> = opts.parsed(&["--lane-tile"])?;
    if shards == Some(0) {
        return Err(CliError::Usage("--shards must be positive".into()));
    }
    if lane_tile == Some(0) {
        return Err(CliError::Usage("--lane-tile must be positive".into()));
    }
    if (shards.is_some() || stages.is_some() || lane_tile.is_some())
        && !matches!(backend, BackendKind::NativeCpu(_))
    {
        return Err(CliError::Usage(format!(
            "--shards/--stages/--lane-tile shape the native plan executor \
             and need --backend native, not {backend}"
        )));
    }
    let topology = match (shards, stages) {
        (None, None) => None,
        (shards, stages) => Some(
            Topology::single()
                .with_shards(shards.unwrap_or(1))
                .with_stages(stages.unwrap_or(1)),
        ),
    };
    Ok((topology, lane_tile.map(LaneTile::fixed)))
}

/// Loads an artifact, mapping failures to runtime errors.
pub fn load_model(path: &str) -> Result<CompiledModel, CliError> {
    CompiledModel::load(path).map_err(|e| CliError::Runtime(format!("cannot load {path}: {e}")))
}

/// Samples a deterministic activation batch sized for the model's input
/// layer: item `i` uses `seed + i`, like the zoo's batch sampler.
pub fn sample_batch(
    model: &CompiledModel,
    batch: usize,
    density: f64,
    signed: bool,
    seed: u64,
) -> Vec<Vec<f32>> {
    (0..batch as u64)
        .map(|i| {
            eie_core::nn::zoo::sample_activations(
                model.input_dim(),
                density,
                signed,
                seed.wrapping_add(i),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_parse() {
        assert_eq!(parse_backend("cycle").unwrap(), BackendKind::CycleAccurate);
        assert_eq!(
            parse_backend("functional").unwrap(),
            BackendKind::Functional
        );
        assert_eq!(parse_backend("native").unwrap(), BackendKind::NativeCpu(0));
        assert_eq!(
            parse_backend("native:3").unwrap(),
            BackendKind::NativeCpu(3)
        );
        assert_eq!(
            parse_backend("streaming").unwrap(),
            BackendKind::NativeStreaming(0)
        );
        assert_eq!(
            parse_backend("streaming:2").unwrap(),
            BackendKind::NativeStreaming(2)
        );
        assert!(parse_backend("gpu").is_err());
        assert!(parse_backend("native:x").is_err());
        assert!(parse_backend("streaming:x").is_err());
    }

    #[test]
    fn layout_options_parse_and_validate() {
        let native = BackendKind::NativeCpu(0);
        let layout = |args: &[&str], backend| {
            let mut opts = crate::opts::Opts::new(args.iter().map(|s| s.to_string()).collect());
            parse_layout(&mut opts, backend)
        };

        assert_eq!(layout(&[], native).unwrap(), (None, None));
        let (topology, tile) = layout(
            &["--shards", "2", "--stages", "auto", "--lane-tile", "16"],
            native,
        )
        .unwrap();
        let topology = topology.expect("topology requested");
        assert_eq!((topology.shards(), topology.stages()), (2, 0));
        assert_eq!(tile, Some(LaneTile::fixed(16)));
        let (topology, _) = layout(&["--stages", "3"], native).unwrap();
        assert_eq!(topology.expect("stages alone").stages(), 3);

        // Usage errors (exit 2): zero counts, bad stage words, layout
        // on a backend with no plan executor.
        for bad in [
            &["--shards", "0"][..],
            &["--lane-tile", "0"],
            &["--stages", "0"],
            &["--stages", "fast"],
        ] {
            assert!(
                matches!(layout(bad, native), Err(CliError::Usage(_))),
                "{bad:?}"
            );
        }
        for backend in [
            BackendKind::Functional,
            BackendKind::CycleAccurate,
            BackendKind::NativeStreaming(0),
        ] {
            let err = layout(&["--shards", "2"], backend).unwrap_err();
            assert!(
                matches!(&err, CliError::Usage(msg) if msg.contains("native")),
                "{err:?}"
            );
        }
    }

    #[test]
    fn sample_batch_matches_model_input() {
        let w = random_sparse(16, 24, 0.3, 1);
        let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(2), &w);
        let batch = sample_batch(&model, 3, 0.5, false, 7);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|item| item.len() == 24));
        // Deterministic and anchored per item.
        assert_eq!(batch, sample_batch(&model, 3, 0.5, false, 7));
        assert_ne!(batch[0], batch[1]);
    }
}
