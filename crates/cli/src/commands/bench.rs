//! `eie bench` — measure artifact load and serving throughput.

use std::time::Instant;

use eie_core::prelude::*;
use eie_core::BackendKind;

use crate::commands::{load_model, parse_backend, parse_layout, sample_batch};
use crate::opts::Opts;
use crate::outln;
use crate::CliError;

const HELP: &str = "eie bench — measure .eie load time and serving throughput

USAGE:
    eie bench <MODEL.eie> [OPTIONS]

OPTIONS:
    --backend <B>     cycle | functional | native[:threads] | streaming[:threads]
                      [default: native]
    --batch <N>       Batch size per iteration [default: 16]
    --iters <N>       Serving iterations (best is reported) [default: 5]
    --shards <S>      Split each native dispatch into S row shards
                      (native backend only)
    --stages <N|auto> Pipeline the layer stack into N stages, `auto` =
                      one stage per layer (native backend only)
    --lane-tile <N>   Override the plan's lane-tile column width
                      (native backend only)
    --density <D>     Input activation density [default: 0.35]
    --seed <N>        Input sampling seed [default: 1]
    -h, --help        Show this help";

pub fn run(mut opts: Opts) -> Result<(), CliError> {
    if opts.wants_help() {
        outln!("{HELP}");
        return Ok(());
    }
    let backend = match opts.value(&["--backend"])? {
        Some(name) => parse_backend(&name)?,
        None => BackendKind::NativeCpu(0),
    };
    let (topology, lane_tile) = parse_layout(&mut opts, backend)?;
    let batch_size: usize = opts.parsed(&["--batch"])?.unwrap_or(16);
    let iters: usize = opts.parsed(&["--iters"])?.unwrap_or(5);
    let density: f64 = opts.parsed(&["--density"])?.unwrap_or(0.35);
    let seed: u64 = opts.parsed(&["--seed"])?.unwrap_or(1);
    let positional = opts.finish(1)?;
    let path = positional
        .first()
        .ok_or_else(|| CliError::Usage("bench needs a model file (see --help)".into()))?;
    if batch_size == 0 || iters == 0 {
        return Err(CliError::Usage(
            "--batch and --iters must be positive".into(),
        ));
    }

    // Load-path throughput: read + decode + validate, best of 3 (the
    // build-once/load-many cost every serving worker pays at startup).
    let file_bytes = std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| CliError::Runtime(format!("cannot stat {path}: {e}")))?;
    let mut best_load_s = f64::INFINITY;
    let mut model = load_model(path)?;
    for _ in 0..3 {
        let start = Instant::now();
        model = load_model(path)?;
        best_load_s = best_load_s.min(start.elapsed().as_secs_f64());
    }
    outln!("loaded    {model}");
    outln!(
        "load      {:.2} ms best-of-3 ({:.1} MB/s over {} bytes)",
        best_load_s * 1e3,
        file_bytes as f64 / best_load_s / 1e6,
        file_bytes,
    );

    // Serving throughput: repeated batches, best and mean.
    let batch = sample_batch(&model, batch_size, density, false, seed);
    let mut job = model.infer(backend);
    if let Some(topology) = topology {
        outln!("layout    {topology}");
        job = job.topology(topology);
    }
    if let Some(tile) = lane_tile {
        job = job.lane_tile(tile);
    }
    let mut results: Vec<JobResult> = Vec::with_capacity(iters);
    for _ in 0..iters {
        results.push(job.submit(&batch));
    }
    let best = results
        .iter()
        .max_by(|a, b| {
            a.frames_per_second()
                .partial_cmp(&b.frames_per_second())
                .expect("throughputs are finite")
        })
        .expect("iters >= 1");
    let mean_fps = results
        .iter()
        .map(JobResult::frames_per_second)
        .sum::<f64>()
        / results.len() as f64;
    outln!(
        "serve     {backend}: best {:.0} frames/s (mean {mean_fps:.0} over {iters} iterations \
         of batch {batch_size})",
        best.frames_per_second(),
    );
    outln!("best      {best}");
    Ok(())
}
