//! Median-of-runs wall-clock measurement.

use std::time::Instant;

/// A wall-clock measurement harness.
///
/// Runs a closure repeatedly until both a minimum run count and a minimum
/// total duration are reached, then reports the median — robust against
/// scheduler noise without the full cost of a statistics framework (the
/// Criterion benches in `eie-bench` cover micro-benchmarks; this harness
/// times the large Table IV kernels where a handful of runs suffices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingHarness {
    /// Minimum number of timed runs.
    pub min_runs: usize,
    /// Maximum number of timed runs.
    pub max_runs: usize,
    /// Stop early (after `min_runs`) once this much time was spent, µs.
    pub target_total_us: f64,
}

impl Default for TimingHarness {
    fn default() -> Self {
        Self {
            min_runs: 3,
            max_runs: 15,
            target_total_us: 2e6, // 2 s per kernel
        }
    }
}

impl TimingHarness {
    /// A fast harness for tests and quick sweeps (fewer, shorter runs).
    pub fn quick() -> Self {
        Self {
            min_runs: 2,
            max_runs: 5,
            target_total_us: 50e3,
        }
    }

    /// Measures the median wall-clock time of `f` in microseconds.
    ///
    /// One warm-up call runs first (untimed) to populate caches and page
    /// in buffers.
    ///
    /// # Panics
    ///
    /// Panics if `min_runs` is 0 or `max_runs < min_runs`.
    pub fn measure_us<T>(&self, mut f: impl FnMut() -> T) -> f64 {
        assert!(self.min_runs > 0, "min_runs must be non-zero");
        assert!(self.max_runs >= self.min_runs, "max_runs < min_runs");
        std::hint::black_box(f());
        let mut samples = Vec::with_capacity(self.max_runs);
        let mut total = 0.0f64;
        for run in 0..self.max_runs {
            let start = Instant::now();
            std::hint::black_box(f());
            let us = start.elapsed().as_secs_f64() * 1e6;
            samples.push(us);
            total += us;
            if run + 1 >= self.min_runs && total >= self.target_total_us {
                break;
            }
        }
        median(&mut samples)
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_positive_time() {
        let h = TimingHarness::quick();
        let t = h.measure_us(|| {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t > 0.0);
    }

    #[test]
    fn longer_work_measures_longer() {
        let h = TimingHarness {
            min_runs: 3,
            max_runs: 5,
            target_total_us: 1e3,
        };
        // Memory-walking work the optimizer cannot fold to a closed form.
        let work = |n: usize| {
            let buf: Vec<u64> = (0..4096u64).collect();
            move || {
                let mut s = 0u64;
                let mut idx = 0usize;
                for _ in 0..n {
                    idx = (idx.wrapping_mul(25) + 7) % buf.len();
                    s = s.wrapping_add(std::hint::black_box(buf[idx]));
                }
                s
            }
        };
        let short = h.measure_us(work(50_000));
        let long = h.measure_us(work(5_000_000));
        assert!(long > short * 5.0, "long {long} should dwarf short {short}");
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "min_runs")]
    fn rejects_zero_runs() {
        let h = TimingHarness {
            min_runs: 0,
            max_runs: 3,
            target_total_us: 1.0,
        };
        let _ = h.measure_us(|| ());
    }
}
