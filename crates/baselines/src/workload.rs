//! A matrix-vector workload in both dense and sparse forms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eie_nn::zoo::random_sparse;
use eie_nn::{CsrMatrix, Matrix};

/// One M×V benchmark instance, materialized in both the dense (`GEMV`)
/// and sparse (`CSRMV`) representations the CPU baselines use, together
/// with batched input vectors.
///
/// The dense form of the largest paper layer (VGG-6) is ~411 MB, so
/// workloads should be created, measured and dropped one at a time.
#[derive(Debug, Clone)]
pub struct MvWorkload {
    dense: Matrix,
    sparse: CsrMatrix,
    /// Column-major `cols × 64` batch of input vectors.
    batch_input: Vec<f32>,
}

/// Largest batch the workload pre-generates inputs for (Table IV uses 64).
pub const MAX_BATCH: usize = 64;

impl MvWorkload {
    /// Synthesizes a `rows × cols` workload at the given weight density.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or the density is outside `(0, 1]`.
    pub fn synthesize(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        let sparse = random_sparse(rows, cols, density, seed);
        Self::from_sparse(sparse, seed ^ 0xbeef)
    }

    /// Builds a workload from an existing sparse matrix (e.g. a zoo
    /// benchmark layer), materializing the dense form.
    pub fn from_sparse(sparse: CsrMatrix, input_seed: u64) -> Self {
        let dense = sparse.to_dense();
        let mut rng = StdRng::seed_from_u64(input_seed);
        let batch_input: Vec<f32> = (0..sparse.cols() * MAX_BATCH)
            .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
            .collect();
        Self {
            dense,
            sparse,
            batch_input,
        }
    }

    /// Matrix rows (outputs).
    pub fn rows(&self) -> usize {
        self.dense.rows()
    }

    /// Matrix columns (inputs).
    pub fn cols(&self) -> usize {
        self.dense.cols()
    }

    /// Achieved weight density.
    pub fn density(&self) -> f64 {
        self.sparse.density()
    }

    /// The dense matrix.
    pub fn dense(&self) -> &Matrix {
        &self.dense
    }

    /// The sparse (CSR) matrix.
    pub fn sparse(&self) -> &CsrMatrix {
        &self.sparse
    }

    /// The input slice for a given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0 or exceeds [`MAX_BATCH`].
    pub fn input(&self, batch: usize) -> &[f32] {
        assert!(
            (1..=MAX_BATCH).contains(&batch),
            "batch must be in 1..={MAX_BATCH}"
        );
        &self.batch_input[..self.cols() * batch]
    }

    /// Runs the dense kernel (`GEMV` at batch 1, `GEMM` otherwise).
    pub fn run_dense(&self, batch: usize) -> Vec<f32> {
        if batch == 1 {
            self.dense.gemv(self.input(1))
        } else {
            self.dense.gemm(self.input(batch), batch)
        }
    }

    /// Runs the sparse kernel (`CSRMV` at batch 1, `CSRMM` otherwise).
    pub fn run_sparse(&self, batch: usize) -> Vec<f32> {
        if batch == 1 {
            self.sparse.spmv(self.input(1))
        } else {
            self.sparse.spmm(self.input(batch), batch)
        }
    }

    /// Dense FLOPs per frame (2 ops per element).
    pub fn dense_flops(&self) -> f64 {
        2.0 * (self.rows() * self.cols()) as f64
    }

    /// Sparse FLOPs per frame.
    pub fn sparse_flops(&self) -> f64 {
        2.0 * self.sparse.nnz() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_sparse_agree() {
        let w = MvWorkload::synthesize(64, 48, 0.2, 7);
        let d = w.run_dense(1);
        let s = w.run_sparse(1);
        for (a, b) in d.iter().zip(&s) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_kernels_agree_with_batch_of_gemv() {
        let w = MvWorkload::synthesize(32, 24, 0.3, 3);
        let d = w.run_dense(4);
        let s = w.run_sparse(4);
        assert_eq!(d.len(), 32 * 4);
        for (a, b) in d.iter().zip(&s) {
            assert!((a - b).abs() < 1e-4);
        }
        // First frame equals batch-1 output.
        let single = w.run_dense(1);
        assert_eq!(&d[..32], single.as_slice());
    }

    #[test]
    fn flop_accounting() {
        let w = MvWorkload::synthesize(100, 50, 0.1, 1);
        assert_eq!(w.dense_flops(), 2.0 * 100.0 * 50.0);
        assert_eq!(w.sparse_flops(), 2.0 * w.sparse().nnz() as f64);
        assert!(w.sparse_flops() < w.dense_flops());
    }

    #[test]
    fn density_close_to_target() {
        let w = MvWorkload::synthesize(200, 200, 0.09, 5);
        assert!((w.density() - 0.09).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "batch must be")]
    fn rejects_oversized_batch() {
        let w = MvWorkload::synthesize(8, 8, 0.5, 1);
        let _ = w.input(65);
    }
}
