//! CPU baselines for the EIE evaluation (paper §V, "Comparison Baseline").
//!
//! The paper benchmarks EIE against MKL `GEMV` (dense) and MKL SPBLAS
//! `CSRMV` (sparse) on a Core i7-5930k, at batch sizes 1 and 64. This
//! crate provides the same four kernels in Rust plus a wall-clock
//! measurement harness:
//!
//! * [`MvWorkload`] — a benchmark instance (dense + CSR forms + inputs),
//! * [`TimingHarness`] — median-of-runs wall-clock measurement,
//! * [`CpuMeasurement`] — the measured batch-{1,64} dense/sparse grid.
//!
//! The measured times exercise the *same algorithmic code paths* as the
//! paper's baselines and reproduce the relative behaviour the paper
//! highlights (sparse ≈2-5× faster than dense at batch 1; sparse *slower*
//! than dense at batch 64). The GPU-class platforms live in
//! `eie-energy::platform` as calibrated roofline models.
//!
//! # Example
//!
//! ```
//! use eie_baselines::{MvWorkload, TimingHarness};
//!
//! let w = MvWorkload::synthesize(256, 256, 0.1, 42);
//! let harness = TimingHarness::quick();
//! let dense = harness.measure_us(|| w.run_dense(1));
//! let sparse = harness.measure_us(|| w.run_sparse(1));
//! assert!(dense > 0.0 && sparse > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod measurement;
mod timing;
mod workload;

pub use measurement::{BaselineBatchRun, CpuMeasurement};
pub use timing::TimingHarness;
pub use workload::{MvWorkload, MAX_BATCH};
