//! The measured CPU grid of Table IV: dense/sparse × batch {1, 64}.

use std::fmt;

use crate::{MvWorkload, TimingHarness};

/// One measured CPU batch run: the baseline-side mirror of the engine's
/// `BatchResult` accounting, so EIE-vs-CPU comparisons report the same
/// quantities (per-frame latency and aggregate frames/s) on both sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineBatchRun {
    /// Which kernel ran (`"dense"` or `"sparse"`).
    pub kernel: &'static str,
    /// Number of frames in the batch.
    pub batch: usize,
    /// Median wall-clock for the whole batch, µs.
    pub wall_us: f64,
}

impl BaselineBatchRun {
    /// Per-frame latency, µs (the paper's Table IV convention).
    pub fn per_frame_us(&self) -> f64 {
        self.wall_us / self.batch as f64
    }

    /// Aggregate inference throughput, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        self.batch as f64 / (self.wall_us * 1e-6)
    }
}

impl fmt::Display for BaselineBatchRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batch {}: {:.1} µs/frame, {:.0} frames/s",
            self.kernel,
            self.batch,
            self.per_frame_us(),
            self.frames_per_second()
        )
    }
}

/// Measured per-frame CPU times for one benchmark layer, µs.
///
/// Mirrors one CPU block of the paper's Table IV. Batched times are
/// reported *per frame* (total batch time divided by batch size), matching
/// the paper's convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuMeasurement {
    /// Dense GEMV, batch 1.
    pub dense_b1_us: f64,
    /// Sparse CSRMV, batch 1.
    pub sparse_b1_us: f64,
    /// Dense GEMM, batch 64, per frame.
    pub dense_b64_us: f64,
    /// Sparse CSRMM, batch 64, per frame.
    pub sparse_b64_us: f64,
}

impl CpuMeasurement {
    /// Measures all four kernels on a workload.
    pub fn measure(workload: &MvWorkload, harness: &TimingHarness) -> Self {
        let dense_b1_us = harness.measure_us(|| workload.run_dense(1));
        let sparse_b1_us = harness.measure_us(|| workload.run_sparse(1));
        let dense_b64_us = harness.measure_us(|| workload.run_dense(64)) / 64.0;
        let sparse_b64_us = harness.measure_us(|| workload.run_sparse(64)) / 64.0;
        Self {
            dense_b1_us,
            sparse_b1_us,
            dense_b64_us,
            sparse_b64_us,
        }
    }

    /// Measures the dense kernel (`GEMV`/`GEMM`) at an arbitrary batch
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0 or exceeds [`crate::MAX_BATCH`].
    pub fn measure_dense_batch(
        workload: &MvWorkload,
        batch: usize,
        harness: &TimingHarness,
    ) -> BaselineBatchRun {
        BaselineBatchRun {
            kernel: "dense",
            batch,
            wall_us: harness.measure_us(|| workload.run_dense(batch)),
        }
    }

    /// Measures the sparse kernel (`CSRMV`/`CSRMM`) at an arbitrary batch
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0 or exceeds [`crate::MAX_BATCH`].
    pub fn measure_sparse_batch(
        workload: &MvWorkload,
        batch: usize,
        harness: &TimingHarness,
    ) -> BaselineBatchRun {
        BaselineBatchRun {
            kernel: "sparse",
            batch,
            wall_us: harness.measure_us(|| workload.run_sparse(batch)),
        }
    }

    /// Speed-up of the compressed (sparse) kernel at batch 1 — the
    /// paper's "model compression by itself applied on a CPU" factor
    /// (§VI-A reports only ~3× on average).
    pub fn sparse_speedup_b1(&self) -> f64 {
        self.dense_b1_us / self.sparse_b1_us
    }

    /// Speed-up from batching the dense kernel.
    pub fn batching_speedup_dense(&self) -> f64 {
        self.dense_b1_us / self.dense_b64_us
    }
}

impl fmt::Display for CpuMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dense {:.1}/{:.1} µs, sparse {:.1}/{:.1} µs (batch 1/64 per frame)",
            self.dense_b1_us, self.dense_b64_us, self.sparse_b1_us, self.sparse_b64_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_wins_at_batch_1_on_a_sparse_layer() {
        // 9%-dense layer: CSRMV touches ~9% of the bytes GEMV streams, so
        // the sparse kernel must be clearly faster at batch 1.
        let w = MvWorkload::synthesize(512, 512, 0.09, 11);
        let m = CpuMeasurement::measure(&w, &TimingHarness::quick());
        assert!(
            m.sparse_speedup_b1() > 1.5,
            "sparse speedup only {:.2} ({m})",
            m.sparse_speedup_b1()
        );
    }

    #[test]
    fn all_measurements_positive() {
        let w = MvWorkload::synthesize(128, 128, 0.2, 3);
        let m = CpuMeasurement::measure(&w, &TimingHarness::quick());
        for t in [
            m.dense_b1_us,
            m.sparse_b1_us,
            m.dense_b64_us,
            m.sparse_b64_us,
        ] {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn batch_runs_report_consistent_rates() {
        let w = MvWorkload::synthesize(96, 96, 0.15, 9);
        let h = TimingHarness::quick();
        let b1 = CpuMeasurement::measure_sparse_batch(&w, 1, &h);
        let b16 = CpuMeasurement::measure_sparse_batch(&w, 16, &h);
        assert_eq!(b1.batch, 1);
        assert_eq!(b1.per_frame_us(), b1.wall_us);
        assert!(b16.wall_us > b1.wall_us, "16 frames must cost more than 1");
        assert!(b16.frames_per_second() > 0.0);
        let d = CpuMeasurement::measure_dense_batch(&w, 4, &h);
        assert_eq!(d.kernel, "dense");
        assert!(d.to_string().contains("frames/s"));
    }

    #[test]
    fn display_reports_all_four_cells() {
        let m = CpuMeasurement {
            dense_b1_us: 1.0,
            sparse_b1_us: 2.0,
            dense_b64_us: 3.0,
            sparse_b64_us: 4.0,
        };
        let s = m.to_string();
        assert!(s.contains("1.0") && s.contains("4.0"));
    }
}
