//! The measured CPU grid of Table IV: dense/sparse × batch {1, 64}.

use std::fmt;

use crate::{MvWorkload, TimingHarness};

/// Measured per-frame CPU times for one benchmark layer, µs.
///
/// Mirrors one CPU block of the paper's Table IV. Batched times are
/// reported *per frame* (total batch time divided by batch size), matching
/// the paper's convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuMeasurement {
    /// Dense GEMV, batch 1.
    pub dense_b1_us: f64,
    /// Sparse CSRMV, batch 1.
    pub sparse_b1_us: f64,
    /// Dense GEMM, batch 64, per frame.
    pub dense_b64_us: f64,
    /// Sparse CSRMM, batch 64, per frame.
    pub sparse_b64_us: f64,
}

impl CpuMeasurement {
    /// Measures all four kernels on a workload.
    pub fn measure(workload: &MvWorkload, harness: &TimingHarness) -> Self {
        let dense_b1_us = harness.measure_us(|| workload.run_dense(1));
        let sparse_b1_us = harness.measure_us(|| workload.run_sparse(1));
        let dense_b64_us = harness.measure_us(|| workload.run_dense(64)) / 64.0;
        let sparse_b64_us = harness.measure_us(|| workload.run_sparse(64)) / 64.0;
        Self {
            dense_b1_us,
            sparse_b1_us,
            dense_b64_us,
            sparse_b64_us,
        }
    }

    /// Speed-up of the compressed (sparse) kernel at batch 1 — the
    /// paper's "model compression by itself applied on a CPU" factor
    /// (§VI-A reports only ~3× on average).
    pub fn sparse_speedup_b1(&self) -> f64 {
        self.dense_b1_us / self.sparse_b1_us
    }

    /// Speed-up from batching the dense kernel.
    pub fn batching_speedup_dense(&self) -> f64 {
        self.dense_b1_us / self.dense_b64_us
    }
}

impl fmt::Display for CpuMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dense {:.1}/{:.1} µs, sparse {:.1}/{:.1} µs (batch 1/64 per frame)",
            self.dense_b1_us, self.dense_b64_us, self.sparse_b1_us, self.sparse_b64_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_wins_at_batch_1_on_a_sparse_layer() {
        // 9%-dense layer: CSRMV touches ~9% of the bytes GEMV streams, so
        // the sparse kernel must be clearly faster at batch 1.
        let w = MvWorkload::synthesize(512, 512, 0.09, 11);
        let m = CpuMeasurement::measure(&w, &TimingHarness::quick());
        assert!(
            m.sparse_speedup_b1() > 1.5,
            "sparse speedup only {:.2} ({m})",
            m.sparse_speedup_b1()
        );
    }

    #[test]
    fn all_measurements_positive() {
        let w = MvWorkload::synthesize(128, 128, 0.2, 3);
        let m = CpuMeasurement::measure(&w, &TimingHarness::quick());
        for t in [
            m.dense_b1_us,
            m.sparse_b1_us,
            m.dense_b64_us,
            m.sparse_b64_us,
        ] {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn display_reports_all_four_cells() {
        let m = CpuMeasurement {
            dense_b1_us: 1.0,
            sparse_b1_us: 2.0,
            dense_b64_us: 3.0,
            sparse_b64_us: 4.0,
        };
        let s = m.to_string();
        assert!(s.contains("1.0") && s.contains("4.0"));
    }
}
