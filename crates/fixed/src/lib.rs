//! Saturating fixed-point arithmetic for the EIE reproduction.
//!
//! EIE's processing elements compute with **16-bit fixed-point** arithmetic
//! (paper §VI-C, Fig. 10): 4-bit weight indices are decoded through a
//! 16-entry codebook of 16-bit fixed-point weights, multiplied by 16-bit
//! fixed-point activations, and accumulated into wider registers before the
//! result is shifted, saturated and written back as a 16-bit activation.
//!
//! This crate provides that substrate:
//!
//! * [`Fix16`] — a compile-time Q-format 16-bit fixed-point number
//!   (the PE datapath type; [`Q8p8`] is the default format),
//! * [`Accum32`] — the 32-bit saturating multiply-accumulate register,
//! * [`QFormat`] / [`DynFix`] — runtime-width fixed point used by the
//!   arithmetic-precision design-space study (paper Fig. 10),
//! * [`Precision`] — the precision axis of that study
//!   (32-bit float, 32/16/8-bit fixed point).
//!
//! # Example
//!
//! ```
//! use eie_fixed::{Fix16, Accum32, Q8p8};
//!
//! let w: Q8p8 = Fix16::from_f32(-1.5);
//! let a: Q8p8 = Fix16::from_f32(0.25);
//! let mut acc = Accum32::zero();
//! acc.mac(w, a);
//! assert!((acc.to_f32::<8>() - (-0.375)).abs() < 1.0 / 256.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod dynfix;
mod fix16;
mod format;
mod precision;

pub use accum::Accum32;
pub use dynfix::DynFix;
pub use fix16::{Fix16, Q4p12, Q8p8};
pub use format::QFormat;
pub use precision::Precision;
