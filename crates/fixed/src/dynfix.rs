//! Runtime-format fixed point for the precision design-space study.

use std::fmt;

use crate::QFormat;

/// A fixed-point value whose format is chosen at runtime.
///
/// The Fig. 10 experiment sweeps the arithmetic precision of the datapath
/// (32-bit float, 32/16/8-bit fixed point). The compile-time
/// [`Fix16`](crate::Fix16) cannot express that sweep, so quantized inference
/// in the study runs on `DynFix`: a raw value paired with its [`QFormat`].
///
/// Operations between values of *different* formats are programming errors
/// and panic; the study always quantizes an entire network to one format.
///
/// # Example
///
/// ```
/// use eie_fixed::{DynFix, QFormat};
///
/// let q = QFormat::new(8, 4);
/// let a = DynFix::from_f64(1.5, q);
/// let b = DynFix::from_f64(2.0, q);
/// assert_eq!((a * b).to_f64(), 3.0);
/// // Saturation at the 8-bit boundary:
/// let big = DynFix::from_f64(7.5, q);
/// assert_eq!((big * big).to_f64(), q.max_value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynFix {
    raw: i64,
    format: QFormat,
}

impl DynFix {
    /// Quantizes a real value into `format` (round-to-nearest, saturating).
    pub fn from_f64(value: f64, format: QFormat) -> Self {
        Self {
            raw: format.quantize(value),
            format,
        }
    }

    /// Creates a value from a raw integer, clamping it into range.
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        Self {
            raw: raw.clamp(format.min_raw(), format.max_raw()),
            format,
        }
    }

    /// Zero in the given format.
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// The raw two's-complement representation.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format this value is quantized in.
    pub fn format(self) -> QFormat {
        self.format
    }

    /// The real value.
    pub fn to_f64(self) -> f64 {
        self.format.dequantize(self.raw)
    }

    /// Saturating addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands' formats differ.
    pub fn saturating_add(self, rhs: Self) -> Self {
        assert_eq!(self.format, rhs.format, "mixed fixed-point formats");
        Self {
            raw: self.format.saturating_add_raw(self.raw, rhs.raw),
            format: self.format,
        }
    }

    /// Saturating multiplication with round-to-nearest.
    ///
    /// # Panics
    ///
    /// Panics if the operands' formats differ.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        assert_eq!(self.format, rhs.format, "mixed fixed-point formats");
        Self {
            raw: self.format.saturating_mul_raw(self.raw, rhs.raw),
            format: self.format,
        }
    }

    /// ReLU: `max(self, 0)`.
    pub fn relu(self) -> Self {
        Self {
            raw: self.raw.max(0),
            format: self.format,
        }
    }

    /// True if exactly zero.
    pub fn is_zero(self) -> bool {
        self.raw == 0
    }
}

impl std::ops::Add for DynFix {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl std::ops::Mul for DynFix {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl fmt::Display for DynFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_mul_match_reals_when_exact() {
        let q = QFormat::new(16, 8);
        let a = DynFix::from_f64(1.25, q);
        let b = DynFix::from_f64(-0.75, q);
        assert_eq!((a + b).to_f64(), 0.5);
        assert_eq!((a * b).to_f64(), -0.9375);
    }

    #[test]
    fn saturates_at_format_bounds() {
        let q = QFormat::new(8, 0); // plain i8
        let a = DynFix::from_f64(100.0, q);
        let b = DynFix::from_f64(100.0, q);
        assert_eq!((a + b).to_f64(), 127.0);
        assert_eq!((a * b).to_f64(), 127.0);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let q = QFormat::new(16, 8);
        assert!(DynFix::from_f64(-5.0, q).relu().is_zero());
        assert_eq!(DynFix::from_f64(5.0, q).relu().to_f64(), 5.0);
    }

    #[test]
    #[should_panic(expected = "mixed fixed-point formats")]
    fn mixed_formats_panic() {
        let a = DynFix::from_f64(1.0, QFormat::new(16, 8));
        let b = DynFix::from_f64(1.0, QFormat::new(8, 4));
        let _ = a + b;
    }

    #[test]
    fn from_raw_clamps() {
        let q = QFormat::new(8, 4);
        assert_eq!(DynFix::from_raw(1 << 20, q).raw(), q.max_raw());
        assert_eq!(DynFix::from_raw(-(1 << 20), q).raw(), q.min_raw());
    }

    #[test]
    fn coarse_format_loses_precision_gracefully() {
        let q8 = QFormat::new(8, 4);
        let q16 = QFormat::new(16, 8);
        let v = 3.17459;
        let err8 = (DynFix::from_f64(v, q8).to_f64() - v).abs();
        let err16 = (DynFix::from_f64(v, q16).to_f64() - v).abs();
        assert!(err8 <= q8.resolution() / 2.0 + 1e-12);
        assert!(err16 <= q16.resolution() / 2.0 + 1e-12);
        assert!(err16 < err8);
    }
}
