//! Runtime Q-format descriptors.

use std::fmt;

/// A runtime description of a signed two's-complement fixed-point format.
///
/// A `QFormat` with `total_bits = m` and `frac_bits = n` represents values
/// `raw / 2^n` where `raw` is an `m`-bit signed integer, i.e. the format
/// usually written `Qm-n.n` (sign bit included in `m`).
///
/// The EIE datapath uses a 16-bit format (paper §VI-C); the Fig. 10
/// precision sweep also evaluates 32-bit and 8-bit fixed point. `QFormat`
/// is the runtime-parameterized counterpart of the compile-time [`Fix16`]
/// type, used where the format is an experiment axis rather than a constant.
///
/// # Example
///
/// ```
/// use eie_fixed::QFormat;
///
/// let q = QFormat::new(16, 8); // Q8.8
/// let raw = q.quantize(1.5);
/// assert_eq!(raw, 384); // 1.5 * 256
/// assert_eq!(q.dequantize(raw), 1.5);
/// ```
///
/// [`Fix16`]: crate::Fix16
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a format with `total_bits` total (including sign) and
    /// `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `total_bits` is 0 or greater than 63, or if
    /// `frac_bits >= total_bits` (at least the sign bit must remain).
    pub fn new(total_bits: u32, frac_bits: u32) -> Self {
        assert!(
            (1..=63).contains(&total_bits),
            "total_bits must be in 1..=63, got {total_bits}"
        );
        assert!(
            frac_bits < total_bits,
            "frac_bits ({frac_bits}) must be < total_bits ({total_bits})"
        );
        Self {
            total_bits,
            frac_bits,
        }
    }

    /// Total number of bits, including the sign bit.
    pub fn total_bits(self) -> u32 {
        self.total_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Number of integer bits (excluding sign, excluding fraction).
    pub fn int_bits(self) -> u32 {
        self.total_bits - 1 - self.frac_bits
    }

    /// Largest representable raw value, `2^(total_bits-1) - 1`.
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable raw value, `-2^(total_bits-1)`.
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable real value.
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 / self.scale()
    }

    /// Smallest (most negative) representable real value.
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 / self.scale()
    }

    /// The value of one least-significant bit, `2^-frac_bits`.
    pub fn resolution(self) -> f64 {
        1.0 / self.scale()
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(self) -> f64 {
        (1i64 << self.frac_bits) as f64
    }

    /// Quantizes a real value to the nearest representable raw integer,
    /// saturating at the format bounds. NaN maps to 0.
    pub fn quantize(self, value: f64) -> i64 {
        if value.is_nan() {
            return 0;
        }
        let scaled = (value * self.scale()).round();
        if scaled >= self.max_raw() as f64 {
            self.max_raw()
        } else if scaled <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            scaled as i64
        }
    }

    /// Converts a raw integer back to its real value.
    ///
    /// The raw value is first clamped into the format's range, so
    /// out-of-range inputs dequantize to the saturation bounds.
    pub fn dequantize(self, raw: i64) -> f64 {
        raw.clamp(self.min_raw(), self.max_raw()) as f64 / self.scale()
    }

    /// Quantizes then dequantizes, i.e. the value as the hardware sees it.
    pub fn round_trip(self, value: f64) -> f64 {
        self.dequantize(self.quantize(value))
    }

    /// Saturating add of two raw values in this format.
    pub fn saturating_add_raw(self, a: i64, b: i64) -> i64 {
        (a + b).clamp(self.min_raw(), self.max_raw())
    }

    /// Saturating multiply of two raw values in this format, with
    /// round-to-nearest on the discarded fractional bits.
    pub fn saturating_mul_raw(self, a: i64, b: i64) -> i64 {
        let product = (a as i128) * (b as i128); // 2*frac_bits fractional bits
        let shifted = round_shift_right_i128(product, self.frac_bits);
        shifted.clamp(self.min_raw() as i128, self.max_raw() as i128) as i64
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{} ({}b)",
            self.total_bits - self.frac_bits,
            self.frac_bits,
            self.total_bits
        )
    }
}

/// Arithmetic shift right with round-to-nearest (ties away from zero).
pub(crate) fn round_shift_right_i128(value: i128, shift: u32) -> i128 {
    if shift == 0 {
        return value;
    }
    let half = 1i128 << (shift - 1);
    if value >= 0 {
        (value + half) >> shift
    } else {
        -((-value + half) >> shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8p8_bounds() {
        let q = QFormat::new(16, 8);
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.min_raw(), -32768);
        assert!((q.max_value() - 127.99609375).abs() < 1e-9);
        assert_eq!(q.min_value(), -128.0);
        assert_eq!(q.resolution(), 1.0 / 256.0);
        assert_eq!(q.int_bits(), 7);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let q = QFormat::new(16, 8);
        // 0.001953125 = 0.5 LSB rounds away from zero.
        assert_eq!(q.quantize(0.001953125), 1);
        assert_eq!(q.quantize(-0.001953125), -1);
        assert_eq!(q.quantize(0.0019), 0);
    }

    #[test]
    fn quantize_saturates() {
        let q = QFormat::new(8, 4); // Q4.4: range [-8, 7.9375]
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -128);
        assert_eq!(q.dequantize(q.quantize(100.0)), 7.9375);
    }

    #[test]
    fn quantize_nan_is_zero() {
        let q = QFormat::new(16, 8);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn dequantize_clamps_out_of_range_raw() {
        let q = QFormat::new(8, 0);
        assert_eq!(q.dequantize(1000), 127.0);
        assert_eq!(q.dequantize(-1000), -128.0);
    }

    #[test]
    fn round_trip_is_idempotent() {
        let q = QFormat::new(16, 12);
        for &v in &[0.0, 1.0, -1.0, 3.17459, -2.71898, 7.9, -8.0] {
            let once = q.round_trip(v);
            let twice = q.round_trip(once);
            assert_eq!(once, twice, "round_trip not idempotent for {v}");
        }
    }

    #[test]
    fn saturating_mul_raw_matches_real_product() {
        let q = QFormat::new(16, 8);
        let a = q.quantize(1.5);
        let b = q.quantize(-2.25);
        let p = q.saturating_mul_raw(a, b);
        assert!((q.dequantize(p) - (-3.375)).abs() < 2.0 * q.resolution());
    }

    #[test]
    fn saturating_mul_raw_saturates() {
        let q = QFormat::new(16, 8);
        let big = q.quantize(120.0);
        assert_eq!(q.saturating_mul_raw(big, big), q.max_raw());
        let neg = q.quantize(-120.0);
        assert_eq!(q.saturating_mul_raw(big, neg), q.min_raw());
    }

    #[test]
    fn round_shift_ties_away_from_zero() {
        assert_eq!(round_shift_right_i128(3, 1), 2); // 1.5 -> 2
        assert_eq!(round_shift_right_i128(-3, 1), -2); // -1.5 -> -2
        assert_eq!(round_shift_right_i128(5, 2), 1); // 1.25 -> 1
        assert_eq!(round_shift_right_i128(6, 2), 2); // 1.5 -> 2
        assert_eq!(round_shift_right_i128(0, 5), 0);
        assert_eq!(round_shift_right_i128(7, 0), 7);
    }

    #[test]
    #[should_panic(expected = "total_bits")]
    fn rejects_zero_total_bits() {
        let _ = QFormat::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn rejects_frac_eq_total() {
        let _ = QFormat::new(8, 8);
    }

    #[test]
    fn display_names_format() {
        assert_eq!(QFormat::new(16, 8).to_string(), "Q8.8 (16b)");
        assert_eq!(QFormat::new(8, 4).to_string(), "Q4.4 (8b)");
    }
}
