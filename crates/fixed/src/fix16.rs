//! Compile-time Q-format 16-bit fixed point: the PE datapath type.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit signed fixed-point number with `FRAC` fractional bits.
///
/// This is the number format of EIE's arithmetic unit: the 16-entry weight
/// codebook stores `Fix16` values, activations are `Fix16`, and products are
/// accumulated in [`Accum32`](crate::Accum32). All arithmetic saturates
/// rather than wrapping, modelling the hardware's clamping behaviour.
///
/// Two aliases cover the formats used in this reproduction:
///
/// * [`Q8p8`] — 8 integer bits / 8 fractional bits; the default activation
///   and weight format (dynamic range ±128, resolution 1/256),
/// * [`Q4p12`] — 4/12 split used when weights are known to be small.
///
/// # Example
///
/// ```
/// use eie_fixed::Q8p8;
///
/// let a = Q8p8::from_f32(2.5);
/// let b = Q8p8::from_f32(-0.5);
/// assert_eq!((a * b).to_f32(), -1.25);
/// assert_eq!((a + b).to_f32(), 2.0);
/// // Saturation instead of overflow:
/// let big = Q8p8::from_f32(100.0);
/// assert_eq!((big * big), Q8p8::MAX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fix16<const FRAC: u32>(i16);

/// `Fix16` with 8 fractional bits (range ±128, resolution 1/256).
pub type Q8p8 = Fix16<8>;

/// `Fix16` with 12 fractional bits (range ±8, resolution 1/4096).
pub type Q4p12 = Fix16<12>;

impl<const FRAC: u32> Fix16<FRAC> {
    /// The largest representable value.
    pub const MAX: Self = Self(i16::MAX);
    /// The smallest (most negative) representable value.
    pub const MIN: Self = Self(i16::MIN);
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// One, i.e. raw `1 << FRAC`.
    pub const ONE: Self = Self(1 << FRAC);

    /// Creates a value from its raw two's-complement representation.
    pub const fn from_raw(raw: i16) -> Self {
        Self(raw)
    }

    /// Returns the raw two's-complement representation.
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Quantizes an `f32`, rounding to nearest and saturating.
    pub fn from_f32(value: f32) -> Self {
        if value.is_nan() {
            return Self::ZERO;
        }
        let scaled = (value as f64 * (1i64 << FRAC) as f64).round();
        if scaled >= i16::MAX as f64 {
            Self::MAX
        } else if scaled <= i16::MIN as f64 {
            Self::MIN
        } else {
            Self(scaled as i16)
        }
    }

    /// Quantizes a whole `f32` slice (the activation-vector case) —
    /// the one definition of the datapath's input conversion, so every
    /// execution path quantizes identically.
    pub fn from_f32_slice(values: &[f32]) -> Vec<Self> {
        values.iter().map(|&v| Self::from_f32(v)).collect()
    }

    /// Converts back to `f32` (exact: every `Fix16` is representable).
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1i64 << FRAC) as f32
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let product = (self.0 as i32) * (rhs.0 as i32);
        let shifted = crate::format::round_shift_right_i128(product as i128, FRAC);
        Self(shifted.clamp(i16::MIN as i128, i16::MAX as i128) as i16)
    }

    /// The full-precision product as a raw `i32` with `2*FRAC` fractional
    /// bits — what the hardware multiplier feeds the accumulator.
    pub fn widening_mul_raw(self, rhs: Self) -> i32 {
        (self.0 as i32) * (rhs.0 as i32)
    }

    /// ReLU: `max(self, 0)`, the non-linearity EIE applies on writeback.
    pub fn relu(self) -> Self {
        if self.0 < 0 {
            Self::ZERO
        } else {
            self
        }
    }

    /// True if this value is exactly zero (drives dynamic sparsity).
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Absolute value, saturating (`|MIN|` clamps to `MAX`).
    pub fn saturating_abs(self) -> Self {
        Self(self.0.saturating_abs())
    }
}

impl<const FRAC: u32> std::ops::Add for Fix16<FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> std::ops::Sub for Fix16<FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const FRAC: u32> std::ops::Mul for Fix16<FRAC> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const FRAC: u32> std::ops::Neg for Fix16<FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        Self(self.0.saturating_neg())
    }
}

impl<const FRAC: u32> PartialOrd for Fix16<FRAC> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const FRAC: u32> Ord for Fix16<FRAC> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl<const FRAC: u32> fmt::Display for Fix16<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl<const FRAC: u32> From<i16> for Fix16<FRAC> {
    /// Interprets the integer as a raw fixed-point bit pattern.
    fn from(raw: i16) -> Self {
        Self::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Q8p8::ONE.to_f32(), 1.0);
        assert_eq!(Q8p8::ZERO.to_f32(), 0.0);
        assert_eq!(Q8p8::MAX.raw(), 32767);
        assert_eq!(Q8p8::MIN.raw(), -32768);
    }

    #[test]
    fn from_f32_rounds() {
        // 1/512 is exactly half an LSB in Q8.8: rounds away from zero.
        assert_eq!(Q8p8::from_f32(1.0 / 512.0).raw(), 1);
        assert_eq!(Q8p8::from_f32(-1.0 / 512.0).raw(), -1);
        assert_eq!(Q8p8::from_f32(0.0009).raw(), 0);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Q8p8::from_f32(1e9), Q8p8::MAX);
        assert_eq!(Q8p8::from_f32(-1e9), Q8p8::MIN);
        assert_eq!(Q8p8::from_f32(f32::NAN), Q8p8::ZERO);
    }

    #[test]
    fn add_saturates() {
        assert_eq!(Q8p8::MAX + Q8p8::ONE, Q8p8::MAX);
        assert_eq!(Q8p8::MIN + (-Q8p8::ONE), Q8p8::MIN);
        assert_eq!((Q8p8::from_f32(1.5) + Q8p8::from_f32(2.25)).to_f32(), 3.75);
    }

    #[test]
    fn mul_exact_cases() {
        assert_eq!((Q8p8::from_f32(0.5) * Q8p8::from_f32(0.5)).to_f32(), 0.25);
        assert_eq!((Q8p8::from_f32(-3.0) * Q8p8::from_f32(2.0)).to_f32(), -6.0);
        assert_eq!((Q8p8::ONE * Q8p8::from_f32(7.125)).to_f32(), 7.125);
    }

    #[test]
    fn mul_saturates_both_signs() {
        let big = Q8p8::from_f32(100.0);
        assert_eq!(big * big, Q8p8::MAX);
        assert_eq!(big * -big, Q8p8::MIN);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!(-Q8p8::MIN, Q8p8::MAX);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Q8p8::from_f32(-3.0).relu(), Q8p8::ZERO);
        assert_eq!(Q8p8::from_f32(3.0).relu(), Q8p8::from_f32(3.0));
        assert_eq!(Q8p8::ZERO.relu(), Q8p8::ZERO);
    }

    #[test]
    fn ordering_matches_reals() {
        let vals = [-2.0f32, -0.5, 0.0, 0.25, 3.0];
        for w in vals.windows(2) {
            assert!(Q8p8::from_f32(w[0]) < Q8p8::from_f32(w[1]));
        }
    }

    #[test]
    fn q4p12_has_finer_resolution() {
        let v = 0.0002441; // ~1 LSB of Q4.12
        assert_eq!(Q4p12::from_f32(v).raw(), 1);
        assert_eq!(Q8p8::from_f32(v).raw(), 0);
    }

    #[test]
    fn widening_mul_raw_is_exact() {
        let a = Q8p8::from_raw(12345);
        let b = Q8p8::from_raw(-321);
        assert_eq!(a.widening_mul_raw(b), 12345 * -321);
    }
}
