//! The arithmetic-precision axis of the paper's Fig. 10 study.

use std::fmt;

use crate::QFormat;

/// Datapath arithmetic precision (paper Fig. 10).
///
/// The paper evaluates prediction accuracy and multiplier energy for 32-bit
/// floating point and 32/16/8-bit fixed point, concluding that 16-bit fixed
/// point loses < 0.5% accuracy while consuming 5–6× less multiply energy,
/// and that 8-bit fixed point collapses accuracy.
///
/// Fixed-point variants carry the Q-format split used by this reproduction:
/// half the bits fractional (Q16.16, Q8.8, Q4.4), matching typical DNN
/// deployments of the era.
///
/// # Example
///
/// ```
/// use eie_fixed::Precision;
///
/// // 16-bit fixed point represents 0.3 with a small error…
/// let e16 = (Precision::Fixed16.quantize(0.3) - 0.3).abs();
/// // …and 8-bit fixed point with a much larger one.
/// let e8 = (Precision::Fixed8.quantize(0.3) - 0.3).abs();
/// assert!(e16 < e8);
/// assert_eq!(Precision::Float32.quantize(0.3), 0.30000001192092896);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE-754 single precision (the accuracy reference).
    Float32,
    /// 32-bit fixed point, Q16.16.
    Fixed32,
    /// 16-bit fixed point, Q8.8 — EIE's datapath choice.
    Fixed16,
    /// 8-bit fixed point, Q4.4.
    Fixed8,
}

impl Precision {
    /// All precisions in the order the paper's Fig. 10 plots them.
    pub const ALL: [Precision; 4] = [
        Precision::Float32,
        Precision::Fixed32,
        Precision::Fixed16,
        Precision::Fixed8,
    ];

    /// The operand width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Float32 | Precision::Fixed32 => 32,
            Precision::Fixed16 => 16,
            Precision::Fixed8 => 8,
        }
    }

    /// The fixed-point format, or `None` for floating point.
    pub fn qformat(self) -> Option<QFormat> {
        match self {
            Precision::Float32 => None,
            Precision::Fixed32 => Some(QFormat::new(32, 16)),
            Precision::Fixed16 => Some(QFormat::new(16, 8)),
            Precision::Fixed8 => Some(QFormat::new(8, 4)),
        }
    }

    /// Quantizes a value as this precision's datapath would represent it:
    /// a fixed-point round-trip, or an `f32` round-trip for `Float32`.
    pub fn quantize(self, value: f64) -> f64 {
        match self.qformat() {
            Some(q) => q.round_trip(value),
            None => value as f32 as f64,
        }
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(self, values: &mut [f64]) {
        for v in values.iter_mut() {
            *v = self.quantize(*v);
        }
    }

    /// True for the fixed-point variants.
    pub fn is_fixed(self) -> bool {
        self.qformat().is_some()
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Precision::Float32 => "32b Float",
            Precision::Fixed32 => "32b Int",
            Precision::Fixed16 => "16b Int",
            Precision::Fixed8 => "8b Int",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_four_in_paper_order() {
        assert_eq!(Precision::ALL.len(), 4);
        assert_eq!(Precision::ALL[0], Precision::Float32);
        assert_eq!(Precision::ALL[3], Precision::Fixed8);
    }

    #[test]
    fn bits_match_names() {
        assert_eq!(Precision::Float32.bits(), 32);
        assert_eq!(Precision::Fixed32.bits(), 32);
        assert_eq!(Precision::Fixed16.bits(), 16);
        assert_eq!(Precision::Fixed8.bits(), 8);
    }

    #[test]
    fn quantization_error_grows_as_bits_shrink() {
        let v = 0.777;
        let e32 = (Precision::Fixed32.quantize(v) - v).abs();
        let e16 = (Precision::Fixed16.quantize(v) - v).abs();
        let e8 = (Precision::Fixed8.quantize(v) - v).abs();
        assert!(e32 < e16 && e16 < e8);
    }

    #[test]
    fn fixed8_saturates_moderate_values() {
        // Q4.4 clips beyond ±8 — the root cause of the accuracy collapse.
        assert_eq!(Precision::Fixed8.quantize(20.0), 7.9375);
        assert_eq!(Precision::Fixed8.quantize(-20.0), -8.0);
    }

    #[test]
    fn float32_is_identity_for_f32_representables() {
        assert_eq!(Precision::Float32.quantize(1.5), 1.5);
        assert!(!Precision::Float32.is_fixed());
    }

    #[test]
    fn quantize_slice_applies_elementwise() {
        let mut xs = [0.3, -0.3, 100.0];
        Precision::Fixed8.quantize_slice(&mut xs);
        assert_eq!(xs[0], 0.3125);
        assert_eq!(xs[1], -0.3125);
        assert_eq!(xs[2], 7.9375);
    }

    #[test]
    fn display_matches_paper_axis_labels() {
        let labels: Vec<String> = Precision::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(labels, ["32b Float", "32b Int", "16b Int", "8b Int"]);
    }
}
