//! The 32-bit multiply-accumulate register of the arithmetic unit.

use std::fmt;

use crate::Fix16;

/// A 32-bit saturating accumulator, as found in EIE's arithmetic unit.
///
/// The PE performs `b_x = b_x + v × a_j` (paper §IV, "Arithmetic Unit"):
/// the 16×16-bit product is accumulated at full precision into a 32-bit
/// destination-activation register. When two `Fix16<FRAC>` values are
/// multiplied the product carries `2*FRAC` fractional bits, so the
/// accumulator holds raw values in that extended format; [`to_fix16`]
/// performs the hardware's *shift-and-add* stage (round, shift by `FRAC`,
/// saturate) to produce the 16-bit output activation.
///
/// Accumulation saturates instead of wrapping, modelling clamping adders.
///
/// # Example
///
/// ```
/// use eie_fixed::{Accum32, Q8p8, Fix16};
///
/// let mut acc = Accum32::zero();
/// acc.mac(Q8p8::from_f32(1.5), Q8p8::from_f32(2.0));
/// acc.mac(Q8p8::from_f32(-0.5), Q8p8::from_f32(1.0));
/// assert_eq!(acc.to_fix16::<8>().to_f32(), 2.5);
/// ```
///
/// [`to_fix16`]: Accum32::to_fix16
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Accum32(i32);

impl Accum32 {
    /// A zeroed accumulator (accumulators are cleared before each layer).
    pub const fn zero() -> Self {
        Self(0)
    }

    /// Creates an accumulator holding a raw extended-format value.
    pub const fn from_raw(raw: i32) -> Self {
        Self(raw)
    }

    /// The raw accumulator contents (fractional bits = `2*FRAC` of the
    /// operands that were multiplied in).
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Multiply-accumulate: `self += w * a`, saturating on overflow.
    pub fn mac<const FRAC: u32>(&mut self, w: Fix16<FRAC>, a: Fix16<FRAC>) {
        self.0 = self.0.saturating_add(w.widening_mul_raw(a));
    }

    /// Adds another accumulator's contents, saturating.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// The shift-and-saturate writeback stage: rounds away the extra `FRAC`
    /// fractional bits and clamps into 16-bit range.
    pub fn to_fix16<const FRAC: u32>(self) -> Fix16<FRAC> {
        let shifted = crate::format::round_shift_right_i128(self.0 as i128, FRAC);
        Fix16::from_raw(shifted.clamp(i16::MIN as i128, i16::MAX as i128) as i16)
    }

    /// Converts to `f32`, interpreting the raw value with `2*FRAC`
    /// fractional bits.
    pub fn to_f32<const FRAC: u32>(self) -> f32 {
        self.0 as f32 / (1i64 << (2 * FRAC)) as f32
    }

    /// True if the accumulator is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Accum32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Accum32({:#010x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q8p8;

    #[test]
    fn mac_accumulates_exactly() {
        let mut acc = Accum32::zero();
        for _ in 0..4 {
            acc.mac(Q8p8::from_f32(0.25), Q8p8::from_f32(0.25));
        }
        assert_eq!(acc.to_f32::<8>(), 0.25);
        assert_eq!(acc.to_fix16::<8>().to_f32(), 0.25);
    }

    #[test]
    fn mac_mixed_signs() {
        let mut acc = Accum32::zero();
        acc.mac(Q8p8::from_f32(3.0), Q8p8::from_f32(2.0));
        acc.mac(Q8p8::from_f32(-1.5), Q8p8::from_f32(4.0));
        assert_eq!(acc.to_fix16::<8>().to_f32(), 0.0);
        assert!(acc.is_zero());
    }

    #[test]
    fn accumulator_saturates_instead_of_wrapping() {
        let mut acc = Accum32::from_raw(i32::MAX);
        acc.mac(Q8p8::MAX, Q8p8::MAX);
        assert_eq!(acc.raw(), i32::MAX);
        let mut acc = Accum32::from_raw(i32::MIN);
        acc.mac(Q8p8::MAX, Q8p8::MIN);
        assert_eq!(acc.raw(), i32::MIN);
    }

    #[test]
    fn writeback_saturates_to_16_bits() {
        let mut acc = Accum32::zero();
        // 100 * 100 = 10000 overflows Q8.8's ±128 range.
        acc.mac(Q8p8::from_f32(100.0), Q8p8::from_f32(100.0));
        assert_eq!(acc.to_fix16::<8>(), Q8p8::MAX);
        let mut acc = Accum32::zero();
        acc.mac(Q8p8::from_f32(-100.0), Q8p8::from_f32(100.0));
        assert_eq!(acc.to_fix16::<8>(), Q8p8::MIN);
    }

    #[test]
    fn writeback_rounds_to_nearest() {
        // Raw product format has 16 fractional bits; raw 128 = 0.5 LSB of Q8.8.
        let acc = Accum32::from_raw(128);
        assert_eq!(acc.to_fix16::<8>().raw(), 1);
        let acc = Accum32::from_raw(127);
        assert_eq!(acc.to_fix16::<8>().raw(), 0);
        let acc = Accum32::from_raw(-128);
        assert_eq!(acc.to_fix16::<8>().raw(), -1);
    }

    #[test]
    fn saturating_add_combines_accumulators() {
        let a = Accum32::from_raw(i32::MAX - 5);
        let b = Accum32::from_raw(100);
        assert_eq!(a.saturating_add(b).raw(), i32::MAX);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Accum32::zero().to_string().is_empty());
    }
}
