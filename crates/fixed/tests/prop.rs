//! Property-based tests for the fixed-point substrate.

use eie_fixed::{Accum32, DynFix, Fix16, Precision, Q8p8, QFormat};
use proptest::prelude::*;

fn arb_qformat() -> impl Strategy<Value = QFormat> {
    (2u32..=32).prop_flat_map(|total| (0..total).prop_map(move |frac| QFormat::new(total, frac)))
}

proptest! {
    /// Quantizing any finite value then dequantizing lands within half an
    /// LSB, unless the value saturates.
    #[test]
    fn qformat_roundtrip_error_bounded(v in -1e6f64..1e6, q in arb_qformat()) {
        let rt = q.round_trip(v);
        if v <= q.max_value() && v >= q.min_value() {
            prop_assert!((rt - v).abs() <= q.resolution() / 2.0 + 1e-12,
                "v={v} rt={rt} q={q}");
        } else {
            prop_assert!(rt == q.max_value() || rt == q.min_value());
        }
    }

    /// Quantization is monotone: a <= b implies q(a) <= q(b).
    #[test]
    fn qformat_quantize_monotone(a in -1e6f64..1e6, b in -1e6f64..1e6, q in arb_qformat()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// Saturating ops never leave the representable range.
    #[test]
    fn qformat_ops_stay_in_range(a in any::<i32>(), b in any::<i32>(), q in arb_qformat()) {
        let a = (a as i64).clamp(q.min_raw(), q.max_raw());
        let b = (b as i64).clamp(q.min_raw(), q.max_raw());
        for r in [q.saturating_add_raw(a, b), q.saturating_mul_raw(a, b)] {
            prop_assert!(r >= q.min_raw() && r <= q.max_raw());
        }
    }

    /// Fix16 round-trips through f32 exactly (every raw value is
    /// representable as f32).
    #[test]
    fn fix16_f32_roundtrip_exact(raw in any::<i16>()) {
        let x = Q8p8::from_raw(raw);
        prop_assert_eq!(Q8p8::from_f32(x.to_f32()), x);
    }

    /// Fix16 multiplication is commutative.
    #[test]
    fn fix16_mul_commutative(a in any::<i16>(), b in any::<i16>()) {
        let (a, b) = (Q8p8::from_raw(a), Q8p8::from_raw(b));
        prop_assert_eq!(a * b, b * a);
    }

    /// Fix16 addition is commutative and ZERO is its identity.
    #[test]
    fn fix16_add_commutative_with_identity(a in any::<i16>(), b in any::<i16>()) {
        let (a, b) = (Q8p8::from_raw(a), Q8p8::from_raw(b));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Q8p8::ZERO, a);
    }

    /// Fix16 multiply matches real multiplication within one LSB when the
    /// real product is in range.
    #[test]
    fn fix16_mul_accuracy(a in -180.0f32..180.0, b in -180.0f32..180.0) {
        let fa = Q8p8::from_f32(a);
        let fb = Q8p8::from_f32(b);
        let real = fa.to_f32() as f64 * fb.to_f32() as f64;
        if real.abs() < 127.0 {
            let got = (fa * fb).to_f32() as f64;
            prop_assert!((got - real).abs() <= 1.0 / 256.0 + 1e-9,
                "a={a} b={b} got={got} real={real}");
        }
    }

    /// MAC over a random sequence matches f64 reference within accumulated
    /// rounding error (products are exact; only the writeback rounds).
    #[test]
    fn accum_matches_f64_reference(pairs in prop::collection::vec((-4.0f32..4.0, -4.0f32..4.0), 0..64)) {
        let mut acc = Accum32::zero();
        let mut reference = 0.0f64;
        for &(w, a) in &pairs {
            let (fw, fa) = (Q8p8::from_f32(w), Q8p8::from_f32(a));
            acc.mac(fw, fa);
            reference += fw.to_f32() as f64 * fa.to_f32() as f64;
        }
        if reference.abs() < 120.0 {
            let got = acc.to_fix16::<8>().to_f32() as f64;
            // products are exact in the accumulator; only writeback rounds.
            prop_assert!((got - reference).abs() <= 1.0 / 256.0 + 1e-9,
                "got={got} ref={reference}");
        }
    }

    /// ReLU is idempotent and never returns a negative value.
    #[test]
    fn relu_idempotent_nonnegative(raw in any::<i16>()) {
        let x = Q8p8::from_raw(raw);
        let r = x.relu();
        prop_assert!(r >= Q8p8::ZERO);
        prop_assert_eq!(r.relu(), r);
    }

    /// DynFix arithmetic agrees with Fix16 when both use Q8.8.
    #[test]
    fn dynfix_agrees_with_fix16(a0 in -100.0f64..100.0, b0 in -100.0f64..100.0) {
        // Quantize both representations from the identical f32 value
        // (f32 -> f64 is exact, so the two paths see the same input).
        let (a, b) = (a0 as f32 as f64, b0 as f32 as f64);
        let q = QFormat::new(16, 8);
        let (da, db) = (DynFix::from_f64(a, q), DynFix::from_f64(b, q));
        let (fa, fb) = (Q8p8::from_f32(a as f32), Q8p8::from_f32(b as f32));
        prop_assert_eq!((da + db).raw(), (fa + fb).raw() as i64);
        prop_assert_eq!((da * db).raw(), (fa * fb).raw() as i64);
    }

    /// Precision::quantize error is bounded by the format resolution for
    /// in-range values, for every fixed-point precision.
    #[test]
    fn precision_error_bounded(v in -7.5f64..7.5) {
        for p in [Precision::Fixed32, Precision::Fixed16, Precision::Fixed8] {
            let q = p.qformat().unwrap();
            let err = (p.quantize(v) - v).abs();
            prop_assert!(err <= q.resolution() / 2.0 + 1e-12, "{p}: err={err}");
        }
    }

    /// Fix16 negation saturates only at MIN and is otherwise an involution.
    #[test]
    fn fix16_neg_involution(raw in (i16::MIN + 1)..=i16::MAX) {
        let x = Fix16::<8>::from_raw(raw);
        prop_assert_eq!(-(-x), x);
    }
}
