//! Pluggable execution backends: one compiled artifact, three engines.
//!
//! The paper's evaluation runs the same compressed layer on three very
//! different vehicles — RTL, a cycle-accurate simulator, and a golden
//! Caffe model. This module captures that structure as a [`Backend`]
//! trait over one [`CompiledModel`] artifact:
//!
//! * [`CycleAccurate`] — the `eie-sim` cycle model: *modelled* hardware
//!   latency (cycles at the configured clock) plus full activity
//!   statistics for energy pricing,
//! * [`Functional`] — the untimed bit-exact golden model (per-item host
//!   wall-clock is reported for bookkeeping, it models nothing),
//! * [`NativeCpu`] — an optimized, multi-threaded interleaved-CSC SpMV
//!   kernel executing the same [`EncodedLayer`] format at host speed:
//!   the serving path.
//!
//! All three produce **bit-identical `Q8p8` outputs** for the same
//! inputs: they share the broadcast schedule
//! ([`eie_sim::broadcast_schedule`]) and the hardware's accumulation
//! order, so saturation behaviour cannot diverge (asserted by the
//! cross-backend test-suite and a property test).

mod cycle;
mod functional;
mod native;

use std::fmt;

use eie_compress::{CodebookStrategy, EncodedLayer};
use eie_fixed::Q8p8;
use eie_nn::CsrMatrix;
use eie_sim::SimStats;

use crate::EieConfig;

pub use cycle::CycleAccurate;
pub use functional::Functional;
pub use native::NativeCpu;

/// Selects which backend executes a model — the serializable "name" of a
/// backend, resolved to an implementation by [`BackendKind::instantiate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The cycle-accurate simulator (modelled time and energy).
    #[default]
    CycleAccurate,
    /// The untimed bit-exact golden model.
    Functional,
    /// The host-speed multi-threaded kernel with this many worker
    /// threads (`0` = one per available core).
    NativeCpu(usize),
}

impl BackendKind {
    /// Builds the backend this kind names, for an accelerator config.
    pub fn instantiate(self, config: &EieConfig) -> Box<dyn Backend> {
        match self {
            BackendKind::CycleAccurate => Box::new(CycleAccurate::new(config.sim_config())),
            BackendKind::Functional => Box::new(Functional::new()),
            BackendKind::NativeCpu(0) => Box::new(NativeCpu::new()),
            BackendKind::NativeCpu(threads) => Box::new(NativeCpu::with_threads(threads)),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::CycleAccurate => write!(f, "cycle-accurate"),
            BackendKind::Functional => write!(f, "functional"),
            BackendKind::NativeCpu(0) => write!(f, "native-cpu"),
            BackendKind::NativeCpu(t) => write!(f, "native-cpu({t})"),
        }
    }
}

/// Per-item result of one backend execution (a layer or a network).
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Output activations by global row, Q8.8.
    pub outputs: Vec<Q8p8>,
    /// Item latency in seconds: modelled hardware time for
    /// [`CycleAccurate`], measured host wall-clock otherwise.
    pub latency_s: f64,
    /// Full cycle/activity statistics ([`CycleAccurate`] only).
    pub stats: Option<SimStats>,
}

impl BackendRun {
    /// Item latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }
}

/// An execution backend: anything that can run a compressed layer on
/// quantized activations.
///
/// The trait's surface is deliberately the two layer-level primitives —
/// multi-layer chaining (ReLU between layers) lives in exactly one
/// place, the inference core behind
/// [`CompiledModel::infer`](CompiledModel::infer) and
/// [`run_stack_quantized`](crate::run_stack_quantized), so a second
/// network path cannot drift from the served one.
///
/// Implementations must be bit-exact with the functional golden model:
/// same zero-activation skipping (the broadcast schedule), same
/// accumulation order, same `Q8p8` writeback. Only *timing semantics*
/// may differ — see [`Backend::is_modeled`].
pub trait Backend: fmt::Debug + Send + Sync {
    /// A short stable name for reports (`"cycle-accurate"`, …).
    fn name(&self) -> &'static str;

    /// `true` when [`BackendRun::latency_s`] is modelled hardware time;
    /// `false` when it is measured host wall-clock.
    fn is_modeled(&self) -> bool {
        false
    }

    /// Executes one layer (raw M×V; `relu` applies ReLU on writeback).
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != layer.cols()`.
    fn run_layer(&self, layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> BackendRun;

    /// Executes a batch of activation vectors against one layer.
    ///
    /// The default loops [`Backend::run_layer`]; [`NativeCpu`] overrides
    /// it to spread items across worker threads.
    ///
    /// # Panics
    ///
    /// Panics if any item's length differs from `layer.cols()`.
    fn run_layer_batch(
        &self,
        layer: &EncodedLayer,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<BackendRun> {
        batch
            .iter()
            .map(|acts| self.run_layer(layer, acts, relu))
            .collect()
    }
}

/// A compressed model compiled for one accelerator configuration — the
/// single artifact every [`Backend`] executes, and the unit of
/// deployment (serializable to the versioned `.eie` container via
/// [`CompiledModel::save`] / [`CompiledModel::load`]).
///
/// Compiling fixes the PE interleaving, codebooks and index width; after
/// that the *same* artifact runs on the cycle model (for hardware
/// numbers), the functional model (for verification) or the native
/// kernel (for serving), with bit-identical outputs — whether it was
/// compiled in-process or loaded from a `.eie` file.
///
/// # Example
///
/// ```
/// use eie_core::{BackendKind, CompiledModel, EieConfig};
/// use eie_core::nn::zoo::random_sparse;
///
/// let w1 = random_sparse(32, 24, 0.2, 1);
/// let w2 = random_sparse(16, 32, 0.2, 2);
/// let model = CompiledModel::compile(
///     EieConfig::default().with_num_pes(4),
///     &[&w1, &w2],
/// );
/// assert_eq!(model.input_dim(), 24);
/// assert_eq!(model.output_dim(), 16);
/// let batch = vec![vec![1.0f32; 24]; 3];
/// let result = model.infer(BackendKind::Functional).submit(&batch);
/// assert_eq!(result.batch_size(), 3);
///
/// // The artifact roundtrips through the container format bit-exactly.
/// let restored = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
/// assert_eq!(restored, model);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    config: EieConfig,
    layers: Vec<EncodedLayer>,
    name: String,
}

impl CompiledModel {
    /// Compresses a feed-forward stack of pruned weight matrices for the
    /// given accelerator configuration, one codebook per layer
    /// (delegates to the unified
    /// [`CompilePipeline`](eie_compress::CompilePipeline)).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, consecutive dimensions mismatch, or
    /// any matrix has no non-zeros.
    pub fn compile(config: EieConfig, weights: &[&CsrMatrix]) -> Self {
        let layers = config.pipeline().compile_stack(weights);
        Self {
            config,
            layers,
            name: String::new(),
        }
    }

    /// Like [`CompiledModel::compile`], but fits **one codebook shared
    /// by every layer** (a single weight-decoder table for the chip).
    ///
    /// # Panics
    ///
    /// Same conditions as [`CompiledModel::compile`].
    pub fn compile_shared_codebook(config: EieConfig, weights: &[&CsrMatrix]) -> Self {
        let layers = config
            .pipeline()
            .with_codebook_strategy(CodebookStrategy::Shared)
            .compile_stack(weights);
        Self {
            config,
            layers,
            name: String::new(),
        }
    }

    /// Compiles a single-layer model.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no non-zeros.
    pub fn compile_layer(config: EieConfig, weights: &CsrMatrix) -> Self {
        Self::compile(config, &[weights])
    }

    /// Constructor for deserialization and zoo export: adopts
    /// already-encoded layers without re-running the pipeline. The
    /// caller (the artifact loader) has validated the invariants.
    pub(crate) fn from_parts(config: EieConfig, layers: Vec<EncodedLayer>, name: String) -> Self {
        Self {
            config,
            layers,
            name,
        }
    }

    /// Adopts already-encoded layers as a model — the bridge for code
    /// that compiles layers individually (e.g. via
    /// [`CompilePipeline::compile_dense`](eie_compress::CompilePipeline::compile_dense))
    /// but wants the unified [`CompiledModel::infer`] surface.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, any layer was compressed for a
    /// different PE count than `config`, or consecutive layer dimensions
    /// mismatch.
    pub fn from_layers(config: EieConfig, layers: Vec<EncodedLayer>) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        for layer in &layers {
            assert_eq!(
                layer.num_pes(),
                config.num_pes,
                "layer compressed for a different PE count"
            );
        }
        for pair in layers.windows(2) {
            assert_eq!(
                pair[1].cols(),
                pair[0].rows(),
                "layer dimension mismatch in the stack"
            );
        }
        Self {
            config,
            layers,
            name: String::new(),
        }
    }

    /// Names the model (recorded in the `.eie` container's topology
    /// metadata; purely descriptive).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The model's name ("" when unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when every layer references one identical codebook (the
    /// pipeline's shared-codebook mode; trivially true for one layer).
    pub fn has_shared_codebook(&self) -> bool {
        self.layers
            .windows(2)
            .all(|pair| pair[0].codebook() == pair[1].codebook())
    }

    /// The configuration the model was compiled for.
    pub fn config(&self) -> &EieConfig {
        &self.config
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The encoded layers, input to output.
    pub fn layers(&self) -> &[EncodedLayer] {
        &self.layers
    }

    /// The layers as a reference vector — the shape the execution core
    /// ([`run_stack_quantized`](crate::run_stack_quantized)) and the
    /// legacy `Engine` network shims consume.
    pub fn layer_refs(&self) -> Vec<&EncodedLayer> {
        self.layers.iter().collect()
    }

    /// One encoded layer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_layers()`.
    pub fn layer(&self, i: usize) -> &EncodedLayer {
        &self.layers[i]
    }

    /// Input dimension (first layer's columns).
    pub fn input_dim(&self) -> usize {
        self.layers[0].cols()
    }

    /// Output dimension (last layer's rows).
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].rows()
    }

    /// Runs a batch of `f32` input vectors end to end on the chosen
    /// backend (quantizing to Q8.8 first), aggregating a
    /// [`BatchResult`](crate::BatchResult).
    ///
    /// Deprecated thin shim: [`CompiledModel::infer`] is the one
    /// inference surface — `model.infer(kind).submit(batch)` returns a
    /// [`JobResult`](crate::JobResult) whose `.batch` field is this
    /// method's return value.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or an item's length differs from
    /// [`CompiledModel::input_dim`].
    #[deprecated(since = "0.1.0", note = "use CompiledModel::infer(kind).submit(batch)")]
    pub fn run_batch(&self, kind: BackendKind, batch: &[Vec<f32>]) -> crate::BatchResult {
        self.infer(kind).submit(batch).batch
    }
}

impl fmt::Display for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompiledModel(")?;
        if !self.name.is_empty() {
            write!(f, "{:?}, ", self.name)?;
        }
        write!(
            f,
            "{} layers, {}→{}, {})",
            self.num_layers(),
            self.input_dim(),
            self.output_dim(),
            self.config
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::compress;
    use eie_nn::zoo::random_sparse;

    fn quantize(acts: &[f32]) -> Vec<Q8p8> {
        acts.iter().map(|&a| Q8p8::from_f32(a)).collect()
    }

    #[test]
    fn kinds_instantiate_matching_backends() {
        let cfg = EieConfig::default().with_num_pes(2);
        assert_eq!(
            BackendKind::CycleAccurate.instantiate(&cfg).name(),
            "cycle-accurate"
        );
        assert_eq!(
            BackendKind::Functional.instantiate(&cfg).name(),
            "functional"
        );
        assert_eq!(
            BackendKind::NativeCpu(3).instantiate(&cfg).name(),
            "native-cpu"
        );
        assert!(BackendKind::CycleAccurate.instantiate(&cfg).is_modeled());
        assert!(!BackendKind::NativeCpu(0).instantiate(&cfg).is_modeled());
        assert_eq!(BackendKind::default(), BackendKind::CycleAccurate);
        assert_eq!(BackendKind::NativeCpu(4).to_string(), "native-cpu(4)");
    }

    #[test]
    fn stack_chaining_applies_relu_between() {
        let w1 = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 1, 1.0)]);
        let w2 = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let cfg = EieConfig::default().with_num_pes(2);
        let l1 = compress(&w1, cfg.compress_config());
        let l2 = compress(&w2, cfg.compress_config());
        let backend = Functional::new();
        let runs = crate::run_stack_quantized(&backend, &[&l1, &l2], &[quantize(&[1.0, 1.0])]);
        // Layer 1 raw: [-1, 1] → ReLU → [0, 1]; layer 2: 0 + 1 = 1.
        assert_eq!(runs[0].outputs.len(), 1);
        assert_eq!(runs[0].outputs[0].to_f32(), 1.0);
    }

    #[test]
    fn compiled_model_reports_shape_and_runs() {
        let w1 = random_sparse(24, 16, 0.3, 1);
        let w2 = random_sparse(8, 24, 0.3, 2);
        let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2]);
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.input_dim(), 16);
        assert_eq!(model.output_dim(), 8);
        assert_eq!(model.layer(0).num_pes(), 4);
        assert!(model.to_string().contains("16→8"));
        let batch = vec![vec![0.5f32; 16]; 2];
        let result = model.infer(BackendKind::Functional).submit(&batch);
        assert_eq!(result.batch_size(), 2);
        assert_eq!(result.outputs(0).len(), 8);
        // The deprecated shim stays a bit-exact alias of the job surface.
        #[allow(deprecated)]
        let legacy = model.run_batch(BackendKind::Functional, &batch);
        for i in 0..batch.len() {
            assert_eq!(legacy.outputs(i), result.outputs(i));
        }
    }

    #[test]
    fn from_layers_adopts_individually_compiled_layers() {
        let cfg = EieConfig::default().with_num_pes(2);
        let w1 = random_sparse(24, 16, 0.3, 5);
        let w2 = random_sparse(8, 24, 0.3, 6);
        let pipeline = cfg.pipeline();
        let model = CompiledModel::from_layers(
            cfg,
            vec![pipeline.compile_matrix(&w1), pipeline.compile_matrix(&w2)],
        );
        assert_eq!(model.input_dim(), 16);
        assert_eq!(model.output_dim(), 8);
        let compiled = CompiledModel::compile(cfg, &[&w1, &w2]);
        let input = vec![vec![0.25f32; 16]];
        assert_eq!(
            model
                .infer(BackendKind::Functional)
                .submit(&input)
                .outputs(0),
            compiled
                .infer(BackendKind::Functional)
                .submit(&input)
                .outputs(0)
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn from_layers_rejects_mismatched_stack() {
        let cfg = EieConfig::default().with_num_pes(2);
        let pipeline = cfg.pipeline();
        let _ = CompiledModel::from_layers(
            cfg,
            vec![
                pipeline.compile_matrix(&random_sparse(24, 16, 0.3, 5)),
                pipeline.compile_matrix(&random_sparse(8, 23, 0.3, 6)),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn compile_rejects_mismatched_stack() {
        let w1 = random_sparse(24, 16, 0.3, 1);
        let w2 = random_sparse(8, 23, 0.3, 2);
        let _ = CompiledModel::compile(EieConfig::default().with_num_pes(2), &[&w1, &w2]);
    }
}
