//! Pluggable execution backends: one compiled artifact, three engines.
//!
//! The paper's evaluation runs the same compressed layer on three very
//! different vehicles — RTL, a cycle-accurate simulator, and a golden
//! Caffe model. This module captures that structure as a [`Backend`]
//! trait over one [`CompiledModel`] artifact:
//!
//! * [`CycleAccurate`] — the `eie-sim` cycle model: *modelled* hardware
//!   latency (cycles at the configured clock) plus full activity
//!   statistics for energy pricing,
//! * [`Functional`] — the untimed bit-exact golden model (per-item host
//!   wall-clock is reported for bookkeeping, it models nothing),
//! * [`NativeCpu`] — an optimized, multi-threaded interleaved-CSC SpMV
//!   kernel executing the same [`EncodedLayer`] format at host speed:
//!   the serving path.
//!
//! All three produce **bit-identical `Q8p8` outputs** for the same
//! inputs: they share the broadcast schedule
//! ([`eie_sim::broadcast_schedule`]) and the hardware's accumulation
//! order, so saturation behaviour cannot diverge (asserted by the
//! cross-backend test-suite and a property test).

mod cycle;
mod functional;
mod native;
mod pool;

use std::fmt;
use std::sync::{Arc, OnceLock};

use eie_compress::{CodebookStrategy, EncodedLayer, LayerPlan};
use eie_fixed::Q8p8;
use eie_nn::CsrMatrix;
use eie_sim::SimStats;

use crate::EieConfig;

pub use cycle::CycleAccurate;
pub use functional::Functional;
pub(crate) use native::default_threads;
pub use native::{lane_isa, NativeCpu};

/// Validates one activation vector against a layer's input dimension —
/// the shared entry-point check every backend applies before touching
/// the kernel, so malformed input fails with one message everywhere.
///
/// # Panics
///
/// Panics if `acts.len() != layer.cols()`.
pub(crate) fn check_activations(layer: &EncodedLayer, acts: &[Q8p8]) {
    assert_eq!(acts.len(), layer.cols(), "activation length mismatch");
}

/// Validates every item of a batch against a layer's input dimension
/// (the batched entry-point analogue of [`check_activations`]).
///
/// # Panics
///
/// Panics if any item's length differs from `layer.cols()`.
pub(crate) fn check_activation_batch(layer: &EncodedLayer, batch: &[Vec<Q8p8>]) {
    for item in batch {
        assert_eq!(item.len(), layer.cols(), "activation length mismatch");
    }
}

/// Selects which backend executes a model — the serializable "name" of a
/// backend, resolved to an implementation by [`BackendKind::instantiate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The cycle-accurate simulator (modelled time and energy).
    #[default]
    CycleAccurate,
    /// The untimed bit-exact golden model.
    Functional,
    /// The host-speed multi-threaded kernel with this many worker
    /// threads (`0` = one per available core), executing cached
    /// pre-decoded [`LayerPlan`]s on a persistent worker pool.
    NativeCpu(usize),
    /// The native kernel with plans disabled: per-call entry-stream
    /// decode and scoped threads, exactly the pre-plan code path. The
    /// measured A/B baseline (`kernel_sweep`, `eie bench
    /// --backend streaming`), not a serving configuration.
    NativeStreaming(usize),
}

impl BackendKind {
    /// Builds the backend this kind names, for an accelerator config.
    pub fn instantiate(self, config: &EieConfig) -> Box<dyn Backend> {
        match self {
            BackendKind::CycleAccurate => Box::new(CycleAccurate::new(config.sim_config())),
            BackendKind::Functional => Box::new(Functional::new()),
            BackendKind::NativeCpu(0) => Box::new(NativeCpu::new()),
            BackendKind::NativeCpu(threads) => Box::new(NativeCpu::with_threads(threads)),
            BackendKind::NativeStreaming(0) => Box::new(NativeCpu::new().without_plans()),
            BackendKind::NativeStreaming(threads) => {
                Box::new(NativeCpu::with_threads(threads).without_plans())
            }
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::CycleAccurate => write!(f, "cycle-accurate"),
            BackendKind::Functional => write!(f, "functional"),
            BackendKind::NativeCpu(0) => write!(f, "native-cpu"),
            BackendKind::NativeCpu(t) => write!(f, "native-cpu({t})"),
            BackendKind::NativeStreaming(0) => write!(f, "native-streaming"),
            BackendKind::NativeStreaming(t) => write!(f, "native-streaming({t})"),
        }
    }
}

/// A layer paired with its pre-built execution plan, when the caller
/// has one — the unit the inference core hands to
/// [`Backend::run_layer_planned`] / [`Backend::run_layer_batch_planned`].
///
/// Callers that hold a [`CompiledModel`] get planned layers for free
/// from its per-layer plan cache ([`CompiledModel::planned_layer`]);
/// bare-layer callers use [`PlannedLayer::unplanned`] and the backend
/// falls back to its own cache (plan-aware backends) or the compressed
/// stream (everything else).
#[derive(Debug, Clone, Copy)]
pub struct PlannedLayer<'a> {
    /// The compressed layer (always present — the artifact of record).
    pub layer: &'a EncodedLayer,
    /// The layer's pre-decoded plan, if the caller built one.
    pub plan: Option<&'a Arc<LayerPlan>>,
}

impl<'a> PlannedLayer<'a> {
    /// Wraps a bare layer with no pre-built plan.
    pub fn unplanned(layer: &'a EncodedLayer) -> Self {
        Self { layer, plan: None }
    }
}

/// Per-item result of one backend execution (a layer or a network).
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Output activations by global row, Q8.8.
    pub outputs: Vec<Q8p8>,
    /// Item latency in seconds: modelled hardware time for
    /// [`CycleAccurate`], measured host wall-clock otherwise.
    ///
    /// For items of a *fused* batch this is the whole batch's wall time
    /// (the batch completes as a unit, so that is each item's serving
    /// latency) — identical across the batch, which makes latency
    /// percentiles over fused runs degenerate. Throughput-style
    /// per-item cost lives in [`BackendRun::amortized_s`].
    pub latency_s: f64,
    /// Item cost in seconds with fused-batch wall time amortized over
    /// the batch (`wall / batch_size`). Equal to [`BackendRun::latency_s`]
    /// for unfused (solo or looped) execution.
    pub amortized_s: f64,
    /// Full cycle/activity statistics ([`CycleAccurate`] only).
    pub stats: Option<SimStats>,
}

impl BackendRun {
    /// Item latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Amortized per-item cost in microseconds (`wall / batch` for
    /// fused batches, the plain latency otherwise).
    pub fn amortized_us(&self) -> f64 {
        self.amortized_s * 1e6
    }

    /// An unfused run: the amortized cost *is* the latency.
    pub(crate) fn solo(outputs: Vec<Q8p8>, latency_s: f64, stats: Option<SimStats>) -> Self {
        Self {
            outputs,
            latency_s,
            amortized_s: latency_s,
            stats,
        }
    }
}

/// An execution backend: anything that can run a compressed layer on
/// quantized activations.
///
/// The trait's surface is deliberately the two layer-level primitives —
/// multi-layer chaining (ReLU between layers) lives in exactly one
/// place, the inference core behind
/// [`CompiledModel::infer`](CompiledModel::infer) and
/// [`run_stack_quantized`](crate::run_stack_quantized), so a second
/// network path cannot drift from the served one.
///
/// Implementations must be bit-exact with the functional golden model:
/// same zero-activation skipping (the broadcast schedule), same
/// accumulation order, same `Q8p8` writeback. Only *timing semantics*
/// may differ — see [`Backend::is_modeled`].
pub trait Backend: fmt::Debug + Send + Sync {
    /// A short stable name for reports (`"cycle-accurate"`, …).
    fn name(&self) -> &'static str;

    /// `true` when [`BackendRun::latency_s`] is modelled hardware time;
    /// `false` when it is measured host wall-clock.
    fn is_modeled(&self) -> bool {
        false
    }

    /// Executes one layer (raw M×V; `relu` applies ReLU on writeback).
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != layer.cols()`.
    fn run_layer(&self, layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> BackendRun;

    /// Executes a batch of activation vectors against one layer.
    ///
    /// The default validates every item's length up front, then loops
    /// [`Backend::run_layer`]; [`NativeCpu`] overrides it to run the
    /// fused whole-batch kernel across its worker pool.
    ///
    /// # Panics
    ///
    /// Panics if any item's length differs from `layer.cols()`.
    fn run_layer_batch(
        &self,
        layer: &EncodedLayer,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<BackendRun> {
        check_activation_batch(layer, batch);
        batch
            .iter()
            .map(|acts| self.run_layer(layer, acts, relu))
            .collect()
    }

    /// `true` when this backend executes pre-decoded [`LayerPlan`]s, so
    /// callers holding a [`CompiledModel`] should pass its cached plans
    /// through the `_planned` entry points (and skip building plans for
    /// backends that would ignore them).
    fn wants_plans(&self) -> bool {
        false
    }

    /// Executes one layer, using the caller's pre-built plan when the
    /// backend can (default: ignores the plan and streams the layer).
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != planned.layer.cols()`.
    fn run_layer_planned(
        &self,
        planned: PlannedLayer<'_>,
        acts: &[Q8p8],
        relu: bool,
    ) -> BackendRun {
        self.run_layer(planned.layer, acts, relu)
    }

    /// Batched analogue of [`Backend::run_layer_planned`].
    ///
    /// # Panics
    ///
    /// Panics if any item's length differs from `planned.layer.cols()`.
    fn run_layer_batch_planned(
        &self,
        planned: PlannedLayer<'_>,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<BackendRun> {
        self.run_layer_batch(planned.layer, batch, relu)
    }
}

/// A compressed model compiled for one accelerator configuration — the
/// single artifact every [`Backend`] executes, and the unit of
/// deployment (serializable to the versioned `.eie` container via
/// [`CompiledModel::save`] / [`CompiledModel::load`]).
///
/// Compiling fixes the PE interleaving, codebooks and index width; after
/// that the *same* artifact runs on the cycle model (for hardware
/// numbers), the functional model (for verification) or the native
/// kernel (for serving), with bit-identical outputs — whether it was
/// compiled in-process or loaded from a `.eie` file.
///
/// # Example
///
/// ```
/// use eie_core::{BackendKind, CompiledModel, EieConfig};
/// use eie_core::nn::zoo::random_sparse;
///
/// let w1 = random_sparse(32, 24, 0.2, 1);
/// let w2 = random_sparse(16, 32, 0.2, 2);
/// let model = CompiledModel::compile(
///     EieConfig::default().with_num_pes(4),
///     &[&w1, &w2],
/// );
/// assert_eq!(model.input_dim(), 24);
/// assert_eq!(model.output_dim(), 16);
/// let batch = vec![vec![1.0f32; 24]; 3];
/// let result = model.infer(BackendKind::Functional).submit(&batch);
/// assert_eq!(result.batch_size(), 3);
///
/// // The artifact roundtrips through the container format bit-exactly.
/// let restored = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
/// assert_eq!(restored, model);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    config: EieConfig,
    layers: Vec<EncodedLayer>,
    name: String,
    /// Lazily-built execution plans, one slot per layer. Shared by
    /// every worker serving this model (behind the `Arc<CompiledModel>`
    /// a `ModelServer` hands out), so a model's layers are lowered at
    /// most once per process however many backends execute them.
    plans: PlanCache,
}

/// Per-layer [`LayerPlan`] slots. A cache, not model content: cloning
/// clones whatever is built (cheap — the plans are `Arc`d), equality
/// always holds (two models with equal layers are equal whether or not
/// their plans have been built), and the artifact codec ignores it.
#[derive(Debug, Clone, Default)]
struct PlanCache(Vec<OnceLock<Arc<LayerPlan>>>);

impl PlanCache {
    fn for_layers(n: usize) -> Self {
        Self((0..n).map(|_| OnceLock::new()).collect())
    }
}

impl PartialEq for PlanCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl CompiledModel {
    /// Compresses a feed-forward stack of pruned weight matrices for the
    /// given accelerator configuration, one codebook per layer
    /// (delegates to the unified
    /// [`CompilePipeline`](eie_compress::CompilePipeline)).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, consecutive dimensions mismatch, or
    /// any matrix has no non-zeros.
    pub fn compile(config: EieConfig, weights: &[&CsrMatrix]) -> Self {
        let layers = config.pipeline().compile_stack(weights);
        let plans = PlanCache::for_layers(layers.len());
        Self {
            config,
            layers,
            name: String::new(),
            plans,
        }
    }

    /// Like [`CompiledModel::compile`], but fits **one codebook shared
    /// by every layer** (a single weight-decoder table for the chip).
    ///
    /// # Panics
    ///
    /// Same conditions as [`CompiledModel::compile`].
    pub fn compile_shared_codebook(config: EieConfig, weights: &[&CsrMatrix]) -> Self {
        let layers = config
            .pipeline()
            .with_codebook_strategy(CodebookStrategy::Shared)
            .compile_stack(weights);
        let plans = PlanCache::for_layers(layers.len());
        Self {
            config,
            layers,
            name: String::new(),
            plans,
        }
    }

    /// Compiles a single-layer model.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no non-zeros.
    pub fn compile_layer(config: EieConfig, weights: &CsrMatrix) -> Self {
        Self::compile(config, &[weights])
    }

    /// Constructor for deserialization and zoo export: adopts
    /// already-encoded layers without re-running the pipeline. The
    /// caller (the artifact loader) has validated the invariants.
    pub(crate) fn from_parts(config: EieConfig, layers: Vec<EncodedLayer>, name: String) -> Self {
        let plans = PlanCache::for_layers(layers.len());
        Self {
            config,
            layers,
            name,
            plans,
        }
    }

    /// Adopts already-encoded layers as a model — the bridge for code
    /// that compiles layers individually (e.g. via
    /// [`CompilePipeline::compile_dense`](eie_compress::CompilePipeline::compile_dense))
    /// but wants the unified [`CompiledModel::infer`] surface.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, any layer was compressed for a
    /// different PE count than `config`, or consecutive layer dimensions
    /// mismatch.
    pub fn from_layers(config: EieConfig, layers: Vec<EncodedLayer>) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        for layer in &layers {
            assert_eq!(
                layer.num_pes(),
                config.num_pes,
                "layer compressed for a different PE count"
            );
        }
        for pair in layers.windows(2) {
            assert_eq!(
                pair[1].cols(),
                pair[0].rows(),
                "layer dimension mismatch in the stack"
            );
        }
        let plans = PlanCache::for_layers(layers.len());
        Self {
            config,
            layers,
            name: String::new(),
            plans,
        }
    }

    /// Names the model (recorded in the `.eie` container's topology
    /// metadata; purely descriptive).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The model's name ("" when unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when every layer references one identical codebook (the
    /// pipeline's shared-codebook mode; trivially true for one layer).
    pub fn has_shared_codebook(&self) -> bool {
        self.layers
            .windows(2)
            .all(|pair| pair[0].codebook() == pair[1].codebook())
    }

    /// The configuration the model was compiled for.
    pub fn config(&self) -> &EieConfig {
        &self.config
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The encoded layers, input to output.
    pub fn layers(&self) -> &[EncodedLayer] {
        &self.layers
    }

    /// The layers as a reference vector — the shape the execution core
    /// ([`run_stack_quantized`](crate::run_stack_quantized)) and the
    /// legacy `Engine` network shims consume.
    pub fn layer_refs(&self) -> Vec<&EncodedLayer> {
        self.layers.iter().collect()
    }

    /// One encoded layer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_layers()`.
    pub fn layer(&self, i: usize) -> &EncodedLayer {
        &self.layers[i]
    }

    /// The pre-decoded execution plan of layer `i`, lowered on first
    /// access and cached for the life of the model. Every plan-aware
    /// backend serving this model (however many workers) scans the same
    /// shared plan — the entry stream is decoded at most once per layer
    /// per process.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_layers()`.
    pub fn plan(&self, i: usize) -> &Arc<LayerPlan> {
        self.plans.0[i].get_or_init(|| Arc::new(LayerPlan::build(&self.layers[i])))
    }

    /// How many of the model's layer plans have been built so far.
    pub fn plans_built(&self) -> usize {
        self.plans
            .0
            .iter()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Layer `i` paired with its cached plan — what the inference core
    /// hands to plan-aware backends.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_layers()`.
    pub fn planned_layer(&self, i: usize) -> PlannedLayer<'_> {
        PlannedLayer {
            layer: &self.layers[i],
            plan: Some(self.plan(i)),
        }
    }

    /// Every layer paired with its cached plan, input to output
    /// (building any plan not yet lowered) — the serving stack's
    /// warmup-and-execute shape.
    pub fn planned_layers(&self) -> Vec<PlannedLayer<'_>> {
        (0..self.num_layers())
            .map(|i| self.planned_layer(i))
            .collect()
    }

    /// Input dimension (first layer's columns).
    pub fn input_dim(&self) -> usize {
        self.layers[0].cols()
    }

    /// Output dimension (last layer's rows).
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].rows()
    }

    /// Runs a batch of `f32` input vectors end to end on the chosen
    /// backend (quantizing to Q8.8 first), aggregating a
    /// [`BatchResult`](crate::BatchResult).
    ///
    /// Deprecated thin shim: [`CompiledModel::infer`] is the one
    /// inference surface — `model.infer(kind).submit(batch)` returns a
    /// [`JobResult`](crate::JobResult) whose `.batch` field is this
    /// method's return value.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or an item's length differs from
    /// [`CompiledModel::input_dim`].
    #[deprecated(since = "0.1.0", note = "use CompiledModel::infer(kind).submit(batch)")]
    pub fn run_batch(&self, kind: BackendKind, batch: &[Vec<f32>]) -> crate::BatchResult {
        self.infer(kind).submit(batch).batch
    }
}

impl fmt::Display for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompiledModel(")?;
        if !self.name.is_empty() {
            write!(f, "{:?}, ", self.name)?;
        }
        write!(
            f,
            "{} layers, {}→{}, {})",
            self.num_layers(),
            self.input_dim(),
            self.output_dim(),
            self.config
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::compress;
    use eie_nn::zoo::random_sparse;

    fn quantize(acts: &[f32]) -> Vec<Q8p8> {
        acts.iter().map(|&a| Q8p8::from_f32(a)).collect()
    }

    #[test]
    fn kinds_instantiate_matching_backends() {
        let cfg = EieConfig::default().with_num_pes(2);
        assert_eq!(
            BackendKind::CycleAccurate.instantiate(&cfg).name(),
            "cycle-accurate"
        );
        assert_eq!(
            BackendKind::Functional.instantiate(&cfg).name(),
            "functional"
        );
        assert_eq!(
            BackendKind::NativeCpu(3).instantiate(&cfg).name(),
            "native-cpu"
        );
        assert!(BackendKind::CycleAccurate.instantiate(&cfg).is_modeled());
        assert!(!BackendKind::NativeCpu(0).instantiate(&cfg).is_modeled());
        assert_eq!(BackendKind::default(), BackendKind::CycleAccurate);
        assert_eq!(BackendKind::NativeCpu(4).to_string(), "native-cpu(4)");
    }

    #[test]
    fn stack_chaining_applies_relu_between() {
        let w1 = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 1, 1.0)]);
        let w2 = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let cfg = EieConfig::default().with_num_pes(2);
        let l1 = compress(&w1, cfg.compress_config());
        let l2 = compress(&w2, cfg.compress_config());
        let backend = Functional::new();
        let runs = crate::run_stack_quantized(&backend, &[&l1, &l2], &[quantize(&[1.0, 1.0])]);
        // Layer 1 raw: [-1, 1] → ReLU → [0, 1]; layer 2: 0 + 1 = 1.
        assert_eq!(runs[0].outputs.len(), 1);
        assert_eq!(runs[0].outputs[0].to_f32(), 1.0);
    }

    #[test]
    fn compiled_model_reports_shape_and_runs() {
        let w1 = random_sparse(24, 16, 0.3, 1);
        let w2 = random_sparse(8, 24, 0.3, 2);
        let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2]);
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.input_dim(), 16);
        assert_eq!(model.output_dim(), 8);
        assert_eq!(model.layer(0).num_pes(), 4);
        assert!(model.to_string().contains("16→8"));
        let batch = vec![vec![0.5f32; 16]; 2];
        let result = model.infer(BackendKind::Functional).submit(&batch);
        assert_eq!(result.batch_size(), 2);
        assert_eq!(result.outputs(0).len(), 8);
        // The deprecated shim stays a bit-exact alias of the job surface.
        #[allow(deprecated)]
        let legacy = model.run_batch(BackendKind::Functional, &batch);
        for i in 0..batch.len() {
            assert_eq!(legacy.outputs(i), result.outputs(i));
        }
    }

    #[test]
    fn from_layers_adopts_individually_compiled_layers() {
        let cfg = EieConfig::default().with_num_pes(2);
        let w1 = random_sparse(24, 16, 0.3, 5);
        let w2 = random_sparse(8, 24, 0.3, 6);
        let pipeline = cfg.pipeline();
        let model = CompiledModel::from_layers(
            cfg,
            vec![pipeline.compile_matrix(&w1), pipeline.compile_matrix(&w2)],
        );
        assert_eq!(model.input_dim(), 16);
        assert_eq!(model.output_dim(), 8);
        let compiled = CompiledModel::compile(cfg, &[&w1, &w2]);
        let input = vec![vec![0.25f32; 16]];
        assert_eq!(
            model
                .infer(BackendKind::Functional)
                .submit(&input)
                .outputs(0),
            compiled
                .infer(BackendKind::Functional)
                .submit(&input)
                .outputs(0)
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn from_layers_rejects_mismatched_stack() {
        let cfg = EieConfig::default().with_num_pes(2);
        let pipeline = cfg.pipeline();
        let _ = CompiledModel::from_layers(
            cfg,
            vec![
                pipeline.compile_matrix(&random_sparse(24, 16, 0.3, 5)),
                pipeline.compile_matrix(&random_sparse(8, 23, 0.3, 6)),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn compile_rejects_mismatched_stack() {
        let w1 = random_sparse(24, 16, 0.3, 1);
        let w2 = random_sparse(8, 23, 0.3, 2);
        let _ = CompiledModel::compile(EieConfig::default().with_num_pes(2), &[&w1, &w2]);
    }
}
