//! The persistent worker pool behind the native backend.
//!
//! The pre-plan `NativeCpu` spawned fresh `std::thread::scope` workers
//! for every layer of every request — cheap next to a cold kernel, but
//! pure overhead once the kernel itself is a linear scan over a
//! [`LayerPlan`](eie_compress::LayerPlan). This pool inverts that:
//! workers are spawned **once** (lazily, on the backend's first
//! parallel run) and then parked on a condvar, each owning a reusable
//! [`WorkerScratch`](super::native::WorkerScratch) so the steady state
//! neither spawns threads nor allocates.
//!
//! The protocol is deliberately channel-free: a `Mutex<Slot>` +
//! `Condvar` pair per worker is a fixed-size mailbox (no queue-node
//! allocation per send, unlike `mpsc`), and a shared [`Latch`] counts
//! the in-flight tasks of one wave back to zero. The backend holds
//! its session lock for the whole run, so at most one task is ever
//! pending per worker — the mailbox can never overflow. A sharded
//! dispatch with more shard ranges than pool slots reuses the same
//! discipline in successive waves: each wave's latch releases (and its
//! scratch is gathered) before the next wave's submits.
//!
//! Lifecycle: the owning backend distributes one [`Task`] per busy
//! worker, runs its own share of the PE slices inline, waits on the
//! latch, then harvests each worker's scratch under an uncontended
//! lock. Dropping the pool (dropping the last backend clone) parks a
//! shutdown marker in every mailbox and joins the threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use super::native::{Task, WorkerScratch};

/// Locks a mutex, recovering from poisoning. Pool state is safe to
/// reuse after a worker panic: scratch buffers are fully overwritten by
/// the next task, and the latch's failure flag (not the mutex) carries
/// the panic to the session holder.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker's mailbox state.
enum Slot {
    /// Nothing to do; the worker is parked on the condvar.
    Idle,
    /// One task, claimed by the worker on wake-up.
    Pending(Task),
    /// The pool is being dropped; the worker exits.
    Shutdown,
}

/// The state shared between one pool thread and the owning backend.
struct WorkerShared {
    slot: Mutex<Slot>,
    cv: Condvar,
    /// The worker's persistent buffers. The worker holds this lock only
    /// while executing a task; the backend locks it (uncontended) after
    /// the latch releases, to gather the task's outputs.
    scratch: Mutex<WorkerScratch>,
}

/// Counts one layer run's outstanding tasks down to zero, carrying a
/// failure flag so a panicking task surfaces at the session holder
/// instead of deadlocking it (the guarantee `std::thread::scope` gave
/// the pre-pool kernel).
#[derive(Debug)]
pub(super) struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
    failed: AtomicBool,
}

impl Latch {
    pub(super) fn new() -> Self {
        Self {
            remaining: Mutex::new(0),
            cv: Condvar::new(),
            failed: AtomicBool::new(false),
        }
    }

    /// Arms the latch for `n` tasks. Only the session holder calls
    /// this, strictly between runs.
    pub(super) fn reset(&self, n: usize) {
        self.failed.store(false, Ordering::Relaxed);
        *lock_recovering(&self.remaining) = n;
    }

    /// Signals one task complete (successfully or not — a failed task
    /// calls [`Latch::mark_failed`] first, then still counts down).
    pub(super) fn count_down(&self) {
        let mut remaining = lock_recovering(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Records that a task panicked instead of completing.
    pub(super) fn mark_failed(&self) {
        self.failed.store(true, Ordering::Relaxed);
    }

    /// Blocks until every armed task has counted down; returns `true`
    /// if any of them panicked (the caller must not trust the run's
    /// outputs and should propagate the failure).
    pub(super) fn wait(&self) -> bool {
        let mut remaining = lock_recovering(&self.remaining);
        while *remaining > 0 {
            remaining = self
                .cv
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        self.failed.load(Ordering::Relaxed)
    }
}

/// A fixed set of parked worker threads, spawned once per backend.
pub(super) struct WorkerPool {
    workers: Vec<Arc<WorkerShared>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` parked threads (named `eie-native-<i>`).
    ///
    /// # Panics
    ///
    /// Panics if a thread cannot be spawned.
    pub(super) fn new(workers: usize) -> Self {
        let shared: Vec<Arc<WorkerShared>> = (0..workers)
            .map(|_| {
                Arc::new(WorkerShared {
                    slot: Mutex::new(Slot::Idle),
                    cv: Condvar::new(),
                    scratch: Mutex::new(WorkerScratch::default()),
                })
            })
            .collect();
        let handles = shared
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let s = Arc::clone(s);
                std::thread::Builder::new()
                    .name(format!("eie-native-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn native kernel worker")
            })
            .collect();
        Self {
            workers: shared,
            handles,
        }
    }

    /// Number of pool threads.
    pub(super) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Hands `task` to worker `i`'s mailbox and wakes it.
    ///
    /// The caller must hold the backend session (so the previous run's
    /// task has been claimed) and must have armed the task's latch.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the mailbox is unexpectedly
    /// occupied (a session-discipline violation).
    pub(super) fn submit(&self, i: usize, task: Task) {
        let worker = &self.workers[i];
        let mut slot = lock_recovering(&worker.slot);
        match *slot {
            Slot::Idle => *slot = Slot::Pending(task),
            _ => unreachable!("worker mailbox occupied: session discipline violated"),
        }
        worker.cv.notify_one();
    }

    /// Runs `f` over worker `i`'s scratch — valid (and uncontended)
    /// only after the run's latch released.
    pub(super) fn with_scratch<R>(&self, i: usize, f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
        let mut scratch = lock_recovering(&self.workers[i].scratch);
        f(&mut scratch)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for worker in &self.workers {
            let mut slot = lock_recovering(&worker.slot);
            *slot = Slot::Shutdown;
            worker.cv.notify_one();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Park → claim → execute → count down, until shutdown.
///
/// A panic inside a task must not strand the session holder on the
/// latch (the thread would die before counting down and every later
/// run on the engine would hang), so execution is unwind-caught: the
/// latch is marked failed, counted down, and the worker survives to
/// serve the next run — the session holder re-raises the panic at its
/// call site, which is exactly where `std::thread::scope` used to
/// surface it.
fn worker_loop(shared: &WorkerShared) {
    loop {
        let task = {
            let mut slot = lock_recovering(&shared.slot);
            loop {
                match std::mem::replace(&mut *slot, Slot::Idle) {
                    Slot::Pending(task) => break task,
                    Slot::Shutdown => return,
                    Slot::Idle => {
                        slot = shared.cv.wait(slot).unwrap_or_else(PoisonError::into_inner)
                    }
                }
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut scratch = lock_recovering(&shared.scratch);
            task.run(&mut scratch);
        }));
        // Drop the task's Arc'd inputs *before* releasing the latch, so
        // the session holder regains unique ownership of its reusable
        // schedule buffers the moment `wait` returns.
        let latch = Arc::clone(task.latch());
        drop(task);
        if outcome.is_err() {
            latch.mark_failed();
        }
        latch.count_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_counts_down_and_carries_failure() {
        let latch = Latch::new();
        latch.reset(2);
        latch.mark_failed();
        latch.count_down();
        latch.count_down();
        assert!(latch.wait(), "failure flag must survive until wait");
        // Re-arming clears the flag: one run's panic must not poison
        // the next run's verdict.
        latch.reset(0);
        assert!(!latch.wait());
    }
}
