//! The cycle-accurate backend: `eie-sim` behind the [`Backend`] trait.

use eie_compress::EncodedLayer;
use eie_fixed::Q8p8;
use eie_sim::{simulate_fixed, SimConfig};

use super::{check_activations, Backend, BackendRun};

/// Executes layers on the cycle-accurate simulator (paper §V).
///
/// Latency is *modelled* hardware time — `total_cycles` at the
/// configured clock — and every run carries the full
/// [`SimStats`](eie_sim::SimStats) for energy pricing. This is the
/// backend behind a [`BackendKind::CycleAccurate`](crate::BackendKind)
/// inference job; use it directly when you need trait-object dispatch.
#[derive(Debug, Clone)]
pub struct CycleAccurate {
    sim: SimConfig,
}

impl CycleAccurate {
    /// A cycle-accurate backend with the given simulator configuration.
    pub fn new(sim: SimConfig) -> Self {
        Self { sim }
    }

    /// The simulator configuration runs use.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }
}

impl Backend for CycleAccurate {
    fn name(&self) -> &'static str {
        "cycle-accurate"
    }

    fn is_modeled(&self) -> bool {
        true
    }

    fn run_layer(&self, layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> BackendRun {
        check_activations(layer, acts);
        let run = simulate_fixed(layer, acts, &self.sim, relu);
        let latency_s = run.stats.seconds_at(self.sim.clock_hz);
        BackendRun::solo(run.outputs, latency_s, Some(run.stats))
    }
    // Batches use the trait's default per-item loop: the hardware has no
    // batch dimension, so there is nothing to fuse (`eie_sim`'s own
    // `simulate_batch` serves direct simulator users the same way).
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;

    #[test]
    fn latency_is_cycles_over_clock() {
        let layer = Benchmark::Alex7.generate_scaled(1, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let acts: Vec<Q8p8> = layer
            .sample_activations(1)
            .iter()
            .map(|&a| Q8p8::from_f32(a))
            .collect();
        let backend = CycleAccurate::new(SimConfig::default());
        let run = backend.run_layer(&enc, &acts, false);
        let stats = run.stats.as_ref().expect("cycle backend keeps stats");
        assert!(stats.total_cycles > 0);
        assert!((run.latency_s - stats.total_cycles as f64 / 800e6).abs() < 1e-15);
        // Batched entry agrees with the per-item path.
        let batch = vec![acts.clone(), acts];
        let runs = backend.run_layer_batch(&enc, &batch, false);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].outputs, run.outputs);
        assert_eq!(runs[1].stats, run.stats);
    }
}
