//! The native-CPU backend: host-speed serving on the EIE format.
//!
//! The Retrospective (Han et al., 2023) argues that what aged well about
//! EIE is the *dataflow* — skip zero activations, walk the interleaved
//! CSC slices, accumulate per output row — not the 45 nm implementation.
//! This backend is that argument as code: the same [`EncodedLayer`]
//! artifact, the same broadcast schedule, the same fixed-point
//! accumulation order, executed by `std::thread`-scoped workers at host
//! speed instead of modelled 800 MHz cycles.
//!
//! Batches run through a **fused kernel**: each slice's compressed entry
//! stream is decoded once for the whole batch (the CSC analogue of the
//! GEMV→GEMM fusion that makes CPU batching pay, Table IV), so batch
//! throughput beats looping the per-item kernel even single-threaded —
//! at the cost of per-item latency, which is exactly the latency-versus-
//! throughput trade the paper frames EIE against.

use std::time::Instant;

use eie_compress::{EncodedLayer, PeSlice, CODEBOOK_SIZE};
use eie_fixed::{Accum32, Q8p8};
use eie_sim::broadcast_schedule;

use super::{Backend, BackendRun};

/// An optimized, multi-threaded interleaved-CSC SpMV kernel over the
/// compressed [`EncodedLayer`] format.
///
/// Bit-exactness with the hardware comes from preserving its arithmetic
/// structure exactly: each accumulator belongs to one PE slice, and for
/// any one item, columns are visited in broadcast order with entries in
/// storage order — so every `Accum32` sees the *same sequence of
/// saturating adds* as the cycle model, regardless of how slices are
/// spread across threads or how many items share a fused pass.
///
/// Single items split their PE slices across workers; batches run the
/// fused whole-batch kernel, also split by slice. A fused batch
/// completes as a unit, so every item of a batched [`BackendRun`]
/// reports the batch's wall time as its latency — batching buys
/// throughput, not latency, as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct NativeCpu {
    threads: usize,
}

impl NativeCpu {
    /// A kernel with one worker per available core.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self { threads }
    }

    /// A kernel with an explicit worker count (1 = single-threaded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "threads must be non-zero");
        Self { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for NativeCpu {
    fn default() -> Self {
        Self::new()
    }
}

/// The decoded codebook as raw `i32` multiplicands — hoisting the
/// fixed-point wrappers out of the inner loops.
fn raw_codebook(codebook: &[Q8p8; CODEBOOK_SIZE]) -> [i32; CODEBOOK_SIZE] {
    let mut raw = [0i32; CODEBOOK_SIZE];
    for (slot, w) in raw.iter_mut().zip(codebook) {
        *slot = w.raw() as i32;
    }
    raw
}

/// Accumulates every scheduled column of one PE slice and writes back
/// the slice's local outputs — the per-item unit of work.
///
/// The loop body is exactly the hardware MAC on raw values —
/// `acc = acc.saturating_add(w_raw * a_raw)`, the definition of
/// [`Accum32::mac`] — with one bit-exact shortcut: padding entries
/// (`code == 0`) decode to a raw-zero weight, and saturating-adding zero
/// never changes an accumulator, so they only advance the row cursor.
fn run_slice(
    slice: &PeSlice,
    codebook: &[i32; CODEBOOK_SIZE],
    schedule: &[(u32, i32)],
    relu: bool,
) -> Vec<Q8p8> {
    let mut accum = vec![0i32; slice.local_rows()];
    for &(j, a) in schedule {
        let mut cursor = 0usize;
        for e in slice.col_entries(j as usize) {
            let row = cursor + e.zrun as usize;
            cursor = row + 1;
            if e.code == 0 {
                continue;
            }
            let acc = &mut accum[row];
            *acc = acc.saturating_add(codebook[e.code as usize] * a);
        }
    }
    accum.into_iter().map(|acc| writeback(acc, relu)).collect()
}

/// The shift-saturate(-ReLU) writeback stage (identical rounding and
/// clamping to the hardware's, via [`Accum32::to_fix16`]).
fn writeback(acc_raw: i32, relu: bool) -> Q8p8 {
    let v = Accum32::from_raw(acc_raw).to_fix16::<8>();
    if relu {
        v.relu()
    } else {
        v
    }
}

/// The batch analogue of the broadcast schedule: for every column, the
/// `(item, activation)` pairs with a non-zero activation — computed once
/// and shared read-only by every slice worker.
fn batch_schedule(batch: &[Vec<Q8p8>], cols: usize) -> Vec<Vec<(u32, i32)>> {
    let mut per_col: Vec<Vec<(u32, i32)>> = vec![Vec::new(); cols];
    for (i, item) in batch.iter().enumerate() {
        assert_eq!(item.len(), cols, "activation length mismatch");
        for (j, &a) in item.iter().enumerate() {
            if !a.is_zero() {
                per_col[j].push((i as u32, a.raw() as i32));
            }
        }
    }
    per_col
}

/// The fused batch kernel for one slice: decodes the compressed entry
/// stream **once** and applies each entry to every live item, instead of
/// re-walking the stream per item. Returns `[item][local_row]` outputs.
///
/// Per-accumulator add order is identical to [`run_slice`]: the outer
/// loop visits columns in ascending (broadcast) order and entries in
/// storage order, and each `(item, row)` accumulator only ever sees its
/// own item's products — so fusion cannot change saturation behaviour.
fn run_slice_batch(
    slice: &PeSlice,
    codebook: &[i32; CODEBOOK_SIZE],
    schedule: &[Vec<(u32, i32)>],
    batch: usize,
    relu: bool,
) -> Vec<Vec<Q8p8>> {
    let rows = slice.local_rows();
    // [row][item] so one entry's updates touch one contiguous stripe.
    let mut accum = vec![0i32; rows * batch];
    for (j, live) in schedule.iter().enumerate() {
        if live.is_empty() {
            continue;
        }
        let mut cursor = 0usize;
        for e in slice.col_entries(j) {
            let row = cursor + e.zrun as usize;
            cursor = row + 1;
            if e.code == 0 {
                continue; // padding adds a raw zero: bit-exact to skip
            }
            let w = codebook[e.code as usize];
            let stripe = &mut accum[row * batch..(row + 1) * batch];
            for &(i, a) in live {
                let acc = &mut stripe[i as usize];
                *acc = acc.saturating_add(w * a);
            }
        }
    }
    (0..batch)
        .map(|i| {
            (0..rows)
                .map(|r| writeback(accum[r * batch + i], relu))
                .collect()
        })
        .collect()
}

/// Interleaves per-slice local outputs back into global row order.
fn interleave(layer: &EncodedLayer, locals: Vec<Vec<Q8p8>>) -> Vec<Q8p8> {
    let n = layer.num_pes();
    let mut outputs = vec![Q8p8::ZERO; layer.rows()];
    for (pe, local) in locals.into_iter().enumerate() {
        for (row, v) in local.into_iter().enumerate() {
            outputs[row * n + pe] = v;
        }
    }
    outputs
}

/// The per-item broadcast schedule on raw activation values.
fn raw_schedule(acts: &[Q8p8]) -> Vec<(u32, i32)> {
    broadcast_schedule(acts)
        .into_iter()
        .map(|(j, a)| (j, a.raw() as i32))
        .collect()
}

/// One full layer, serially (used below one slice per worker).
fn execute_serial(layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> Vec<Q8p8> {
    assert_eq!(acts.len(), layer.cols(), "activation length mismatch");
    let schedule = raw_schedule(acts);
    let codebook = raw_codebook(&layer.codebook().to_fix16::<8>());
    let locals = layer
        .slices()
        .iter()
        .map(|s| run_slice(s, &codebook, &schedule, relu))
        .collect();
    interleave(layer, locals)
}

/// One full layer with its PE slices spread over `threads` workers.
fn execute_sliced(layer: &EncodedLayer, acts: &[Q8p8], relu: bool, threads: usize) -> Vec<Q8p8> {
    assert_eq!(acts.len(), layer.cols(), "activation length mismatch");
    let n = layer.num_pes();
    if threads <= 1 || n <= 1 {
        return execute_serial(layer, acts, relu);
    }
    let schedule = raw_schedule(acts);
    let codebook = raw_codebook(&layer.codebook().to_fix16::<8>());
    let mut locals: Vec<Vec<Q8p8>> = vec![Vec::new(); n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slices, out) in layer.slices().chunks(chunk).zip(locals.chunks_mut(chunk)) {
            let (schedule, codebook) = (&schedule, &codebook);
            scope.spawn(move || {
                for (slice, slot) in slices.iter().zip(out.iter_mut()) {
                    *slot = run_slice(slice, codebook, schedule, relu);
                }
            });
        }
    });
    interleave(layer, locals)
}

/// One fused whole-batch layer pass, slices spread over `threads`
/// workers. Returns `[item][global_row]` outputs.
fn execute_batch_fused(
    layer: &EncodedLayer,
    batch: &[Vec<Q8p8>],
    relu: bool,
    threads: usize,
) -> Vec<Vec<Q8p8>> {
    let n = layer.num_pes();
    let b = batch.len();
    let schedule = batch_schedule(batch, layer.cols());
    let codebook = raw_codebook(&layer.codebook().to_fix16::<8>());
    // [pe][item][local_row] partial outputs.
    let mut locals: Vec<Vec<Vec<Q8p8>>> = vec![Vec::new(); n];
    if threads <= 1 || n <= 1 {
        // Same fast path as `execute_sliced`: no spawn/join overhead
        // when there is nothing to parallelize over.
        for (slice, slot) in layer.slices().iter().zip(locals.iter_mut()) {
            *slot = run_slice_batch(slice, &codebook, &schedule, b, relu);
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (slices, out) in layer.slices().chunks(chunk).zip(locals.chunks_mut(chunk)) {
                let (schedule, codebook) = (&schedule, &codebook);
                scope.spawn(move || {
                    for (slice, slot) in slices.iter().zip(out.iter_mut()) {
                        *slot = run_slice_batch(slice, codebook, schedule, b, relu);
                    }
                });
            }
        });
    }
    // Interleave [pe][item][local] → [item][global_row].
    let mut outputs: Vec<Vec<Q8p8>> = (0..b).map(|_| vec![Q8p8::ZERO; layer.rows()]).collect();
    for (pe, per_item) in locals.into_iter().enumerate() {
        for (i, local) in per_item.into_iter().enumerate() {
            for (row, v) in local.into_iter().enumerate() {
                outputs[i][row * n + pe] = v;
            }
        }
    }
    outputs
}

/// Wraps fused per-item outputs into runs that all report the batch's
/// wall time: a fused batch completes as a unit, so that *is* each
/// item's serving latency.
fn fused_runs(outputs: Vec<Vec<Q8p8>>, wall_s: f64) -> Vec<BackendRun> {
    outputs
        .into_iter()
        .map(|outputs| BackendRun {
            outputs,
            latency_s: wall_s,
            stats: None,
        })
        .collect()
}

impl Backend for NativeCpu {
    fn name(&self) -> &'static str {
        "native-cpu"
    }

    fn run_layer(&self, layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> BackendRun {
        let start = Instant::now();
        let outputs = execute_sliced(layer, acts, relu, self.threads);
        BackendRun {
            outputs,
            latency_s: start.elapsed().as_secs_f64(),
            stats: None,
        }
    }

    fn run_layer_batch(
        &self,
        layer: &EncodedLayer,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<BackendRun> {
        if batch.len() == 1 {
            // A lone item keeps slice-level parallelism and true latency.
            return vec![self.run_layer(layer, &batch[0], relu)];
        }
        let start = Instant::now();
        let outputs = execute_batch_fused(layer, batch, relu, self.threads);
        fused_runs(outputs, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;
    use eie_sim::functional;

    fn quantize(acts: &[f32]) -> Vec<Q8p8> {
        acts.iter().map(|&a| Q8p8::from_f32(a)).collect()
    }

    #[test]
    fn single_item_matches_golden_model_across_thread_counts() {
        let layer = Benchmark::Alex6.generate_scaled(4, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(8));
        let acts = quantize(&layer.sample_activations(2));
        let expected = functional::execute(&enc, &acts, false);
        for threads in [1, 2, 3, 8, 16] {
            let run = NativeCpu::with_threads(threads).run_layer(&enc, &acts, false);
            assert_eq!(run.outputs, expected, "diverged at {threads} threads");
        }
    }

    #[test]
    fn fused_batch_matches_golden_model_item_by_item() {
        let layer = Benchmark::Vgg8.generate_scaled(1, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let batch: Vec<Vec<Q8p8>> = (0..7)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        for threads in [1, 4] {
            let runs = NativeCpu::with_threads(threads).run_layer_batch(&enc, &batch, true);
            assert_eq!(runs.len(), 7);
            for (acts, run) in batch.iter().zip(&runs) {
                assert_eq!(run.outputs, functional::execute(&enc, acts, true));
                assert!(run.latency_s >= 0.0);
                assert!(run.stats.is_none());
            }
            // Fused items complete together: identical reported latency.
            assert!(runs.iter().all(|r| r.latency_s == runs[0].latency_s));
        }
    }

    #[test]
    fn fused_batch_handles_all_zero_items_and_columns() {
        let layer = Benchmark::Alex8.generate_scaled(5, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let mut batch: Vec<Vec<Q8p8>> = (0..3)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        batch[1] = vec![Q8p8::ZERO; enc.cols()]; // dead item
        let runs = NativeCpu::with_threads(2).run_layer_batch(&enc, &batch, false);
        assert!(runs[1].outputs.iter().all(|v| v.is_zero()));
        for (acts, run) in batch.iter().zip(&runs) {
            assert_eq!(run.outputs, functional::execute(&enc, acts, false));
        }
    }

    #[test]
    fn relu_applies_on_writeback() {
        let layer = Benchmark::NtWe.generate_scaled(3, 32);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let acts = quantize(&layer.sample_activations(5));
        let raw = NativeCpu::with_threads(2).run_layer(&enc, &acts, false);
        let relu = NativeCpu::with_threads(2).run_layer(&enc, &acts, true);
        assert!(raw.outputs.iter().any(|v| v.to_f32() < 0.0));
        assert!(relu.outputs.iter().all(|v| v.to_f32() >= 0.0));
    }

    #[test]
    fn thread_count_constructors() {
        assert!(NativeCpu::new().threads() >= 1);
        assert_eq!(NativeCpu::with_threads(5).threads(), 5);
        assert_eq!(NativeCpu::default().threads(), NativeCpu::new().threads());
    }

    #[test]
    #[should_panic(expected = "threads must be non-zero")]
    fn rejects_zero_threads() {
        let _ = NativeCpu::with_threads(0);
    }
}
