//! The native-CPU backend: host-speed serving on the EIE format.
//!
//! The Retrospective (Han et al., 2023) argues that what aged well about
//! EIE is the *dataflow* — skip zero activations, walk the interleaved
//! CSC slices, accumulate per output row — not the 45 nm implementation.
//! This backend is that argument as code, with the decode and
//! orchestration costs the paper's hardware never paid engineered out:
//!
//! * **Pre-decoded plans** — the first run of a layer lowers it into a
//!   [`LayerPlan`] (zero runs expanded, codebook pre-multiplied into raw
//!   `i32` weights, padding dropped), cached per layer instance; every
//!   later run is a branch-light linear scan with no nibble decoding,
//!   no codebook indirection, and no padding test in the inner loop.
//! * **A persistent worker pool** — spawned once (lazily) per backend
//!   and parked between runs, instead of `std::thread::scope` spawns
//!   per layer per request.
//! * **Reusable scratch** — broadcast/batch schedules, accumulators and
//!   per-worker output blocks live in session- and worker-owned buffers
//!   that grow to a high-water mark and are then reused, so the warm
//!   hot path performs no internal heap allocation (the returned output
//!   vectors, which the caller owns, are the only per-call
//!   allocations).
//!
//! Batches run through a **fused kernel**: each plan slice is scanned
//! once for the whole batch (the CSC analogue of the GEMV→GEMM fusion
//! that makes CPU batching pay, Table IV), so batch throughput beats
//! looping the per-item kernel even single-threaded — at the cost of
//! per-item latency, which is exactly the latency-versus-throughput
//! trade the paper frames EIE against.
//!
//! The fused kernel is **batch-lane vectorized**: activations are
//! transposed once per batch into zero-padded [`LANE_WIDTH`]-item lane
//! blocks, and each pre-decoded weight is applied to a whole block as
//! one fixed-width `[i32; LANE_WIDTH]` saturating MAC — a shape the
//! autovectorizer can prove, with an AVX2 `core::arch` path behind the
//! `simd` cargo feature (runtime-detected; see [`lane_isa`]). Because
//! every batch item's saturating-`Accum32` chain is independent and a
//! padded lane adds a zero product (a no-op under saturating addition),
//! vectorizing across the batch cannot change any item's add sequence.
//! The scan is tiled by the plan's per-layer [`LaneTile`] (columns ×
//! lane-block) so the tile's SoA entry runs stay cache-resident across
//! lane blocks.
//!
//! Two measured A/B baselines are retained: the pre-plan streaming
//! kernel behind [`NativeCpu::without_plans`] (and
//! `BackendKind::NativeStreaming`) and the scalar fused plan kernel
//! behind [`NativeCpu::without_lanes`] — `kernel_sweep` and the
//! property tests hold all three bit-exact against each other.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use eie_compress::{
    EncodedLayer, LaneTile, LayerPlan, PeSlice, PlanSlice, Topology, CODEBOOK_SIZE, LANE_WIDTH,
};
use eie_fixed::{Accum32, Q8p8};
use eie_sim::broadcast_schedule;

use super::pool::{Latch, WorkerPool};
use super::{check_activation_batch, check_activations, Backend, BackendRun, PlannedLayer};

/// The host's core count, resolved once per process.
///
/// `ModelServer` and `InferenceJob` construct a backend per worker, so
/// this sits on the setup path — one `available_parallelism` syscall
/// for the process lifetime instead of one per construction.
pub(crate) fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// An optimized, multi-threaded interleaved-CSC SpMV kernel over the
/// compressed [`EncodedLayer`] format, executing pre-decoded
/// [`LayerPlan`]s on a persistent worker pool.
///
/// Bit-exactness with the hardware comes from preserving its arithmetic
/// structure exactly: each accumulator belongs to one PE slice, and for
/// any one item, columns are visited in broadcast order with entries in
/// storage order — so every `Accum32` sees the *same sequence of
/// saturating adds* as the cycle model, regardless of how slices are
/// spread across threads, whether items share a fused pass, or whether
/// the scan runs over the plan or the compressed stream (plans drop
/// only padding entries, which add a raw zero — a proven no-op under
/// saturating addition).
///
/// Single items split their PE slices across the pool; batches run the
/// fused whole-batch kernel, also split by slice. A fused batch
/// completes as a unit, so every item of a batched [`BackendRun`]
/// reports the batch's wall time as its latency — batching buys
/// throughput, not latency, as in the paper.
///
/// Clones share the same engine (plan cache, worker pool, scratch).
/// Concurrent calls on one engine serialize on its execution session;
/// for parallel serving give each worker its own backend instance, as
/// `eie-serve`'s `ModelServer` does.
#[derive(Clone)]
pub struct NativeCpu {
    inner: Arc<Inner>,
}

/// Soft bound on the engine plan cache's resident bytes. Serving works
/// through `CompiledModel`'s per-model cache; this engine-level cache
/// only accumulates for bare-layer callers, and a caller that streams
/// ever-new layer instances through one engine (each `compress` or
/// artifact load mints a fresh `instance_id`) must not grow it without
/// bound — past the cap the cache is flushed and rebuilds lazily.
const PLAN_CACHE_MAX_BYTES: usize = 256 << 20;

/// The engine-level plan cache: plans by
/// [`EncodedLayer::instance_id`] plus their summed resident size.
#[derive(Default)]
struct PlanCacheMap {
    plans: HashMap<u64, Arc<LayerPlan>>,
    bytes: usize,
}

struct Inner {
    threads: usize,
    /// Row-shard worker groups per layer ([`NativeCpu::with_shards`]):
    /// each shard owns a contiguous run of PE slices and a share of the
    /// threads. `1` (the default) is the classic single-group dispatch.
    shards: usize,
    use_plans: bool,
    /// `false` only for the [`NativeCpu::without_lanes`] scalar fused
    /// A/B baseline: batches run the pre-lane per-item-list kernel.
    use_lanes: bool,
    /// Spawned on the first parallel planned run; `threads - 1` parked
    /// workers (the session holder executes the remaining share).
    pool: OnceLock<WorkerPool>,
    /// The warm path is one read-lock and a hash probe, never a decode
    /// of the entry stream; bounded by [`PLAN_CACHE_MAX_BYTES`].
    plans: RwLock<PlanCacheMap>,
    /// How many plans this engine has built (monotonic; a warm engine
    /// stops incrementing — asserted by tests).
    plan_builds: AtomicU64,
    /// The single execution session: reusable schedule/scratch buffers
    /// plus the completion latch. Locked for the duration of one layer
    /// run, serializing concurrent callers.
    session: Mutex<Session>,
}

impl std::fmt::Debug for NativeCpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeCpu")
            .field("threads", &self.inner.threads)
            .field("shards", &self.inner.shards)
            .field("plans", &self.inner.use_plans)
            .field("lanes", &self.inner.use_lanes)
            .field("cached_plans", &self.cached_plans())
            .finish()
    }
}

impl NativeCpu {
    /// A kernel with one worker per available core (resolved once per
    /// process).
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// A kernel with an explicit worker count (1 = single-threaded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "threads must be non-zero");
        Self {
            inner: Arc::new(Inner {
                threads,
                shards: 1,
                use_plans: true,
                use_lanes: true,
                pool: OnceLock::new(),
                plans: RwLock::new(PlanCacheMap::default()),
                plan_builds: AtomicU64::new(0),
                session: Mutex::new(Session::new()),
            }),
        }
    }

    /// Splits each layer's PE slices across `shards` row-shard worker
    /// groups (the in-process form of a [`Topology`] shard split):
    /// shard `i` owns a contiguous run of PE slices subdivided among
    /// its group's share of the threads, and the partial outputs merge
    /// at the gather point.
    ///
    /// The merge is bit-exact by construction: every accumulator
    /// belongs to exactly one PE slice and a slice is never divided, so
    /// no accumulator's saturating-add stream crosses a shard boundary,
    /// and shard outputs land in disjoint cells of the interleaved
    /// output (`row * num_pes + pe`) — the same argument the per-thread
    /// ranges have always relied on, one grouping level up. The shard
    /// proptests pin it against the unsharded engine and the golden.
    ///
    /// More shards than a layer has PEs clamp to one slice per shard;
    /// more shards than threads run in successive waves on the pool —
    /// the multi-process rehearsal shape, not a speedup on its own.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(self, shards: usize) -> Self {
        assert!(shards > 0, "topology needs at least one shard");
        Self {
            inner: Arc::new(Inner {
                threads: self.inner.threads,
                shards,
                use_plans: self.inner.use_plans,
                use_lanes: self.inner.use_lanes,
                pool: OnceLock::new(),
                plans: RwLock::new(PlanCacheMap::default()),
                plan_builds: AtomicU64::new(0),
                session: Mutex::new(Session::new()),
            }),
        }
    }

    /// Disables execution plans: every run decodes the compressed entry
    /// stream with per-call scoped threads, exactly as the pre-plan
    /// kernel did. This is the measured baseline for `kernel_sweep` and
    /// the plan property tests, not a serving configuration.
    pub fn without_plans(self) -> Self {
        Self {
            inner: Arc::new(Inner {
                threads: self.inner.threads,
                shards: self.inner.shards,
                use_plans: false,
                use_lanes: false,
                pool: OnceLock::new(),
                plans: RwLock::new(PlanCacheMap::default()),
                plan_builds: AtomicU64::new(0),
                session: Mutex::new(Session::new()),
            }),
        }
    }

    /// Disables batch-lane vectorization: fused batches run the scalar
    /// plan kernel (per-column live-item lists, one MAC at a time).
    /// This is the `simd-vs-scalar` A/B baseline for `kernel_sweep`,
    /// the `lanes` criterion bench and the property tests, not a
    /// serving configuration. Single items are unaffected (they never
    /// use lanes).
    pub fn without_lanes(self) -> Self {
        Self {
            inner: Arc::new(Inner {
                threads: self.inner.threads,
                shards: self.inner.shards,
                use_plans: self.inner.use_plans,
                use_lanes: false,
                pool: OnceLock::new(),
                plans: RwLock::new(PlanCacheMap::default()),
                plan_builds: AtomicU64::new(0),
                session: Mutex::new(Session::new()),
            }),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The configured row-shard worker-group count (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.inner.shards
    }

    /// Whether runs execute pre-decoded plans (`false` only for the
    /// [`NativeCpu::without_plans`] streaming baseline).
    pub fn uses_plans(&self) -> bool {
        self.inner.use_plans
    }

    /// Whether fused batches run the batch-lane vectorized kernel
    /// (`false` for the [`NativeCpu::without_lanes`] scalar A/B
    /// baseline and the streaming baseline).
    pub fn uses_lanes(&self) -> bool {
        self.inner.use_lanes
    }

    /// Number of layer plans currently cached by this engine.
    pub fn cached_plans(&self) -> usize {
        self.inner
            .plans
            .read()
            .expect("plan cache poisoned")
            .plans
            .len()
    }

    /// Total plans this engine has built — stops growing once every
    /// served layer is cached (the "no per-call decode" invariant, in
    /// observable form).
    pub fn plan_builds(&self) -> u64 {
        self.inner.plan_builds.load(Ordering::Relaxed)
    }

    /// Drops every cached plan (they rebuild lazily). Useful when an
    /// engine outlives the models it served; plans cost ~8 bytes per
    /// non-zero weight while cached (the engine also flushes itself
    /// past a 256 MiB soft cap).
    pub fn clear_plan_cache(&self) {
        let mut cache = self.inner.plans.write().expect("plan cache poisoned");
        cache.plans.clear();
        cache.bytes = 0;
    }

    /// The cached plan for `layer`, building (and counting) it on the
    /// first encounter of this layer instance. Past the soft byte cap
    /// the cache flushes wholesale — crude, but it bounds residency for
    /// callers that stream ever-new layer instances through one engine,
    /// and a flushed plan simply rebuilds on next use.
    ///
    /// Crate-visible so the pipelined executor can resolve plans for
    /// layers its caller handed over unplanned.
    pub(crate) fn plan_for(&self, layer: &EncodedLayer) -> Arc<LayerPlan> {
        let id = layer.instance_id();
        if let Some(plan) = self
            .inner
            .plans
            .read()
            .expect("plan cache poisoned")
            .plans
            .get(&id)
        {
            return Arc::clone(plan);
        }
        let plan = Arc::new(LayerPlan::build(layer));
        let size = plan.resident_bytes();
        let mut cache = self.inner.plans.write().expect("plan cache poisoned");
        if let Some(existing) = cache.plans.get(&id) {
            // A racing clone built the same plan first: adopt theirs so
            // neither the byte accounting nor `plan_builds` counts the
            // losing build (it is dropped here, never cached).
            return Arc::clone(existing);
        }
        self.inner.plan_builds.fetch_add(1, Ordering::Relaxed);
        if !cache.plans.is_empty() && cache.bytes + size > PLAN_CACHE_MAX_BYTES {
            cache.plans.clear();
            cache.bytes = 0;
        }
        cache.bytes += size;
        cache.plans.insert(id, Arc::clone(&plan));
        plan
    }

    /// Runs one item over a plan, splitting PE slices across the pool.
    fn planned_single(&self, plan: &Arc<LayerPlan>, acts: &[Q8p8], relu: bool) -> Vec<Q8p8> {
        let mut guard = self.inner.session.lock().expect("session poisoned");
        let session = &mut *guard;
        {
            let schedule = exclusive(&mut session.single);
            schedule.cols.clear();
            for (j, &a) in acts.iter().enumerate() {
                if !a.is_zero() {
                    schedule.cols.push((j as u32, a.raw() as i32));
                }
            }
        }
        let input = TaskInput::Single(Arc::clone(&session.single));
        let mut outputs = vec![Q8p8::ZERO; plan.rows()];
        let failed = self.dispatch(session, plan, input, relu, &mut |plan, range, scratch| {
            gather_single(plan, range, &scratch.out, &mut outputs);
        });
        // Re-raise a worker panic *after* the session guard drops: the
        // run is fully drained (the latch released), so the session is
        // reusable and clones of this engine keep working — the panic
        // surfaces at this call site, as the old scoped-thread kernel's
        // did, without bricking the engine.
        drop(guard);
        assert!(!failed, "native kernel pool worker panicked");
        outputs
    }

    /// Runs a fused batch over a plan, splitting PE slices across the
    /// pool. Returns `[item][global_row]` outputs.
    fn planned_batch(
        &self,
        plan: &Arc<LayerPlan>,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<Vec<Q8p8>> {
        let b = batch.len();
        let mut guard = self.inner.session.lock().expect("session poisoned");
        let session = &mut *guard;
        let input = if self.inner.use_lanes {
            {
                let schedule = exclusive(&mut session.lanes);
                schedule.fill(batch, plan.cols());
            }
            TaskInput::Lanes {
                schedule: Arc::clone(&session.lanes),
                batch: b,
            }
        } else {
            {
                let schedule = exclusive(&mut session.batch);
                schedule.live.clear();
                schedule.col_ptr.clear();
                schedule.col_ptr.push(0);
                for j in 0..plan.cols() {
                    for (i, item) in batch.iter().enumerate() {
                        let a = item[j];
                        if !a.is_zero() {
                            schedule.live.push((i as u32, a.raw() as i32));
                        }
                    }
                    schedule.col_ptr.push(schedule.live.len() as u32);
                }
            }
            TaskInput::Batch {
                schedule: Arc::clone(&session.batch),
                batch: b,
            }
        };
        let mut outputs: Vec<Vec<Q8p8>> = (0..b).map(|_| vec![Q8p8::ZERO; plan.rows()]).collect();
        let failed = self.dispatch(session, plan, input, relu, &mut |plan, range, scratch| {
            gather_batch(plan, range, b, &scratch.out, &mut outputs);
        });
        // See `planned_single`: the panic is re-raised lock-free.
        drop(guard);
        assert!(!failed, "native kernel pool worker panicked");
        outputs
    }

    /// The lean chunk entry for the pipelined executor
    /// (`crate::pipeline`): raw `[item][global_row]` outputs with no
    /// per-item [`BackendRun`] wrapping — timing and bookkeeping are the
    /// owning stage's job, and interior pipeline layers would discard
    /// them anyway. Executes the identical kernels (and so stays
    /// bit-exact with every other entry point).
    ///
    /// # Panics
    ///
    /// Panics if the chunk is empty, an item's length differs from the
    /// plan's input dimension, or a pool worker panicked.
    pub(crate) fn run_chunk_planned(
        &self,
        plan: &Arc<LayerPlan>,
        chunk: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<Vec<Q8p8>> {
        assert!(!chunk.is_empty(), "chunk must be non-empty");
        for item in chunk {
            assert_eq!(
                item.len(),
                plan.cols(),
                "activation length mismatches the plan's input dimension"
            );
        }
        if chunk.len() == 1 {
            vec![self.planned_single(plan, &chunk[0], relu)]
        } else {
            self.planned_batch(plan, chunk, relu)
        }
    }

    /// The shard-addressable dispatch table for an `n`-PE layer: the
    /// engine's shard count carves the PE axis into contiguous shard
    /// ranges ([`Topology::contiguous_ranges`] — shard `i` is worker
    /// group `i`), and each shard range is subdivided among its group's
    /// share of the threads. One shard (the default) reduces exactly to
    /// the classic per-thread chunking.
    fn dispatch_ranges(&self, n: usize) -> Vec<(usize, usize)> {
        let threads = self.inner.threads.min(n.max(1));
        let shard_ranges = Topology::contiguous_ranges(n, self.inner.shards);
        let groups = shard_ranges.len();
        let mut ranges = Vec::new();
        for (g, &(first, end)) in shard_ranges.iter().enumerate() {
            // Threads split across groups as evenly as they go; a group
            // never drops below one thread, so shards > threads yields
            // more ranges than threads (run in waves below).
            let group = (threads / groups + usize::from(g < threads % groups)).max(1);
            for (a, b) in Topology::contiguous_ranges(end - first, group) {
                ranges.push((first + a, first + b));
            }
        }
        ranges
    }

    /// The shared fan-out: build the shard-addressable dispatch table,
    /// hand every range but the wave leader's to pool workers, run the
    /// leader's range inline, wait, and let `gather` merge each range's
    /// outputs from its worker's scratch.
    ///
    /// **Merge point.** Ranges hold whole PE slices, so every
    /// accumulator's saturating-add stream runs inside exactly one
    /// range; `gather` writes each range's finished values into
    /// disjoint cells of the interleaved output. The merge therefore
    /// reorders no adds and overlaps no writes — bit-exact for any
    /// shard × thread split, which the shard proptests pin.
    ///
    /// With at most `threads` ranges (shards ≤ threads) everything
    /// completes in one wave, scratch addressed by worker slot; more
    /// shard ranges than threads run in successive waves, each wave's
    /// scratch gathered before the slots are reused.
    ///
    /// Returns `true` if a pool worker panicked — the run is drained
    /// (the latch released, every mailbox idle) and gathering stopped;
    /// the caller re-raises once the session guard is gone.
    fn dispatch(
        &self,
        session: &mut Session,
        plan: &Arc<LayerPlan>,
        input: TaskInput,
        relu: bool,
        gather: &mut GatherFn<'_>,
    ) -> bool {
        let n = plan.num_pes();
        let ranges = self.dispatch_ranges(n);
        if ranges.len() <= 1 {
            run_pe_range(plan, &input, (0, n), relu, &mut session.local);
            gather(plan, (0, n), &session.local);
            return false;
        }
        let pool = self
            .inner
            .pool
            .get_or_init(|| WorkerPool::new(self.inner.threads - 1));
        let slots = pool.len() + 1; // the session holder runs one range inline
        for wave in ranges.chunks(slots) {
            session.latch.reset(wave.len() - 1);
            for (w, &pe_range) in wave.iter().enumerate().skip(1) {
                pool.submit(
                    w - 1,
                    Task {
                        plan: Arc::clone(plan),
                        input: input.clone(),
                        pe_range,
                        relu,
                        latch: Arc::clone(&session.latch),
                    },
                );
            }
            run_pe_range(plan, &input, wave[0], relu, &mut session.local);
            if session.latch.wait() {
                // Gather nothing further: a dead range would leave
                // silently wrong (partial) outputs. The caller
                // re-raises the panic.
                return true;
            }
            gather(plan, wave[0], &session.local);
            for (w, &pe_range) in wave.iter().enumerate().skip(1) {
                pool.with_scratch(w - 1, |scratch| gather(plan, pe_range, scratch));
            }
        }
        drop(input); // release the schedule Arc for next-call reuse
        false
    }
}

impl Default for NativeCpu {
    fn default() -> Self {
        Self::new()
    }
}

/// The harvest callback [`NativeCpu::dispatch`] hands each completed
/// PE-slice range to (it interleaves one scratch's output blocks into
/// the caller's global output buffers).
type GatherFn<'a> = dyn FnMut(&LayerPlan, (usize, usize), &WorkerScratch) + 'a;

/// Regains unique access to a session-owned `Arc` buffer. After a run's
/// latch releases, every worker has dropped its clone, so this is a
/// refcount check in the steady state; the fallback allocation only
/// triggers if a buffer somehow leaked (defensive, not expected).
fn exclusive<T: Default>(arc: &mut Arc<T>) -> &mut T {
    if Arc::get_mut(arc).is_none() {
        *arc = Arc::new(T::default());
    }
    Arc::get_mut(arc).expect("freshly allocated Arc is unique")
}

/// The per-item broadcast schedule on raw values: `(column, act_raw)`
/// for every non-zero activation, ascending.
#[derive(Debug, Default)]
pub(super) struct SingleSchedule {
    pub(super) cols: Vec<(u32, i32)>,
}

/// The fused-batch schedule, flattened for reuse: per column, the
/// `(item, act_raw)` pairs with a non-zero activation, concatenated in
/// column order with a `cols + 1` extent index.
#[derive(Debug, Default)]
pub(super) struct BatchSchedule {
    pub(super) live: Vec<(u32, i32)>,
    pub(super) col_ptr: Vec<u32>,
}

/// The batch-lane schedule: activations transposed once per batch into
/// [`LANE_WIDTH`]-item lane blocks, so the kernel can apply one weight
/// to a whole block as a fixed-width vector MAC.
///
/// Layouts (`blocks = batch.div_ceil(LANE_WIDTH)`):
/// * `acts[(lb * cols + j) * LANE_WIDTH + k]` — item `lb * LANE_WIDTH + k`'s
///   raw activation for column `j`; the last block's missing items are
///   zero (a zero product is a saturating-add no-op, so padded lanes
///   cannot perturb real items and their own lanes are discarded at
///   gather).
/// * `live[lb * cols + j]` — non-zero when *any* item of block `lb` has
///   a non-zero activation in column `j` (the lane analogue of the
///   broadcast schedule's zero-skip: a dead column costs one byte test
///   per block instead of `entries × LANE_WIDTH` MACs).
#[derive(Debug, Default)]
pub(super) struct LaneSchedule {
    acts: Vec<i32>,
    live: Vec<u8>,
    cols: usize,
    blocks: usize,
}

impl LaneSchedule {
    /// Rebuilds the schedule in place from a batch (buffers reused —
    /// steady state allocates nothing once grown to high water).
    fn fill(&mut self, batch: &[Vec<Q8p8>], cols: usize) {
        let blocks = batch.len().div_ceil(LANE_WIDTH);
        self.cols = cols;
        self.blocks = blocks;
        self.acts.clear();
        self.acts.resize(blocks * cols * LANE_WIDTH, 0);
        self.live.clear();
        self.live.resize(blocks * cols, 0);
        for (i, item) in batch.iter().enumerate() {
            let (lb, k) = (i / LANE_WIDTH, i % LANE_WIDTH);
            let base = lb * cols;
            for (j, &a) in item.iter().enumerate() {
                if !a.is_zero() {
                    self.acts[(base + j) * LANE_WIDTH + k] = a.raw() as i32;
                    self.live[base + j] = 1;
                }
            }
        }
    }

    /// Lane block `lb`'s transposed activations (`cols × LANE_WIDTH`).
    #[inline]
    fn acts_block(&self, lb: usize) -> &[i32] {
        &self.acts[lb * self.cols * LANE_WIDTH..][..self.cols * LANE_WIDTH]
    }

    /// Lane block `lb`'s per-column any-live mask (`cols` long).
    #[inline]
    fn live_block(&self, lb: usize) -> &[u8] {
        &self.live[lb * self.cols..][..self.cols]
    }
}

/// One run's shared read-only input, cloned (refcount-only) per worker.
#[derive(Debug, Clone)]
pub(super) enum TaskInput {
    /// One item's broadcast schedule.
    Single(Arc<SingleSchedule>),
    /// A fused batch's scalar schedule plus the batch size (the
    /// `without_lanes` A/B baseline).
    Batch {
        /// Per-column live items.
        schedule: Arc<BatchSchedule>,
        /// Number of items in the batch.
        batch: usize,
    },
    /// A fused batch's lane schedule plus the true batch size.
    Lanes {
        /// Transposed lane-block activations.
        schedule: Arc<LaneSchedule>,
        /// Number of real items (the last lane block may be padded).
        batch: usize,
    },
}

/// One worker's unit of work: a contiguous PE-slice range of one plan.
#[derive(Debug)]
pub(super) struct Task {
    plan: Arc<LayerPlan>,
    input: TaskInput,
    pe_range: (usize, usize),
    relu: bool,
    latch: Arc<Latch>,
}

impl Task {
    /// Executes the task into the worker's scratch.
    pub(super) fn run(&self, scratch: &mut WorkerScratch) {
        run_pe_range(&self.plan, &self.input, self.pe_range, self.relu, scratch);
    }

    /// The run's completion latch.
    pub(super) fn latch(&self) -> &Arc<Latch> {
        &self.latch
    }
}

/// Reusable per-worker buffers: accumulators for one slice at a time
/// and the range's written-back outputs, one block per PE (block layout
/// `[local_row]` for single items, `[local_row * batch + item]` for
/// fused batches). The lane kernel's accumulator blocks are
/// lane-aligned — `local_rows × LANE_WIDTH × lane_blocks`, padded past
/// the true batch size — so the high-water mark covers the vector
/// stripes too. Grows to that mark, then steady-state runs allocate
/// nothing.
#[derive(Debug, Default)]
pub(super) struct WorkerScratch {
    accum: Vec<i32>,
    out: Vec<Q8p8>,
}

/// Scans a PE-slice range of a plan into `scratch` — the unit of work
/// shared by pool workers and the session holder's inline share.
fn run_pe_range(
    plan: &LayerPlan,
    input: &TaskInput,
    (first, end): (usize, usize),
    relu: bool,
    scratch: &mut WorkerScratch,
) {
    let b = match input {
        TaskInput::Single(_) => 1,
        TaskInput::Batch { batch, .. } | TaskInput::Lanes { batch, .. } => *batch,
    };
    let slices = &plan.slices()[first..end];
    let total: usize = slices.iter().map(|s| s.local_rows() * b).sum();
    scratch.out.resize(total, Q8p8::ZERO);
    let mut offset = 0;
    for slice in slices {
        let block = slice.local_rows() * b;
        // The lane kernel accumulates into lane-aligned blocks (batch
        // rounded up to whole LANE_WIDTH lanes); the scalar kernels use
        // exactly `block`. Size the shared scratch for whichever runs.
        let accum_len = match input {
            TaskInput::Lanes { batch, .. } => {
                slice.local_rows() * batch.div_ceil(LANE_WIDTH) * LANE_WIDTH
            }
            _ => block,
        };
        if scratch.accum.len() < accum_len {
            scratch.accum.resize(accum_len, 0);
        }
        let accum = &mut scratch.accum[..accum_len];
        let out = &mut scratch.out[offset..offset + block];
        match input {
            TaskInput::Single(schedule) => {
                plan_slice_single(slice, &schedule.cols, accum, out, relu);
            }
            TaskInput::Batch { schedule, batch } => {
                plan_slice_batch(slice, schedule, *batch, accum, out, relu);
            }
            TaskInput::Lanes { schedule, batch } => {
                plan_slice_lanes(slice, schedule, *batch, plan.lane_tile(), accum, out, relu);
            }
        }
        offset += block;
    }
}

/// The steady-state single-item kernel: a linear scan of pre-decoded
/// `(row, weight)` entries — no nibble decoding, no codebook
/// indirection, no padding test. The add sequence per accumulator is
/// identical to the streaming kernel's: columns in broadcast order,
/// entries in storage order, padding dropped (adds a raw zero —
/// saturating-add of zero never changes an accumulator).
fn plan_slice_single(
    slice: &PlanSlice,
    schedule: &[(u32, i32)],
    accum: &mut [i32],
    out: &mut [Q8p8],
    relu: bool,
) {
    accum.fill(0);
    for &(j, a) in schedule {
        let (rows, weights) = slice.col(j as usize);
        for (&row, &w) in rows.iter().zip(weights) {
            let acc = &mut accum[row as usize];
            *acc = acc.saturating_add(w * a);
        }
    }
    for (slot, &acc) in out.iter_mut().zip(accum.iter()) {
        *slot = writeback(acc, relu);
    }
}

/// The scalar fused batch kernel over a plan slice (the
/// `without_lanes` A/B baseline): each pre-decoded entry is applied to
/// every live item of its column, one MAC at a time, touching one
/// contiguous `[row * batch .. (row + 1) * batch]` accumulator stripe.
/// Outputs land in the same `[local_row * batch + item]` layout.
fn plan_slice_batch(
    slice: &PlanSlice,
    schedule: &BatchSchedule,
    batch: usize,
    accum: &mut [i32],
    out: &mut [Q8p8],
    relu: bool,
) {
    accum.fill(0);
    for j in 0..schedule.col_ptr.len() - 1 {
        let live = &schedule.live[schedule.col_ptr[j] as usize..schedule.col_ptr[j + 1] as usize];
        if live.is_empty() {
            continue;
        }
        let (rows, weights) = slice.col(j);
        for (&row, &w) in rows.iter().zip(weights) {
            let stripe = &mut accum[row as usize * batch..(row as usize + 1) * batch];
            for &(i, a) in live {
                let acc = &mut stripe[i as usize];
                *acc = acc.saturating_add(w * a);
            }
        }
    }
    for (slot, &acc) in out.iter_mut().zip(accum.iter()) {
        *slot = writeback(acc, relu);
    }
}

/// The batch-lane vectorized fused kernel over a plan slice: one
/// pre-decoded weight × one [`LANE_WIDTH`]-item activation block per
/// MAC step, as a fixed-width `[i32; LANE_WIDTH]` saturating
/// multiply-accumulate (autovectorized, or AVX2 under the `simd`
/// feature — see [`mac_span`]).
///
/// The scan is tiled: column tiles (the plan's per-layer [`LaneTile`])
/// outermost, lane blocks inside, so a tile's SoA entry runs are
/// re-read L1-hot for every block instead of streaming the whole plan
/// once per block.
///
/// **Add-order invariant.** For any one item (one lane `k` of one
/// block `lb`), accumulator `(row, lb, k)` receives products from
/// columns in ascending order — tiles ascend and blocks don't reorder
/// columns within a tile — with entries in storage order, exactly the
/// scalar kernels' sequence. Other lanes of the vector belong to other
/// items (independent accumulator chains), and a lane whose item has a
/// zero activation (or doesn't exist, in a padded tail block) adds a
/// zero product — a saturating-add no-op. So vectorizing across the
/// batch cannot change any item's saturation behaviour.
///
/// Accumulators are lane-aligned — `[(lb * local_rows + row) * LANE_WIDTH + k]`
/// — and written back to the scalar layout `[row * batch + item]`,
/// dropping padded lanes, so gather is shared with the scalar batch
/// kernel.
#[allow(clippy::too_many_arguments)]
fn plan_slice_lanes(
    slice: &PlanSlice,
    schedule: &LaneSchedule,
    batch: usize,
    tile: LaneTile,
    accum: &mut [i32],
    out: &mut [Q8p8],
    relu: bool,
) {
    let rows = slice.local_rows();
    let (cols, blocks) = (schedule.cols, schedule.blocks);
    let tile_cols = tile.cols().max(1);
    accum.fill(0);
    for tile_start in (0..cols).step_by(tile_cols) {
        let tile_end = (tile_start + tile_cols).min(cols);
        for lb in 0..blocks {
            let acts = schedule.acts_block(lb);
            let live = schedule.live_block(lb);
            let acc = &mut accum[lb * rows * LANE_WIDTH..][..rows * LANE_WIDTH];
            for j in tile_start..tile_end {
                if live[j] == 0 {
                    continue;
                }
                let a: &[i32; LANE_WIDTH] = acts[j * LANE_WIDTH..][..LANE_WIDTH]
                    .try_into()
                    .expect("lane chunk is LANE_WIDTH long");
                let (col_rows, col_weights) = slice.col(j);
                mac_span(col_rows, col_weights, a, acc);
            }
        }
    }
    // Write back to the shared `[row * batch + item]` layout, dropping
    // the padded lanes of the last block.
    for r in 0..rows {
        let row_out = &mut out[r * batch..][..batch];
        for (i, slot) in row_out.iter_mut().enumerate() {
            let (lb, k) = (i / LANE_WIDTH, i % LANE_WIDTH);
            *slot = writeback(accum[(lb * rows + r) * LANE_WIDTH + k], relu);
        }
    }
}

/// One column's MAC span: every pre-decoded `(row, weight)` entry times
/// one [`LANE_WIDTH`]-item activation block, saturating into the
/// lane-aligned accumulator stripes. Dispatches to the AVX2 intrinsics
/// path when the `simd` feature is on and the CPU supports it
/// (detection is cached by `std`), otherwise to the fixed-width scalar
/// form the autovectorizer can prove.
#[inline]
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(unsafe_code))]
fn mac_span(rows: &[u32], weights: &[i32], a: &[i32; LANE_WIDTH], accum: &mut [i32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 target feature was just detected at runtime.
        unsafe { simd::mac_span_avx2(rows, weights, a, accum) };
        return;
    }
    mac_span_scalar(rows, weights, a, accum);
}

/// The portable lane MAC: a fixed-width `[i32; LANE_WIDTH]` loop with
/// no early exits, which the autovectorizer lowers to full-width vector
/// adds (the saturation select becomes a vector blend).
fn mac_span_scalar(rows: &[u32], weights: &[i32], a: &[i32; LANE_WIDTH], accum: &mut [i32]) {
    for (&row, &w) in rows.iter().zip(weights) {
        let acc: &mut [i32; LANE_WIDTH] = (&mut accum[row as usize * LANE_WIDTH..][..LANE_WIDTH])
            .try_into()
            .expect("lane stripe is LANE_WIDTH long");
        for (slot, &ak) in acc.iter_mut().zip(a) {
            // Raw weights and activations are i16-range (Q8.8), so the
            // product fits i32 exactly; only the accumulate saturates.
            *slot = slot.saturating_add(w * ak);
        }
    }
}

/// Which instruction path the lane kernel's MAC takes on this host:
/// `"avx2"` when the `simd` feature is compiled in and the CPU has it,
/// `"scalar"` (autovectorized fixed-width loops) otherwise. Recorded by
/// `kernel_sweep` so committed numbers say what they measured.
pub fn lane_isa() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        return "avx2";
    }
    "scalar"
}

/// The AVX2 `core::arch` lane MAC, compiled only under the `simd`
/// feature. i32 has no native saturating add; it is synthesized from
/// two's-complement overflow detection (overflow iff the addends share
/// a sign and the sum doesn't) and a sign-directed blend to
/// `i32::MAX`/`i32::MIN` — bit-identical to `i32::saturating_add` per
/// lane, verified against the scalar kernel by the lane property tests.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    use super::LANE_WIDTH;

    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mac_span_avx2(
        rows: &[u32],
        weights: &[i32],
        a: &[i32; LANE_WIDTH],
        accum: &mut [i32],
    ) {
        // SAFETY: `a` is exactly one 256-bit lane block (LANE_WIDTH = 8
        // i32s); unaligned load is explicit.
        let va = unsafe { _mm256_loadu_si256(a.as_ptr().cast()) };
        let max = _mm256_set1_epi32(i32::MAX);
        for (&row, &w) in rows.iter().zip(weights) {
            let stripe = row as usize * LANE_WIDTH;
            debug_assert!(stripe + LANE_WIDTH <= accum.len());
            let ptr = unsafe { accum.as_mut_ptr().add(stripe) };
            // SAFETY: plan rows index `local_rows` stripes of exactly
            // LANE_WIDTH accumulators each (sized by `run_pe_range`).
            let acc = unsafe { _mm256_loadu_si256(ptr.cast()) };
            // Q8.8 × Q8.8 products fit i32; mullo is exact.
            let prod = _mm256_mullo_epi32(_mm256_set1_epi32(w), va);
            let sum = _mm256_add_epi32(acc, prod);
            // Overflow per lane iff acc and prod agree in sign but the
            // sum doesn't: sign bit of (~(acc^prod)) & (acc^sum).
            let ovf = _mm256_andnot_si256(_mm256_xor_si256(acc, prod), _mm256_xor_si256(acc, sum));
            // The saturated value has acc's sign flipped into the rail:
            // acc >= 0 → MAX, acc < 0 → MIN.
            let rail = _mm256_xor_si256(_mm256_srai_epi32(acc, 31), max);
            let mask = _mm256_srai_epi32(ovf, 31);
            let res = _mm256_blendv_epi8(sum, rail, mask);
            // SAFETY: same stripe bounds as the load above.
            unsafe { _mm256_storeu_si256(ptr.cast(), res) };
        }
    }
}

/// Interleaves a worker's single-item output blocks into global rows.
fn gather_single(
    plan: &LayerPlan,
    (first, end): (usize, usize),
    worker_out: &[Q8p8],
    outputs: &mut [Q8p8],
) {
    let n = plan.num_pes();
    let mut offset = 0;
    for pe in first..end {
        let rows = plan.slice(pe).local_rows();
        for r in 0..rows {
            outputs[r * n + pe] = worker_out[offset + r];
        }
        offset += rows;
    }
}

/// Interleaves a worker's fused-batch output blocks into per-item
/// global rows.
fn gather_batch(
    plan: &LayerPlan,
    (first, end): (usize, usize),
    batch: usize,
    worker_out: &[Q8p8],
    outputs: &mut [Vec<Q8p8>],
) {
    let n = plan.num_pes();
    let mut offset = 0;
    for pe in first..end {
        let rows = plan.slice(pe).local_rows();
        for r in 0..rows {
            let stripe = &worker_out[offset + r * batch..offset + (r + 1) * batch];
            for (i, &v) in stripe.iter().enumerate() {
                outputs[i][r * n + pe] = v;
            }
        }
        offset += rows * batch;
    }
}

// --------------------------------------------------------------------
// The pre-plan streaming kernel, retained verbatim as the measured A/B
// baseline (`NativeCpu::without_plans`): per-call entry-stream decode,
// per-call allocation, scoped threads per layer.
// --------------------------------------------------------------------

/// The decoded codebook as raw `i32` multiplicands — hoisting the
/// fixed-point wrappers out of the inner loops.
fn raw_codebook(codebook: &[Q8p8; CODEBOOK_SIZE]) -> [i32; CODEBOOK_SIZE] {
    let mut raw = [0i32; CODEBOOK_SIZE];
    for (slot, w) in raw.iter_mut().zip(codebook) {
        *slot = w.raw() as i32;
    }
    raw
}

/// Accumulates every scheduled column of one PE slice and writes back
/// the slice's local outputs — the per-item unit of work.
///
/// The loop body is exactly the hardware MAC on raw values —
/// `acc = acc.saturating_add(w_raw * a_raw)`, the definition of
/// [`Accum32::mac`] — with one bit-exact shortcut: padding entries
/// (`code == 0`) decode to a raw-zero weight, and saturating-adding zero
/// never changes an accumulator, so they only advance the row cursor.
fn run_slice(
    slice: &PeSlice,
    codebook: &[i32; CODEBOOK_SIZE],
    schedule: &[(u32, i32)],
    relu: bool,
) -> Vec<Q8p8> {
    let mut accum = vec![0i32; slice.local_rows()];
    for &(j, a) in schedule {
        let mut cursor = 0usize;
        for e in slice.col_entries(j as usize) {
            let row = cursor + e.zrun as usize;
            cursor = row + 1;
            if e.code == 0 {
                continue;
            }
            let acc = &mut accum[row];
            *acc = acc.saturating_add(codebook[e.code as usize] * a);
        }
    }
    accum.into_iter().map(|acc| writeback(acc, relu)).collect()
}

/// The shift-saturate(-ReLU) writeback stage (identical rounding and
/// clamping to the hardware's, via [`Accum32::to_fix16`]).
fn writeback(acc_raw: i32, relu: bool) -> Q8p8 {
    let v = Accum32::from_raw(acc_raw).to_fix16::<8>();
    if relu {
        v.relu()
    } else {
        v
    }
}

/// The batch analogue of the broadcast schedule: for every column, the
/// `(item, activation)` pairs with a non-zero activation — computed once
/// and shared read-only by every slice worker.
fn batch_schedule(batch: &[Vec<Q8p8>], cols: usize) -> Vec<Vec<(u32, i32)>> {
    let mut per_col: Vec<Vec<(u32, i32)>> = vec![Vec::new(); cols];
    for (i, item) in batch.iter().enumerate() {
        for (j, &a) in item.iter().enumerate() {
            if !a.is_zero() {
                per_col[j].push((i as u32, a.raw() as i32));
            }
        }
    }
    per_col
}

/// The fused batch kernel for one slice: decodes the compressed entry
/// stream **once** and applies each entry to every live item, instead of
/// re-walking the stream per item. Returns `[item][local_row]` outputs.
///
/// Per-accumulator add order is identical to [`run_slice`]: the outer
/// loop visits columns in ascending (broadcast) order and entries in
/// storage order, and each `(item, row)` accumulator only ever sees its
/// own item's products — so fusion cannot change saturation behaviour.
fn run_slice_batch(
    slice: &PeSlice,
    codebook: &[i32; CODEBOOK_SIZE],
    schedule: &[Vec<(u32, i32)>],
    batch: usize,
    relu: bool,
) -> Vec<Vec<Q8p8>> {
    let rows = slice.local_rows();
    // [row][item] so one entry's updates touch one contiguous stripe.
    let mut accum = vec![0i32; rows * batch];
    for (j, live) in schedule.iter().enumerate() {
        if live.is_empty() {
            continue;
        }
        let mut cursor = 0usize;
        for e in slice.col_entries(j) {
            let row = cursor + e.zrun as usize;
            cursor = row + 1;
            if e.code == 0 {
                continue; // padding adds a raw zero: bit-exact to skip
            }
            let w = codebook[e.code as usize];
            let stripe = &mut accum[row * batch..(row + 1) * batch];
            for &(i, a) in live {
                let acc = &mut stripe[i as usize];
                *acc = acc.saturating_add(w * a);
            }
        }
    }
    (0..batch)
        .map(|i| {
            (0..rows)
                .map(|r| writeback(accum[r * batch + i], relu))
                .collect()
        })
        .collect()
}

/// Interleaves per-slice local outputs back into global row order.
fn interleave(layer: &EncodedLayer, locals: Vec<Vec<Q8p8>>) -> Vec<Q8p8> {
    let n = layer.num_pes();
    let mut outputs = vec![Q8p8::ZERO; layer.rows()];
    for (pe, local) in locals.into_iter().enumerate() {
        for (row, v) in local.into_iter().enumerate() {
            outputs[row * n + pe] = v;
        }
    }
    outputs
}

/// The per-item broadcast schedule on raw activation values.
fn raw_schedule(acts: &[Q8p8]) -> Vec<(u32, i32)> {
    broadcast_schedule(acts)
        .into_iter()
        .map(|(j, a)| (j, a.raw() as i32))
        .collect()
}

/// One full layer, serially (used below one slice per worker).
fn execute_serial(layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> Vec<Q8p8> {
    let schedule = raw_schedule(acts);
    let codebook = raw_codebook(&layer.codebook().to_fix16::<8>());
    let locals = layer
        .slices()
        .iter()
        .map(|s| run_slice(s, &codebook, &schedule, relu))
        .collect();
    interleave(layer, locals)
}

/// One full layer with its PE slices spread over `threads` scoped
/// workers (the pre-plan baseline path).
fn execute_sliced(layer: &EncodedLayer, acts: &[Q8p8], relu: bool, threads: usize) -> Vec<Q8p8> {
    let n = layer.num_pes();
    if threads <= 1 || n <= 1 {
        return execute_serial(layer, acts, relu);
    }
    let schedule = raw_schedule(acts);
    let codebook = raw_codebook(&layer.codebook().to_fix16::<8>());
    let mut locals: Vec<Vec<Q8p8>> = vec![Vec::new(); n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (slices, out) in layer.slices().chunks(chunk).zip(locals.chunks_mut(chunk)) {
            let (schedule, codebook) = (&schedule, &codebook);
            scope.spawn(move || {
                for (slice, slot) in slices.iter().zip(out.iter_mut()) {
                    *slot = run_slice(slice, codebook, schedule, relu);
                }
            });
        }
    });
    interleave(layer, locals)
}

/// One fused whole-batch layer pass, slices spread over `threads`
/// scoped workers (the pre-plan baseline path). Returns
/// `[item][global_row]` outputs.
fn execute_batch_fused(
    layer: &EncodedLayer,
    batch: &[Vec<Q8p8>],
    relu: bool,
    threads: usize,
) -> Vec<Vec<Q8p8>> {
    let n = layer.num_pes();
    let b = batch.len();
    let schedule = batch_schedule(batch, layer.cols());
    let codebook = raw_codebook(&layer.codebook().to_fix16::<8>());
    // [pe][item][local_row] partial outputs.
    let mut locals: Vec<Vec<Vec<Q8p8>>> = vec![Vec::new(); n];
    if threads <= 1 || n <= 1 {
        // Same fast path as `execute_sliced`: no spawn/join overhead
        // when there is nothing to parallelize over.
        for (slice, slot) in layer.slices().iter().zip(locals.iter_mut()) {
            *slot = run_slice_batch(slice, &codebook, &schedule, b, relu);
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (slices, out) in layer.slices().chunks(chunk).zip(locals.chunks_mut(chunk)) {
                let (schedule, codebook) = (&schedule, &codebook);
                scope.spawn(move || {
                    for (slice, slot) in slices.iter().zip(out.iter_mut()) {
                        *slot = run_slice_batch(slice, codebook, schedule, b, relu);
                    }
                });
            }
        });
    }
    // Interleave [pe][item][local] → [item][global_row].
    let mut outputs: Vec<Vec<Q8p8>> = (0..b).map(|_| vec![Q8p8::ZERO; layer.rows()]).collect();
    for (pe, per_item) in locals.into_iter().enumerate() {
        for (i, local) in per_item.into_iter().enumerate() {
            for (row, v) in local.into_iter().enumerate() {
                outputs[i][row * n + pe] = v;
            }
        }
    }
    outputs
}

/// The session-holder side of one run: reusable schedule buffers, the
/// completion latch, and the holder's own scratch (it executes the
/// first PE-slice range inline while the pool runs the rest).
struct Session {
    single: Arc<SingleSchedule>,
    batch: Arc<BatchSchedule>,
    lanes: Arc<LaneSchedule>,
    latch: Arc<Latch>,
    local: WorkerScratch,
}

impl Session {
    fn new() -> Self {
        Self {
            single: Arc::new(SingleSchedule::default()),
            batch: Arc::new(BatchSchedule::default()),
            lanes: Arc::new(LaneSchedule::default()),
            latch: Arc::new(Latch::new()),
            local: WorkerScratch::default(),
        }
    }
}

/// Wraps fused per-item outputs into runs that all report the batch's
/// wall time as their latency: a fused batch completes as a unit, so
/// that *is* each item's serving latency. The amortized cost is the
/// wall divided over the batch — the distribution callers should rank
/// at batch > 1 (see [`BackendRun::amortized_s`]).
fn fused_runs(outputs: Vec<Vec<Q8p8>>, wall_s: f64) -> Vec<BackendRun> {
    let amortized_s = wall_s / outputs.len().max(1) as f64;
    outputs
        .into_iter()
        .map(|outputs| BackendRun {
            outputs,
            latency_s: wall_s,
            amortized_s,
            stats: None,
        })
        .collect()
}

impl Backend for NativeCpu {
    fn name(&self) -> &'static str {
        "native-cpu"
    }

    fn run_layer(&self, layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> BackendRun {
        check_activations(layer, acts);
        if !self.inner.use_plans {
            let start = Instant::now();
            let outputs = execute_sliced(layer, acts, relu, self.inner.threads);
            return BackendRun::solo(outputs, start.elapsed().as_secs_f64(), None);
        }
        let plan = self.plan_for(layer);
        let start = Instant::now();
        let outputs = self.planned_single(&plan, acts, relu);
        BackendRun::solo(outputs, start.elapsed().as_secs_f64(), None)
    }

    fn run_layer_batch(
        &self,
        layer: &EncodedLayer,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<BackendRun> {
        check_activation_batch(layer, batch);
        if batch.len() == 1 {
            // A lone item keeps slice-level parallelism and true latency.
            return vec![self.run_layer(layer, &batch[0], relu)];
        }
        if batch.is_empty() {
            return Vec::new();
        }
        if !self.inner.use_plans {
            let start = Instant::now();
            let outputs = execute_batch_fused(layer, batch, relu, self.inner.threads);
            return fused_runs(outputs, start.elapsed().as_secs_f64());
        }
        let plan = self.plan_for(layer);
        let start = Instant::now();
        let outputs = self.planned_batch(&plan, batch, relu);
        fused_runs(outputs, start.elapsed().as_secs_f64())
    }

    fn wants_plans(&self) -> bool {
        self.inner.use_plans
    }

    fn run_layer_planned(
        &self,
        planned: PlannedLayer<'_>,
        acts: &[Q8p8],
        relu: bool,
    ) -> BackendRun {
        match (self.inner.use_plans, planned.plan) {
            (true, Some(plan)) => {
                check_activations(planned.layer, acts);
                let start = Instant::now();
                let outputs = self.planned_single(plan, acts, relu);
                BackendRun::solo(outputs, start.elapsed().as_secs_f64(), None)
            }
            _ => self.run_layer(planned.layer, acts, relu),
        }
    }

    fn run_layer_batch_planned(
        &self,
        planned: PlannedLayer<'_>,
        batch: &[Vec<Q8p8>],
        relu: bool,
    ) -> Vec<BackendRun> {
        match (self.inner.use_plans, planned.plan) {
            (true, Some(plan)) => {
                check_activation_batch(planned.layer, batch);
                if batch.len() == 1 {
                    return vec![self.run_layer_planned(planned, &batch[0], relu)];
                }
                if batch.is_empty() {
                    return Vec::new();
                }
                let start = Instant::now();
                let outputs = self.planned_batch(plan, batch, relu);
                fused_runs(outputs, start.elapsed().as_secs_f64())
            }
            _ => self.run_layer_batch(planned.layer, batch, relu),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;
    use eie_sim::functional;

    fn quantize(acts: &[f32]) -> Vec<Q8p8> {
        acts.iter().map(|&a| Q8p8::from_f32(a)).collect()
    }

    #[test]
    fn single_item_matches_golden_model_across_thread_counts() {
        let layer = Benchmark::Alex6.generate_scaled(4, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(8));
        let acts = quantize(&layer.sample_activations(2));
        let expected = functional::execute(&enc, &acts, false);
        for threads in [1, 2, 3, 8, 16] {
            let run = NativeCpu::with_threads(threads).run_layer(&enc, &acts, false);
            assert_eq!(run.outputs, expected, "diverged at {threads} threads");
        }
    }

    #[test]
    fn streaming_baseline_matches_golden_model_across_thread_counts() {
        let layer = Benchmark::Alex6.generate_scaled(4, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(8));
        let acts = quantize(&layer.sample_activations(2));
        let expected = functional::execute(&enc, &acts, false);
        for threads in [1, 3, 8] {
            let backend = NativeCpu::with_threads(threads).without_plans();
            assert!(!backend.uses_plans());
            let run = backend.run_layer(&enc, &acts, false);
            assert_eq!(run.outputs, expected, "diverged at {threads} threads");
            assert_eq!(backend.plan_builds(), 0, "baseline must not build plans");
        }
    }

    #[test]
    fn fused_batch_matches_golden_model_item_by_item() {
        let layer = Benchmark::Vgg8.generate_scaled(1, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let batch: Vec<Vec<Q8p8>> = (0..7)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        for threads in [1, 4] {
            let runs = NativeCpu::with_threads(threads).run_layer_batch(&enc, &batch, true);
            assert_eq!(runs.len(), 7);
            for (acts, run) in batch.iter().zip(&runs) {
                assert_eq!(run.outputs, functional::execute(&enc, acts, true));
                assert!(run.latency_s >= 0.0);
                assert!(run.stats.is_none());
            }
            // Fused items complete together: identical reported latency.
            assert!(runs.iter().all(|r| r.latency_s == runs[0].latency_s));
        }
    }

    #[test]
    fn fused_batch_handles_all_zero_items_and_columns() {
        let layer = Benchmark::Alex8.generate_scaled(5, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let mut batch: Vec<Vec<Q8p8>> = (0..3)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        batch[1] = vec![Q8p8::ZERO; enc.cols()]; // dead item
        let runs = NativeCpu::with_threads(2).run_layer_batch(&enc, &batch, false);
        assert!(runs[1].outputs.iter().all(|v| v.is_zero()));
        for (acts, run) in batch.iter().zip(&runs) {
            assert_eq!(run.outputs, functional::execute(&enc, acts, false));
        }
    }

    #[test]
    fn relu_applies_on_writeback() {
        let layer = Benchmark::NtWe.generate_scaled(3, 32);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let acts = quantize(&layer.sample_activations(5));
        let backend = NativeCpu::with_threads(2);
        let raw = backend.run_layer(&enc, &acts, false);
        let relu = backend.run_layer(&enc, &acts, true);
        assert!(raw.outputs.iter().any(|v| v.to_f32() < 0.0));
        assert!(relu.outputs.iter().all(|v| v.to_f32() >= 0.0));
    }

    #[test]
    fn warm_engine_never_rebuilds_or_redecodes_a_layer() {
        let layer = Benchmark::Alex7.generate_scaled(2, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let acts = quantize(&layer.sample_activations(1));
        let batch: Vec<Vec<Q8p8>> = (0..3)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        let backend = NativeCpu::with_threads(2);
        assert_eq!(backend.plan_builds(), 0);
        let cold = backend.run_layer(&enc, &acts, false);
        assert_eq!(backend.plan_builds(), 1);
        assert_eq!(backend.cached_plans(), 1);
        // Warm single, batch, and a clone of the same layer: the plan
        // cache absorbs them all — no further decode of the stream.
        let warm = backend.run_layer(&enc, &acts, false);
        let _ = backend.run_layer_batch(&enc, &batch, true);
        let clone = enc.clone();
        let _ = backend.run_layer(&clone, &acts, false);
        assert_eq!(backend.plan_builds(), 1, "warm runs must not rebuild");
        assert_eq!(warm.outputs, cold.outputs);
        // A *different* layer instance (equal content) is a new plan.
        let other = compress(&layer.weights, CompressConfig::with_pes(4));
        let _ = backend.run_layer(&other, &acts, false);
        assert_eq!(backend.plan_builds(), 2);
        backend.clear_plan_cache();
        assert_eq!(backend.cached_plans(), 0);
    }

    #[test]
    fn clones_share_the_plan_cache_and_pool() {
        let layer = Benchmark::NtWd.generate_scaled(1, 32);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let acts = quantize(&layer.sample_activations(4));
        let backend = NativeCpu::with_threads(3);
        let twin = backend.clone();
        let a = backend.run_layer(&enc, &acts, false);
        let b = twin.run_layer(&enc, &acts, false);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(backend.plan_builds(), 1, "clone must reuse the cache");
        assert_eq!(twin.plan_builds(), 1);
    }

    #[test]
    fn plan_and_streaming_kernels_are_bit_exact() {
        let layer = Benchmark::Vgg6.generate_scaled(3, 96);
        let enc = compress(&layer.weights, CompressConfig::with_pes(8));
        let batch: Vec<Vec<Q8p8>> = (0..5)
            .map(|i| quantize(&layer.sample_activations(10 + i)))
            .collect();
        for threads in [1, 4] {
            let plan = NativeCpu::with_threads(threads);
            let stream = NativeCpu::with_threads(threads).without_plans();
            for relu in [false, true] {
                let p = plan.run_layer(&enc, &batch[0], relu);
                let s = stream.run_layer(&enc, &batch[0], relu);
                assert_eq!(p.outputs, s.outputs, "single diverged ({threads}t)");
                let pb = plan.run_layer_batch(&enc, &batch, relu);
                let sb = stream.run_layer_batch(&enc, &batch, relu);
                for i in 0..batch.len() {
                    assert_eq!(pb[i].outputs, sb[i].outputs, "batch item {i} ({threads}t)");
                }
            }
        }
    }

    #[test]
    fn lane_and_scalar_fused_kernels_are_bit_exact_at_remainder_batches() {
        // Every congruence class around LANE_WIDTH, including exact
        // multiples, one-off remainders, and a lone spillover lane.
        let layer = Benchmark::Alex6.generate_scaled(3, 96);
        let enc = compress(&layer.weights, CompressConfig::with_pes(8));
        for b in [2usize, 7, 8, 9, 13, 16, 17] {
            let batch: Vec<Vec<Q8p8>> = (0..b)
                .map(|i| quantize(&layer.sample_activations(i as u64)))
                .collect();
            for threads in [1, 4] {
                let lanes = NativeCpu::with_threads(threads);
                let scalar = NativeCpu::with_threads(threads).without_lanes();
                assert!(lanes.uses_lanes());
                assert!(!scalar.uses_lanes() && scalar.uses_plans());
                for relu in [false, true] {
                    let lv = lanes.run_layer_batch(&enc, &batch, relu);
                    let sv = scalar.run_layer_batch(&enc, &batch, relu);
                    for i in 0..b {
                        assert_eq!(
                            lv[i].outputs, sv[i].outputs,
                            "batch {b} item {i} diverged ({threads}t, relu {relu})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_kernel_respects_overridden_tiles() {
        // Any tile size must produce identical bits — tiles only change
        // traversal grouping, never per-item column order.
        let layer = Benchmark::Vgg6.generate_scaled(4, 96);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let batch: Vec<Vec<Q8p8>> = (0..11)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        let expected: Vec<_> = batch
            .iter()
            .map(|acts| functional::execute(&enc, acts, true))
            .collect();
        for tile_cols in [1, 3, 64, enc.cols()] {
            let plan = Arc::new(
                LayerPlan::build(&enc).with_lane_tile(eie_compress::LaneTile::fixed(tile_cols)),
            );
            let backend = NativeCpu::with_threads(2);
            let runs = backend.run_layer_batch_planned(
                super::PlannedLayer {
                    layer: &enc,
                    plan: Some(&plan),
                },
                &batch,
                true,
            );
            for (i, run) in runs.iter().enumerate() {
                assert_eq!(run.outputs, expected[i], "tile {tile_cols} item {i}");
            }
        }
    }

    #[test]
    fn fused_runs_amortize_wall_over_the_batch() {
        let layer = Benchmark::Alex7.generate_scaled(4, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let batch: Vec<Vec<Q8p8>> = (0..6)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        let backend = NativeCpu::with_threads(2);
        let runs = backend.run_layer_batch(&enc, &batch, false);
        for run in &runs {
            // Fused: every item carries the batch wall, amortized 1/6.
            assert_eq!(run.latency_s, runs[0].latency_s);
            assert!((run.amortized_s - run.latency_s / 6.0).abs() < 1e-15);
        }
        // Solo runs keep amortized == latency.
        let solo = backend.run_layer(&enc, &batch[0], false);
        assert_eq!(solo.amortized_s, solo.latency_s);
    }

    #[test]
    fn sharded_dispatch_is_bit_exact_for_any_shard_thread_split() {
        // Shards regroup whole PE slices across worker groups; no
        // accumulator's add stream crosses a boundary, so every split —
        // including more shards than threads (wave scheduling) and more
        // shards than PEs (clamped) — must reproduce the unsharded
        // outputs exactly.
        let layer = Benchmark::Alex6.generate_scaled(4, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(8));
        let acts = quantize(&layer.sample_activations(3));
        let batch: Vec<Vec<Q8p8>> = (0..9)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        let baseline = NativeCpu::with_threads(1);
        let single = baseline.run_layer(&enc, &acts, false).outputs;
        let fused = baseline.run_layer_batch(&enc, &batch, true);
        for threads in [1, 2, 4] {
            for shards in [1, 2, 3, 7, 8, 16] {
                let sharded = NativeCpu::with_threads(threads).with_shards(shards);
                assert_eq!(sharded.shards(), shards);
                let s = sharded.run_layer(&enc, &acts, false);
                assert_eq!(s.outputs, single, "single {shards}s/{threads}t");
                let sb = sharded.run_layer_batch(&enc, &batch, true);
                for i in 0..batch.len() {
                    assert_eq!(
                        sb[i].outputs, fused[i].outputs,
                        "batch item {i} {shards}s/{threads}t"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatch_ranges_tile_the_pe_axis_per_shard() {
        // 8 PEs, 2 shards, 4 threads: each shard's range subdivides
        // among its group's two threads.
        let engine = NativeCpu::with_threads(4).with_shards(2);
        assert_eq!(
            engine.dispatch_ranges(8),
            vec![(0, 2), (2, 4), (4, 6), (6, 8)]
        );
        // One shard reduces to the classic per-thread chunking.
        let flat = NativeCpu::with_threads(4);
        assert_eq!(
            flat.dispatch_ranges(8),
            vec![(0, 2), (2, 4), (4, 6), (6, 8)]
        );
        // More shards than threads: one range per shard, run in waves.
        let waves = NativeCpu::with_threads(1).with_shards(3);
        assert_eq!(waves.dispatch_ranges(8), vec![(0, 3), (3, 6), (6, 8)]);
        // Uneven thread share: the remainder lands on the first groups.
        let uneven = NativeCpu::with_threads(3).with_shards(2);
        assert_eq!(uneven.dispatch_ranges(8), vec![(0, 2), (2, 4), (4, 8)]);
        // Ranges always cover the axis exactly, in order.
        for (threads, shards, pes) in [(5, 3, 17), (2, 7, 4), (8, 1, 3)] {
            let engine = NativeCpu::with_threads(threads).with_shards(shards);
            let ranges = engine.dispatch_ranges(pes);
            let mut next = 0;
            for (a, b) in ranges {
                assert_eq!(a, next);
                assert!(b > a);
                next = b;
            }
            assert_eq!(next, pes);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = NativeCpu::new().with_shards(0);
    }

    #[test]
    fn lane_isa_reports_a_known_path() {
        let isa = super::lane_isa();
        assert!(isa == "avx2" || isa == "scalar", "{isa}");
        #[cfg(not(feature = "simd"))]
        assert_eq!(isa, "scalar");
    }

    #[test]
    fn thread_count_constructors() {
        assert!(NativeCpu::new().threads() >= 1);
        assert_eq!(NativeCpu::with_threads(5).threads(), 5);
        assert_eq!(NativeCpu::default().threads(), NativeCpu::new().threads());
        assert!(NativeCpu::new().uses_plans());
        let dbg = format!("{:?}", NativeCpu::with_threads(2));
        assert!(dbg.contains("threads"), "{dbg}");
    }

    #[test]
    #[should_panic(expected = "threads must be non-zero")]
    fn rejects_zero_threads() {
        let _ = NativeCpu::with_threads(0);
    }
}
