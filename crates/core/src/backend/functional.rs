//! The functional backend: the untimed golden model behind the trait.

use std::time::Instant;

use eie_compress::EncodedLayer;
use eie_fixed::Q8p8;
use eie_sim::functional;

use super::{check_activations, Backend, BackendRun};

/// Executes layers on the bit-exact functional golden model.
///
/// This is the reference the other two backends are verified against
/// (the role the golden Caffe model plays for the paper's RTL). It
/// models no time: the reported latency is the host wall-clock of the
/// straightforward single-threaded interpretation, useful only as a
/// bookkeeping denominator — for real host-speed serving use
/// [`NativeCpu`](super::NativeCpu).
#[derive(Debug, Clone, Copy, Default)]
pub struct Functional;

impl Functional {
    /// The functional golden-model backend.
    pub fn new() -> Self {
        Self
    }
}

impl Backend for Functional {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn run_layer(&self, layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> BackendRun {
        check_activations(layer, acts);
        let start = Instant::now();
        let outputs = functional::execute(layer, acts, relu);
        BackendRun::solo(outputs, start.elapsed().as_secs_f64(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;

    #[test]
    fn matches_the_free_function_and_measures_host_time() {
        let layer = Benchmark::Vgg7.generate_scaled(2, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let acts: Vec<Q8p8> = layer
            .sample_activations(3)
            .iter()
            .map(|&a| Q8p8::from_f32(a))
            .collect();
        let backend = Functional::new();
        let run = backend.run_layer(&enc, &acts, false);
        assert_eq!(run.outputs, functional::execute(&enc, &acts, false));
        assert!(run.latency_s >= 0.0);
        assert!(run.stats.is_none(), "the golden model has no cycle stats");
    }
}
