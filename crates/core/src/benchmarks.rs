//! Prepared benchmark instances: zoo layer + compressed form + inputs.

use std::fmt;

use eie_compress::EncodedLayer;
use eie_nn::zoo::{BenchLayer, Benchmark, DEFAULT_SEED};

use crate::{BackendKind, CompiledModel, EieConfig, JobResult};

/// A ready-to-run instance of one Table III benchmark: the generated
/// layer, its compressed encoding for a given PE count, and a sampled
/// activation vector.
///
/// # Example
///
/// ```
/// use eie_core::{BenchmarkInstance, EieConfig};
/// use eie_core::nn::zoo::Benchmark;
///
/// // 1/32-scale instance for quick runs; `prepare_full` for experiments.
/// let inst = BenchmarkInstance::prepare_scaled(
///     Benchmark::NtWe,
///     EieConfig::default().with_num_pes(4),
///     32,
/// );
/// let result = inst.run();
/// assert!(result.time_us() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BenchmarkInstance {
    /// Which Table III row this is.
    pub benchmark: Benchmark,
    /// The generated (pruned) layer.
    pub layer: BenchLayer,
    /// The compressed encoding.
    pub encoded: EncodedLayer,
    /// Sampled input activations at the benchmark's Table III density.
    pub activations: Vec<f32>,
    /// The engine configuration the instance was prepared for.
    pub config: EieConfig,
}

impl BenchmarkInstance {
    /// Prepares a full-size instance with the default experiment seed.
    pub fn prepare_full(benchmark: Benchmark, config: EieConfig) -> Self {
        Self::from_layer(benchmark.generate(DEFAULT_SEED), config)
    }

    /// Prepares a `1/divisor`-scale instance (tests, quick sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    pub fn prepare_scaled(benchmark: Benchmark, config: EieConfig, divisor: usize) -> Self {
        Self::from_layer(benchmark.generate_scaled(DEFAULT_SEED, divisor), config)
    }

    /// Prepares an instance from an already-generated layer.
    pub fn from_layer(layer: BenchLayer, config: EieConfig) -> Self {
        let encoded = config.pipeline().compile_matrix(&layer.weights);
        let activations = layer.sample_activations(DEFAULT_SEED);
        Self {
            benchmark: layer.benchmark,
            layer,
            encoded,
            activations,
            config,
        }
    }

    /// Executes the instance on the cycle-accurate model through the
    /// unified inference surface (outputs, statistics and energy in one
    /// [`JobResult`]).
    pub fn run(&self) -> JobResult {
        self.model()
            .infer(BackendKind::CycleAccurate)
            .submit_one(&self.activations)
    }

    /// The instance's encoded layer wrapped as a single-layer
    /// [`CompiledModel`] — the artifact the inference surface executes.
    pub fn model(&self) -> CompiledModel {
        CompiledModel::from_layers(self.config, vec![self.encoded.clone()])
            .with_name(self.benchmark.name().to_string())
    }

    /// The dense workload in GOP (2 × rows × cols / 1e9): the denominator
    /// of the paper's "equivalent dense throughput" claims.
    pub fn dense_gop(&self) -> f64 {
        2.0 * (self.layer.weights.rows() * self.layer.weights.cols()) as f64 / 1e9
    }
}

impl CompiledModel {
    /// Zoo artifact export: compiles a Table III benchmark layer into a
    /// single-layer [`CompiledModel`] ready to
    /// [`save`](CompiledModel::save) as a `.eie` file — the
    /// build-once/load-many entry point for the benchmark zoo.
    ///
    /// `divisor` scales both dimensions down (1 = the paper's full
    /// size); the model is named `"<bench> 1/<divisor>"` so `eie
    /// inspect` can identify what an artifact holds.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use eie_core::{CompiledModel, EieConfig};
    /// use eie_core::nn::zoo::{Benchmark, DEFAULT_SEED};
    ///
    /// let model = CompiledModel::from_zoo(
    ///     Benchmark::Alex7,
    ///     EieConfig::default().with_num_pes(4),
    ///     DEFAULT_SEED,
    ///     32,
    /// );
    /// assert_eq!(model.name(), "Alex-7 1/32");
    /// let restored = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
    /// assert_eq!(restored, model);
    /// ```
    pub fn from_zoo(
        benchmark: Benchmark,
        config: EieConfig,
        seed: u64,
        divisor: usize,
    ) -> CompiledModel {
        assert!(divisor > 0, "divisor must be non-zero");
        let layer = if divisor == 1 {
            benchmark.generate(seed)
        } else {
            benchmark.generate_scaled(seed, divisor)
        };
        CompiledModel::compile_layer(config, &layer.weights)
            .with_name(format!("{} 1/{divisor}", benchmark.name()))
    }
}

impl fmt::Display for BenchmarkInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}x{}] on {}",
            self.benchmark,
            self.layer.weights.rows(),
            self.layer.weights.cols(),
            self.config
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_scaled_and_run() {
        let inst = BenchmarkInstance::prepare_scaled(
            Benchmark::Vgg8,
            EieConfig::default().with_num_pes(4),
            32,
        );
        assert_eq!(inst.encoded.num_pes(), 4);
        assert_eq!(inst.activations.len(), inst.layer.weights.cols());
        let result = inst.run();
        assert_eq!(result.outputs(0).len(), inst.layer.weights.rows());
        assert!(result.energy().is_some(), "cycle backend prices energy");
    }

    #[test]
    fn dense_gop_matches_dims() {
        let inst = BenchmarkInstance::prepare_scaled(
            Benchmark::Alex8,
            EieConfig::default().with_num_pes(2),
            64,
        );
        let (r, c) = (inst.layer.weights.rows(), inst.layer.weights.cols());
        assert!((inst.dense_gop() - 2.0 * (r * c) as f64 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn instances_are_deterministic() {
        let cfg = EieConfig::default().with_num_pes(2);
        let a = BenchmarkInstance::prepare_scaled(Benchmark::NtLstm, cfg, 16);
        let b = BenchmarkInstance::prepare_scaled(Benchmark::NtLstm, cfg, 16);
        assert_eq!(a.activations, b.activations);
        assert_eq!(a.encoded, b.encoded);
        assert_eq!(a.run().stats(0), b.run().stats(0));
    }
}
