//! The staged (pipelined) executor: layer groups as stages, bounded
//! queues between them.
//!
//! [`run_stack_planned`](crate::run_stack_planned) executes a layer
//! stack **layer-at-a-time over the whole batch** on one engine — every
//! layer's wall time adds up, and the single worker pool is the only
//! parallelism. This module adds the second axis from the paper's
//! scalability story (Figs 9–13) and ROADMAP open item 1: carve the
//! stack into **stages** ([`Topology::stage_spans`]), give each stage
//! its own [`NativeCpu`] engine (optionally row-sharded via
//! [`NativeCpu::with_shards`]), and stream the batch through the stages
//! as chunks over bounded SPSC queues — so on a multi-core host,
//! steady-state batch throughput is set by the *slowest stage*, not the
//! sum of the stack.
//!
//! # Chunk granularity
//!
//! Chunk size is a pure scheduling knob (outputs are bit-exact at any
//! granularity, below), but it trades overlap against memory traffic:
//! the lane kernel streams a layer's whole pre-decoded plan once per
//! chunk, re-reading each cache-sized tile for every [`LANE_WIDTH`]
//! lane block *inside* the chunk — so many small chunks re-stream the
//! plan from memory many times, while one big chunk forfeits stage
//! overlap. [`PipelinedStack::run`] therefore adapts to the host: with
//! cores to spare it cuts the batch into `stages × QUEUE_DEPTH` chunks
//! (rounded up to whole lane blocks) so every stage stays busy, and on
//! a lone core — where overlap buys nothing — it hands the whole batch
//! through as one chunk, keeping the plan walk count identical to the
//! single-pool path. A batch that fits one chunk degenerates further:
//! the stage spans run sequentially on the calling thread (each on its
//! own engine), paying no queue or spawn overhead for parallelism that
//! cannot happen. [`PipelinedStack::run_chunked`] pins the granularity
//! explicitly (benchmarks, tests).
//!
//! # Bit-exactness
//!
//! Chunking the batch cannot change any output: the fused kernels keep
//! every item's saturating-[`Accum32`](eie_fixed::Accum32) chain
//! independent (that is what makes batching legal at all), so splitting
//! a batch of 16 into two chunks of [`LANE_WIDTH`] runs the *same* add
//! sequence per item — in fact the lane kernel already processes the
//! batch in [`LANE_WIDTH`]-item blocks internally. Stages execute
//! disjoint layers in stack order with ReLU decided by **global** layer
//! index, and the queues preserve chunk order (SPSC FIFO), so the
//! pipelined stack is bit-exact against [`run_stack_planned`] and the
//! functional golden model for every shard × stage × batch shape — the
//! shard proptests pin exactly this.
//!
//! # Queue sizing policy
//!
//! Each inter-stage queue holds at most [`QUEUE_DEPTH`] (= 2) chunks:
//! one chunk for the consumer to work on and one in flight lets
//! adjacent stages overlap fully (double buffering), while deeper
//! queues would only add memory without throughput — a pipeline's
//! steady state is set by its slowest stage, and queue depth merely
//! absorbs jitter. In-flight activation memory is therefore bounded by
//! `stages × (QUEUE_DEPTH + 1) × chunk_frames × max_rows` values
//! regardless of batch size, the streaming-working-set argument of the
//! I/O-efficiency paper (PAPERS.md).
//!
//! [`run_stack_planned`]: crate::run_stack_planned

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use eie_compress::{LayerPlan, Topology, LANE_WIDTH};
use eie_fixed::Q8p8;

use crate::backend::{NativeCpu, PlannedLayer};
use crate::infer::LayerPhase;

/// Bounded depth (in chunks) of each inter-stage queue: one being
/// consumed plus one in flight — classic double buffering (see the
/// module docs for why deeper buys nothing).
pub const QUEUE_DEPTH: usize = 2;

/// A bounded SPSC queue between two pipeline stages — `eie-serve`'s
/// queue discipline (mutex + two condvars, close-and-drain shutdown)
/// on a fixed chunk capacity:
///
/// * `push` blocks while full, fails (returns `false`) once closed, so
///   a producer upstream of a dead consumer unblocks instead of
///   deadlocking;
/// * `pop` drains remaining chunks after close and only then reports
///   the end of the stream (`None`), so closing loses no work.
struct StageQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> StageQueue<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stage queue needs capacity");
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Blocks until there is room, then enqueues; returns `false`
    /// (dropping `item`) if the queue closed in the meantime.
    fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("stage queue poisoned");
        while state.items.len() == self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("stage queue poisoned");
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until a chunk is available and dequeues it; `None` once
    /// the queue is closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("stage queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("stage queue poisoned");
        }
    }

    /// Marks the stream finished (idempotent) and wakes both sides.
    fn close(&self) {
        let mut state = self.state.lock().expect("stage queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes a stage's adjacent queues when the stage exits — normally
/// *or by panic*. The close cascades: a dead consumer fails its
/// producer's next `push`, which breaks that producer's loop, whose own
/// guard then closes the next queue upstream — so one panicking stage
/// unwinds the whole pipeline instead of deadlocking it, and the panic
/// re-raises at the caller's join.
struct CloseGuard<'q, T> {
    input: Option<&'q StageQueue<T>>,
    output: Option<&'q StageQueue<T>>,
}

impl<T> Drop for CloseGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(q) = self.input {
            q.close();
        }
        if let Some(q) = self.output {
            q.close();
        }
    }
}

/// One activation chunk in flight: up to [`LANE_WIDTH`] items'
/// activation vectors, in batch order.
type Chunk = Vec<Vec<Q8p8>>;

/// The result of one pipelined stack execution.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-item output activations (`[item][global_row]`, batch order),
    /// bit-exact with [`run_stack_planned`](crate::run_stack_planned).
    pub outputs: Vec<Vec<Q8p8>>,
    /// Per-layer busy time (summed over chunks), input to output. Stage
    /// times overlap on a multi-core host, so these sum to more than
    /// [`PipelineRun::wall_s`] once the pipeline actually overlaps.
    pub phases: Vec<LayerPhase>,
    /// End-to-end wall time of the batch, seconds.
    pub wall_s: f64,
}

impl PipelineRun {
    /// Batch throughput, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.outputs.len() as f64 / self.wall_s
    }

    /// Amortized per-frame time, µs.
    pub fn per_frame_us(&self) -> f64 {
        self.wall_s * 1e6 / self.outputs.len().max(1) as f64
    }

    /// End-to-end wall time, µs.
    pub fn wall_time_us(&self) -> f64 {
        self.wall_s * 1e6
    }
}

/// A layer stack staged for pipelined execution: contiguous layer
/// spans, one (possibly row-sharded) [`NativeCpu`] engine per stage,
/// and every layer's plan resolved up front.
///
/// Build once, [`run`](PipelinedStack::run) many — stage engines keep
/// their plan caches and scratch warm across runs, the shape serving
/// workers want. Stage worker threads themselves are scoped per run
/// (they hold borrows of the batch), which costs one spawn per stage
/// per batch — noise next to a multi-layer batch's kernel time.
///
/// ```
/// use eie_core::{BackendKind, CompiledModel, EieConfig, PipelinedStack, Topology};
/// use eie_core::nn::zoo::random_sparse;
/// use eie_core::fixed::Q8p8;
///
/// let w1 = random_sparse(32, 24, 0.2, 1);
/// let w2 = random_sparse(16, 32, 0.2, 2);
/// let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2]);
/// let planned = model.planned_layers();
/// let batch: Vec<Vec<Q8p8>> = (0..5).map(|i| Q8p8::from_f32_slice(&vec![0.25 * i as f32; 24])).collect();
///
/// let stack = PipelinedStack::new(&planned, &Topology::single().with_stages(2), 1);
/// let run = stack.run(&batch);
/// let golden = model.infer(BackendKind::Functional).submit(
///     &(0..5).map(|i| vec![0.25 * i as f32; 24]).collect::<Vec<_>>());
/// for i in 0..5 {
///     assert_eq!(&run.outputs[i], golden.outputs(i), "pipelined must stay bit-exact");
/// }
/// ```
pub struct PipelinedStack<'m> {
    layers: Vec<PlannedLayer<'m>>,
    /// Every layer's resolved plan (cloned from the caller's, or built
    /// into the owning stage engine's cache for unplanned layers).
    plans: Vec<Arc<LayerPlan>>,
    /// Stage `s` owns global layers `spans[s].0 .. spans[s].1`.
    spans: Vec<(usize, usize)>,
    engines: Vec<NativeCpu>,
}

impl std::fmt::Debug for PipelinedStack<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedStack")
            .field("depth", &self.layers.len())
            .field("spans", &self.spans)
            .field("shards", &self.engines[0].shards())
            .finish()
    }
}

impl<'m> PipelinedStack<'m> {
    /// Stages `layers` according to `topology`. Each stage gets its own
    /// engine with `topology.group_threads()` workers (when set) or
    /// `threads` otherwise (`0` = one worker per core), row-sharded by
    /// `topology.shards()`; stage spans come from
    /// [`Topology::stage_spans`] (`stages = 0` means one stage per
    /// layer).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: &[PlannedLayer<'m>], topology: &Topology, threads: usize) -> Self {
        assert!(!layers.is_empty(), "inference job needs at least one layer");
        let spans = topology.stage_spans(layers.len());
        let stage_threads = if topology.group_threads() > 0 {
            topology.group_threads()
        } else {
            threads
        };
        let engines: Vec<NativeCpu> = spans
            .iter()
            .map(|_| {
                let engine = if stage_threads == 0 {
                    NativeCpu::new()
                } else {
                    NativeCpu::with_threads(stage_threads)
                };
                engine.with_shards(topology.shards())
            })
            .collect();
        let mut plans = Vec::with_capacity(layers.len());
        for (s, &(first, end)) in spans.iter().enumerate() {
            for planned in &layers[first..end] {
                plans.push(match planned.plan {
                    Some(plan) => Arc::clone(plan),
                    None => engines[s].plan_for(planned.layer),
                });
            }
        }
        Self {
            layers: layers.to_vec(),
            plans,
            spans,
            engines,
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.spans.len()
    }

    /// The global-layer span `(first, end)` of each stage, in order.
    pub fn stage_spans(&self) -> &[(usize, usize)] {
        &self.spans
    }

    /// Number of layers in the staged stack.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Frames per queue handoff on this host (see the module docs):
    /// enough chunks to keep every stage busy when spare cores make
    /// overlap real, the whole batch in one chunk on a lone core —
    /// which gains nothing from overlap but pays the per-chunk plan
    /// re-stream.
    fn policy_chunk_frames(&self, batch: usize) -> usize {
        if crate::backend::default_threads() <= 1 {
            return batch;
        }
        let blocks = batch.div_ceil(LANE_WIDTH);
        let target = (self.spans.len() * QUEUE_DEPTH).clamp(1, blocks);
        blocks.div_ceil(target) * LANE_WIDTH
    }

    /// Runs a quantized batch through the staged stack (ReLU between
    /// layers by global index, none after the last — identical
    /// semantics to [`run_stack_planned`](crate::run_stack_planned)),
    /// picking the chunk granularity for this host (module docs).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, an item's length differs from the
    /// first layer's input dimension, or a stage worker panicked.
    pub fn run(&self, batch: &[Vec<Q8p8>]) -> PipelineRun {
        assert!(!batch.is_empty(), "batch must be non-empty");
        self.run_chunked(batch, self.policy_chunk_frames(batch.len()))
    }

    /// [`run`](Self::run) with the queue-handoff granularity pinned to
    /// `chunk_frames` items. Outputs are bit-exact at any granularity
    /// (module docs); lane-block multiples of [`LANE_WIDTH`] avoid
    /// padded tail blocks in every chunk but the last.
    ///
    /// A single-stage topology — or a batch that fits one chunk, which
    /// has nothing to overlap — runs inline on the calling thread (no
    /// queues, no spawns); otherwise chunks stream through scoped stage
    /// threads, the first stage executing on the calling thread.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run), plus if `chunk_frames` is zero.
    pub fn run_chunked(&self, batch: &[Vec<Q8p8>], chunk_frames: usize) -> PipelineRun {
        assert!(!batch.is_empty(), "batch must be non-empty");
        assert!(chunk_frames > 0, "chunk granularity must be non-zero");
        let depth = self.layers.len();
        let start = Instant::now();
        // One stage, or one chunk: there is nothing to overlap, so run
        // the stage spans sequentially on the calling thread — each
        // span still executes on its own engine, but no queue or spawn
        // overhead is paid for parallelism that cannot happen.
        if self.spans.len() == 1 || batch.len() <= chunk_frames {
            let mut current = batch.to_vec();
            let mut phases = Vec::with_capacity(depth);
            for (s, &(first, end)) in self.spans.iter().enumerate() {
                let engine = &self.engines[s];
                for (i, plan) in self.plans[first..end].iter().enumerate() {
                    let t = Instant::now();
                    current = engine.run_chunk_planned(plan, &current, first + i + 1 < depth);
                    phases.push(LayerPhase {
                        latency_s: t.elapsed().as_secs_f64(),
                        stats: None,
                    });
                }
            }
            return PipelineRun {
                outputs: current,
                phases,
                wall_s: start.elapsed().as_secs_f64(),
            };
        }

        let queues: Vec<StageQueue<Chunk>> = (1..self.spans.len())
            .map(|_| StageQueue::new(QUEUE_DEPTH))
            .collect();
        let mut stage_times: Vec<Vec<f64>> = Vec::with_capacity(self.spans.len());
        let mut outputs: Vec<Vec<Q8p8>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.spans.len() - 1);
            for (s, &(first, end)) in self.spans.iter().enumerate().skip(1) {
                let input = &queues[s - 1];
                let output = queues.get(s);
                let engine = &self.engines[s];
                let plans = &self.plans[first..end];
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("eie-stage-{s}"))
                        .spawn_scoped(scope, move || {
                            let _guard = CloseGuard {
                                input: Some(input),
                                output,
                            };
                            let mut times = vec![0.0f64; end - first];
                            let mut collected: Vec<Vec<Q8p8>> = Vec::new();
                            while let Some(mut chunk) = input.pop() {
                                for (i, plan) in plans.iter().enumerate() {
                                    let t = Instant::now();
                                    chunk = engine.run_chunk_planned(
                                        plan,
                                        &chunk,
                                        first + i + 1 < depth,
                                    );
                                    times[i] += t.elapsed().as_secs_f64();
                                }
                                match output {
                                    Some(queue) => {
                                        if !queue.push(chunk) {
                                            break;
                                        }
                                    }
                                    None => collected.extend(chunk),
                                }
                            }
                            (times, collected)
                        })
                        .expect("spawn pipeline stage"),
                );
            }
            // The first stage runs here, feeding the pipeline.
            let (first, end) = self.spans[0];
            let engine = &self.engines[0];
            let mut times = vec![0.0f64; end - first];
            {
                let _guard = CloseGuard {
                    input: None,
                    output: Some(&queues[0]),
                };
                for items in batch.chunks(chunk_frames) {
                    let mut chunk = items.to_vec();
                    for (i, plan) in self.plans[first..end].iter().enumerate() {
                        let t = Instant::now();
                        chunk = engine.run_chunk_planned(plan, &chunk, first + i + 1 < depth);
                        times[i] += t.elapsed().as_secs_f64();
                    }
                    if !queues[0].push(chunk) {
                        break;
                    }
                }
            }
            stage_times.push(times);
            for handle in handles {
                let (times, collected) = handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                stage_times.push(times);
                if !collected.is_empty() {
                    outputs = collected;
                }
            }
        });
        assert_eq!(
            outputs.len(),
            batch.len(),
            "pipeline drained early (a stage died before finishing the batch)"
        );
        let phases = stage_times
            .into_iter()
            .flatten()
            .map(|latency_s| LayerPhase {
                latency_s,
                stats: None,
            })
            .collect();
        PipelineRun {
            outputs,
            phases,
            wall_s: start.elapsed().as_secs_f64(),
        }
    }
}

/// Runs a quantized batch through a planned layer stack under a
/// topology — the pipelined sibling of
/// [`run_stack_planned`](crate::run_stack_planned), and the entry point
/// the serving workers and the scaling sweep share. `threads` is the
/// per-stage worker count used when the topology doesn't pin one
/// (`0` = one worker per core).
///
/// Callers that run the same stack repeatedly should build a
/// [`PipelinedStack`] once and call [`PipelinedStack::run`] to keep the
/// stage engines warm.
///
/// # Panics
///
/// Panics if `layers` or `batch` is empty, or dimensions mismatch.
pub fn run_stack_pipelined(
    layers: &[PlannedLayer<'_>],
    batch: &[Vec<Q8p8>],
    topology: &Topology,
    threads: usize,
) -> PipelineRun {
    PipelinedStack::new(layers, topology, threads).run(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, CompiledModel};
    use crate::infer::run_stack_planned;
    use crate::EieConfig;
    use eie_nn::zoo::random_sparse;

    fn stack_model(depth: usize) -> CompiledModel {
        // 24 → 32 → 32 → … → 12, densities high enough to exercise
        // every PE slice.
        let mut layers = Vec::new();
        layers.push(random_sparse(32, 24, 0.3, 21));
        for i in 1..depth.saturating_sub(1) {
            layers.push(random_sparse(32, 32, 0.3, 21 + i as u64));
        }
        if depth > 1 {
            layers.push(random_sparse(12, 32, 0.3, 20 + depth as u64));
        }
        let refs: Vec<&eie_nn::CsrMatrix> = layers.iter().collect();
        CompiledModel::compile(EieConfig::default().with_num_pes(4), &refs)
    }

    fn quantized_batch(n: usize, cols: usize) -> Vec<Vec<Q8p8>> {
        (0..n as u64)
            .map(|i| {
                Q8p8::from_f32_slice(&eie_nn::zoo::sample_activations(cols, 0.5, true, 90 + i))
            })
            .collect()
    }

    #[test]
    fn queue_blocks_bounds_and_drains_on_close() {
        let q = StageQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        // Closed: pushes fail, the backlog still drains in order.
        assert!(!q.push(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_close_unblocks_a_full_producer() {
        let q = Arc::new(StageQueue::new(1));
        assert!(q.push(0));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        // The producer is (about to be) parked on a full queue; closing
        // must fail its push rather than strand it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(!producer.join().unwrap(), "push must fail after close");
    }

    #[test]
    fn pipelined_outputs_are_bit_exact_for_every_stage_and_shard_shape() {
        let model = stack_model(4);
        let planned = model.planned_layers();
        let engine = NativeCpu::with_threads(1);
        for batch_len in [1, 5, 8, 9, 17] {
            let batch = quantized_batch(batch_len, 24);
            let baseline = run_stack_planned(&engine, &planned, &batch);
            for stages in [0, 1, 2, 3, 4, 9] {
                for shards in [1, 2, 3] {
                    let topology = Topology::single().with_stages(stages).with_shards(shards);
                    let run = run_stack_pipelined(&planned, &batch, &topology, 1);
                    assert_eq!(run.outputs.len(), batch_len);
                    assert_eq!(run.phases.len(), 4);
                    for (i, item) in baseline.iter().enumerate() {
                        assert_eq!(
                            run.outputs[i], item.outputs,
                            "diverged at {stages} stages × {shards} shards, \
                             batch {batch_len}, item {i}"
                        );
                    }
                    // Chunk granularity is a scheduling knob only: force
                    // single-item, lane-remainder and lane-width handoffs
                    // through the queues (whatever this host's policy is).
                    if stages == 4 {
                        let stack = PipelinedStack::new(&planned, &topology, 1);
                        for chunk_frames in [1, 3, LANE_WIDTH] {
                            let chunked = stack.run_chunked(&batch, chunk_frames);
                            for (i, item) in baseline.iter().enumerate() {
                                assert_eq!(
                                    chunked.outputs[i], item.outputs,
                                    "diverged at chunk {chunk_frames}, {shards} shards, \
                                     batch {batch_len}, item {i}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_matches_the_functional_golden_end_to_end() {
        let model = stack_model(3);
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|i| eie_nn::zoo::sample_activations(24, 0.5, true, 300 + i))
            .collect();
        let golden = model.infer(BackendKind::Functional).submit(&inputs);
        let planned = model.planned_layers();
        let batch: Vec<Vec<Q8p8>> = inputs.iter().map(|a| Q8p8::from_f32_slice(a)).collect();
        let topology = Topology::single().with_stages(3).with_shards(2);
        let run = run_stack_pipelined(&planned, &batch, &topology, 1);
        for i in 0..inputs.len() {
            assert_eq!(&run.outputs[i], golden.outputs(i));
        }
        assert!(run.wall_s > 0.0);
        assert!(run.frames_per_second() > 0.0);
    }

    #[test]
    fn stack_reuse_keeps_engines_warm_and_spans_resolved() {
        let model = stack_model(3);
        let planned = model.planned_layers();
        let stack = PipelinedStack::new(&planned, &Topology::single().with_stages(2), 1);
        assert_eq!(stack.stages(), 2);
        assert_eq!(stack.depth(), 3);
        assert_eq!(stack.stage_spans(), &[(0, 2), (2, 3)]);
        let batch = quantized_batch(4, 24);
        let first = stack.run(&batch);
        let second = stack.run(&batch);
        assert_eq!(first.outputs, second.outputs);
        // Plans came from the model's cache: no stage engine rebuilt.
        for engine in &stack.engines {
            assert_eq!(engine.plan_builds(), 0);
        }
    }

    #[test]
    fn unplanned_layers_build_into_the_owning_stage_engine() {
        let model = stack_model(2);
        let unplanned: Vec<PlannedLayer<'_>> =
            model.layers().iter().map(PlannedLayer::unplanned).collect();
        let stack = PipelinedStack::new(&unplanned, &Topology::single().with_stages(2), 1);
        let total_builds: u64 = stack.engines.iter().map(|e| e.plan_builds()).sum();
        assert_eq!(total_builds, 2, "one plan per layer, built at staging");
        let batch = quantized_batch(3, 24);
        let planned = model.planned_layers();
        let baseline = run_stack_planned(&NativeCpu::with_threads(1), &planned, &batch);
        let run = stack.run(&batch);
        for (i, item) in baseline.iter().enumerate() {
            assert_eq!(run.outputs[i], item.outputs);
        }
    }

    #[test]
    fn a_panicking_stage_surfaces_without_deadlock() {
        let model = stack_model(3);
        let planned = model.planned_layers();
        let stack = PipelinedStack::new(&planned, &Topology::single().with_stages(3), 1);
        // A mid-pipeline dimension mismatch panics inside stage 1; the
        // close cascade must unwind stages 0 and 2 and re-raise here.
        let bad = vec![vec![Q8p8::from_f32(0.5); 24]; 4];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Feed a batch whose items are the wrong length for layer 0,
            // pinned to single-item chunks so the bad item panics with
            // earlier chunks already in flight downstream.
            let mut wrong = bad.clone();
            wrong[2] = vec![Q8p8::from_f32(0.5); 7];
            stack.run_chunked(&wrong, 1)
        }));
        assert!(result.is_err(), "dimension mismatch must panic");
        // The stack (and its queues) must remain usable afterwards.
        let run = stack.run(&bad);
        assert_eq!(run.outputs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn rejects_empty_batch() {
        let model = stack_model(2);
        let planned = model.planned_layers();
        let _ = run_stack_pipelined(&planned, &[], &Topology::single(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_empty_stack() {
        let _ = PipelinedStack::new(&[], &Topology::single(), 1);
    }
}
