//! The engine: configure → compress → execute → report.

use std::fmt;

use eie_compress::{compress, CompressConfig, EncodedLayer};
use eie_energy::{EnergyReport, LayerActivity, PeModel};
use eie_nn::CsrMatrix;
use eie_sim::{simulate, simulate_network, LayerRun, NetworkRun, SimConfig, SimStats};

/// Accelerator configuration: the union of the design parameters the
/// paper explores (§VI-C) with the paper's chosen values as defaults.
///
/// `EieConfig` is a non-consuming builder:
///
/// ```
/// use eie_core::EieConfig;
///
/// let cfg = EieConfig::default()
///     .with_num_pes(256)
///     .with_fifo_depth(16)
///     .with_spmat_width(128);
/// assert_eq!(cfg.num_pes, 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EieConfig {
    /// Number of processing elements (paper default: 64; scalable to 256+).
    pub num_pes: usize,
    /// Activation FIFO depth (paper default: 8).
    pub fifo_depth: usize,
    /// Sparse-matrix SRAM width in bits (paper default: 64).
    pub spmat_width_bits: u32,
    /// Clock frequency in Hz (paper: 800 MHz at 45 nm).
    pub clock_hz: f64,
    /// Relative-index bits in the encoding (paper: 4).
    pub index_bits: u32,
    /// Model the LNZD tree (vs. an oracle broadcast).
    pub lnzd_tree: bool,
    /// Pointer SRAM banking (vs. serialized double reads).
    pub ptr_banked: bool,
    /// Accumulator bypass path (vs. hazard stalls).
    pub accumulator_bypass: bool,
}

impl Default for EieConfig {
    fn default() -> Self {
        Self {
            num_pes: 64,
            fifo_depth: 8,
            spmat_width_bits: 64,
            clock_hz: 800e6,
            index_bits: 4,
            lnzd_tree: true,
            ptr_banked: true,
            accumulator_bypass: true,
        }
    }
}

impl EieConfig {
    /// Sets the PE count.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`.
    pub fn with_num_pes(mut self, num_pes: usize) -> Self {
        assert!(num_pes > 0, "num_pes must be non-zero");
        self.num_pes = num_pes;
        self
    }

    /// Sets the activation FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "fifo depth must be non-zero");
        self.fifo_depth = depth;
        self
    }

    /// Sets the sparse-matrix SRAM width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a positive multiple of 8.
    pub fn with_spmat_width(mut self, bits: u32) -> Self {
        assert!(
            bits >= 8 && bits.is_multiple_of(8),
            "width must be a multiple of 8"
        );
        self.spmat_width_bits = bits;
        self
    }

    /// Sets the clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not positive.
    pub fn with_clock_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "clock must be positive");
        self.clock_hz = hz;
        self
    }

    /// The compression configuration implied by this accelerator config.
    pub fn compress_config(&self) -> CompressConfig {
        CompressConfig {
            num_pes: self.num_pes,
            index_bits: self.index_bits,
            ..CompressConfig::default()
        }
    }

    /// The simulator configuration implied by this accelerator config.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            fifo_depth: self.fifo_depth,
            spmat_width_bits: self.spmat_width_bits,
            clock_hz: self.clock_hz,
            lnzd_tree: self.lnzd_tree,
            ptr_banked: self.ptr_banked,
            accumulator_bypass: self.accumulator_bypass,
            ..SimConfig::default()
        }
    }

    /// The physical PE model implied by this accelerator config.
    pub fn pe_model(&self) -> PeModel {
        PeModel {
            spmat_width_bits: self.spmat_width_bits,
            fifo_depth: self.fifo_depth,
            clock_hz: self.clock_hz,
        }
    }
}

impl fmt::Display for EieConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EIE[{} PEs, FIFO {}, {}b SRAM, {:.0} MHz]",
            self.num_pes,
            self.fifo_depth,
            self.spmat_width_bits,
            self.clock_hz / 1e6
        )
    }
}

/// Converts simulator statistics into the energy model's activity counts.
pub fn activity_from_stats(stats: &SimStats) -> LayerActivity {
    LayerActivity {
        cycles: stats.total_cycles,
        num_pes: stats.num_pes(),
        spmat_row_reads: stats.spmat_row_reads(),
        ptr_bank_reads: stats.ptr_bank_reads(),
        macs: stats.total_macs(),
        dest_reads: stats.pe.iter().map(|p| p.dest_reads).sum(),
        dest_writes: stats.pe.iter().map(|p| p.dest_writes).sum(),
        queue_pushes: stats.pe.iter().map(|p| p.queue_pushes).sum(),
        queue_pops: stats.pe.iter().map(|p| p.queue_pops).sum(),
        output_writes: stats.pe.iter().map(|p| p.output_writes).sum(),
        input_reads: stats.broadcasts,
    }
}

/// Result of executing one layer on the simulated accelerator.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Outputs and cycle statistics from the simulator.
    pub run: LayerRun,
    /// Activity-priced energy report.
    pub energy: EnergyReport,
    /// Clock the run was timed at, Hz.
    pub clock_hz: f64,
}

impl ExecutionResult {
    /// Wall-clock time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.run.stats.total_cycles as f64 / self.clock_hz * 1e6
    }

    /// The theoretical (perfectly balanced, stall-free) time, µs —
    /// Table IV's "EIE Theoretical Time" row.
    pub fn theoretical_time_us(&self) -> f64 {
        self.run.stats.theoretical_cycles() as f64 / self.clock_hz * 1e6
    }

    /// Inference throughput if this layer ran back-to-back, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        1e6 / self.time_us()
    }

    /// Sustained GOP/s on the compressed workload.
    pub fn gops(&self) -> f64 {
        self.run.stats.gops_at(self.clock_hz)
    }

    /// Average power over the run, W.
    pub fn average_power_w(&self) -> f64 {
        self.energy.average_power_w()
    }
}

impl fmt::Display for ExecutionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} µs ({:.1} GOP/s, {:.2} µJ, balance {:.0}%)",
            self.time_us(),
            self.gops(),
            self.energy.total_uj(),
            self.run.stats.load_balance_efficiency() * 100.0
        )
    }
}

/// Result of executing a multi-layer network.
#[derive(Debug, Clone)]
pub struct NetworkResult {
    /// The simulator's per-layer and merged results.
    pub run: NetworkRun,
    /// Energy priced over the merged activity.
    pub energy: EnergyReport,
    /// Clock the run was timed at, Hz.
    pub clock_hz: f64,
}

impl NetworkResult {
    /// End-to-end time, µs.
    pub fn time_us(&self) -> f64 {
        self.run.total.total_cycles as f64 / self.clock_hz * 1e6
    }
}

/// The accelerator engine: compresses layers and executes them on the
/// cycle-accurate model, reporting time and energy.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EieConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EieConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EieConfig {
        &self.config
    }

    /// Compresses a pruned layer for this engine's PE array
    /// (k-means weight sharing + interleaved CSC, paper §III).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no non-zeros.
    pub fn compress(&self, weights: &CsrMatrix) -> EncodedLayer {
        compress(weights, self.config.compress_config())
    }

    /// Executes one layer (raw M×V) and prices its energy.
    ///
    /// # Panics
    ///
    /// Panics if the layer was compressed for a different PE count or the
    /// activation length mismatches.
    pub fn run_layer(&self, layer: &EncodedLayer, acts: &[f32]) -> ExecutionResult {
        assert_eq!(
            layer.num_pes(),
            self.config.num_pes,
            "layer compressed for a different PE count"
        );
        let run = simulate(layer, acts, &self.config.sim_config());
        let energy = EnergyReport::price(&activity_from_stats(&run.stats), &self.config.pe_model());
        ExecutionResult {
            run,
            energy,
            clock_hz: self.config.clock_hz,
        }
    }

    /// Executes a feed-forward network (ReLU between layers).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or a PE-count mismatch.
    pub fn run_network(&self, layers: &[&EncodedLayer], input: &[f32]) -> NetworkResult {
        for l in layers {
            assert_eq!(
                l.num_pes(),
                self.config.num_pes,
                "layer compressed for a different PE count"
            );
        }
        let run = simulate_network(layers, input, &self.config.sim_config());
        let energy = EnergyReport::price(&activity_from_stats(&run.total), &self.config.pe_model());
        NetworkResult {
            run,
            energy,
            clock_hz: self.config.clock_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_nn::zoo::Benchmark;

    fn small_engine() -> (Engine, eie_nn::zoo::BenchLayer) {
        let engine = Engine::new(EieConfig::default().with_num_pes(4));
        let layer = Benchmark::Alex7.generate_scaled(1, 32);
        (engine, layer)
    }

    #[test]
    fn builder_chains() {
        let cfg = EieConfig::default()
            .with_num_pes(128)
            .with_fifo_depth(4)
            .with_spmat_width(256)
            .with_clock_hz(1.2e9);
        assert_eq!(cfg.num_pes, 128);
        assert_eq!(cfg.fifo_depth, 4);
        assert_eq!(cfg.spmat_width_bits, 256);
        assert_eq!(cfg.clock_hz, 1.2e9);
        assert_eq!(cfg.sim_config().fifo_depth, 4);
        assert_eq!(cfg.compress_config().num_pes, 128);
        assert_eq!(cfg.pe_model().spmat_width_bits, 256);
    }

    #[test]
    fn compress_then_run_produces_consistent_result() {
        let (engine, layer) = small_engine();
        let enc = engine.compress(&layer.weights);
        let acts = layer.sample_activations(3);
        let result = engine.run_layer(&enc, &acts);
        assert_eq!(result.run.outputs.len(), layer.weights.rows());
        assert!(result.time_us() > 0.0);
        assert!(result.theoretical_time_us() <= result.time_us());
        assert!(result.energy.total_nj() > 0.0);
        assert!(result.frames_per_second() > 0.0);
    }

    #[test]
    fn activity_conversion_sums_pe_counters() {
        let (engine, layer) = small_engine();
        let enc = engine.compress(&layer.weights);
        let result = engine.run_layer(&enc, &layer.sample_activations(1));
        let act = activity_from_stats(&result.run.stats);
        assert_eq!(act.num_pes, 4);
        assert_eq!(act.macs, result.run.stats.total_macs());
        assert!(act.spmat_row_reads > 0);
        assert!(act.dest_writes >= act.macs); // every MAC writes
    }

    #[test]
    fn faster_clock_is_faster_wall_clock() {
        let (_, layer) = small_engine();
        let slow = Engine::new(EieConfig::default().with_num_pes(4).with_clock_hz(800e6));
        let fast = Engine::new(EieConfig::default().with_num_pes(4).with_clock_hz(1.6e9));
        let acts = layer.sample_activations(9);
        let enc = slow.compress(&layer.weights);
        let t_slow = slow.run_layer(&enc, &acts).time_us();
        let t_fast = fast.run_layer(&enc, &acts).time_us();
        assert!((t_slow / t_fast - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different PE count")]
    fn rejects_pe_count_mismatch() {
        let (engine, layer) = small_engine();
        let other = Engine::new(EieConfig::default().with_num_pes(8));
        let enc = other.compress(&layer.weights);
        let _ = engine.run_layer(&enc, &layer.sample_activations(1));
    }

    #[test]
    fn network_result_times_accumulate() {
        let engine = Engine::new(EieConfig::default().with_num_pes(2));
        let w1 = eie_nn::zoo::random_sparse(32, 24, 0.3, 1);
        let w2 = eie_nn::zoo::random_sparse(16, 32, 0.3, 2);
        let l1 = engine.compress(&w1);
        let l2 = engine.compress(&w2);
        let input: Vec<f32> = (0..24).map(|i| (i % 3) as f32).collect();
        let net = engine.run_network(&[&l1, &l2], &input);
        assert_eq!(net.run.outputs.len(), 16);
        let sum_us: f64 = net
            .run
            .layers
            .iter()
            .map(|l| l.stats.total_cycles as f64 / 800e6 * 1e6)
            .sum();
        assert!((net.time_us() - sum_us).abs() < 1e-9);
    }
}
