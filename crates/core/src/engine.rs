//! The engine: configure → compress → execute → report.
//!
//! The execution entry points that used to live here
//! (`run_layer`/`run_network`/`run_batch`/`run_network_batch`) are
//! deprecated thin shims now: the single inference surface is
//! [`CompiledModel::infer`](crate::CompiledModel::infer) →
//! [`JobResult`](crate::JobResult).

use std::fmt;
use std::sync::{Arc, OnceLock};

use eie_compress::EncodedLayer;
use eie_energy::{EnergyReport, LayerActivity};
use eie_nn::CsrMatrix;
use eie_sim::{simulate, simulate_network, LayerRun, NetworkRun, SimStats};

use crate::backend::{Backend, BackendKind};
use crate::{BatchResult, EieConfig};

/// Converts simulator statistics into the energy model's activity counts.
pub fn activity_from_stats(stats: &SimStats) -> LayerActivity {
    LayerActivity {
        cycles: stats.total_cycles,
        num_pes: stats.num_pes(),
        spmat_row_reads: stats.spmat_row_reads(),
        ptr_bank_reads: stats.ptr_bank_reads(),
        macs: stats.total_macs(),
        dest_reads: stats.pe.iter().map(|p| p.dest_reads).sum(),
        dest_writes: stats.pe.iter().map(|p| p.dest_writes).sum(),
        queue_pushes: stats.pe.iter().map(|p| p.queue_pushes).sum(),
        queue_pops: stats.pe.iter().map(|p| p.queue_pops).sum(),
        output_writes: stats.pe.iter().map(|p| p.output_writes).sum(),
        input_reads: stats.broadcasts,
    }
}

/// Cycle→wall-clock timing math shared by [`ExecutionResult`] and
/// [`NetworkResult`] (one inference = one frame in both cases).
#[derive(Debug, Clone, Copy)]
struct CycleTiming {
    cycles: u64,
    theoretical_cycles: u64,
    clock_hz: f64,
}

impl CycleTiming {
    fn of(stats: &SimStats, clock_hz: f64) -> Self {
        Self {
            cycles: stats.total_cycles,
            theoretical_cycles: stats.theoretical_cycles(),
            clock_hz,
        }
    }

    fn time_us(self) -> f64 {
        self.cycles as f64 / self.clock_hz * 1e6
    }

    fn theoretical_time_us(self) -> f64 {
        self.theoretical_cycles as f64 / self.clock_hz * 1e6
    }

    fn frames_per_second(self) -> f64 {
        1e6 / self.time_us()
    }
}

/// Result of executing one layer on the simulated accelerator.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Outputs and cycle statistics from the simulator.
    pub run: LayerRun,
    /// Activity-priced energy report.
    pub energy: EnergyReport,
    /// Clock the run was timed at, Hz.
    pub clock_hz: f64,
}

impl ExecutionResult {
    fn timing(&self) -> CycleTiming {
        CycleTiming::of(&self.run.stats, self.clock_hz)
    }

    /// Wall-clock time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.timing().time_us()
    }

    /// The theoretical (perfectly balanced, stall-free) time, µs —
    /// Table IV's "EIE Theoretical Time" row.
    pub fn theoretical_time_us(&self) -> f64 {
        self.timing().theoretical_time_us()
    }

    /// Inference throughput if this layer ran back-to-back, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        self.timing().frames_per_second()
    }

    /// Sustained GOP/s on the compressed workload.
    pub fn gops(&self) -> f64 {
        self.run.stats.gops_at(self.clock_hz)
    }

    /// Average power over the run, W.
    pub fn average_power_w(&self) -> f64 {
        self.energy.average_power_w()
    }
}

impl fmt::Display for ExecutionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} µs ({:.1} GOP/s, {:.2} µJ, balance {:.0}%)",
            self.time_us(),
            self.gops(),
            self.energy.total_uj(),
            self.run.stats.load_balance_efficiency() * 100.0
        )
    }
}

/// Result of executing a multi-layer network.
#[derive(Debug, Clone)]
pub struct NetworkResult {
    /// The simulator's per-layer and merged results.
    pub run: NetworkRun,
    /// Energy priced over the merged activity.
    pub energy: EnergyReport,
    /// Clock the run was timed at, Hz.
    pub clock_hz: f64,
}

impl NetworkResult {
    fn timing(&self) -> CycleTiming {
        CycleTiming::of(&self.run.total, self.clock_hz)
    }

    /// End-to-end time, µs.
    pub fn time_us(&self) -> f64 {
        self.timing().time_us()
    }

    /// The theoretical (perfectly balanced, stall-free) end-to-end time,
    /// µs — the network analogue of Table IV's theoretical row.
    pub fn theoretical_time_us(&self) -> f64 {
        self.timing().theoretical_time_us()
    }

    /// Inference throughput if the network ran back-to-back, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        self.timing().frames_per_second()
    }
}

impl fmt::Display for NetworkResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layers in {:.2} µs ({:.0} frames/s, {:.2} µJ)",
            self.run.layers.len(),
            self.time_us(),
            self.frames_per_second(),
            self.energy.total_uj()
        )
    }
}

/// The accelerator engine — the legacy façade over configuration and
/// execution, kept for source compatibility.
///
/// Every execution method on it is `#[deprecated]`: build a
/// [`CompiledModel`](crate::CompiledModel) and use
/// [`CompiledModel::infer`](crate::CompiledModel::infer) instead (one
/// builder-style job for single layers, networks, and batches on any
/// backend). The batched entry points ([`Engine::run_batch`],
/// [`Engine::run_network_batch`]) delegate to the same execution core
/// as the inference surface; [`Engine::run_layer`] /
/// [`Engine::run_network`] still drive the cycle simulator directly
/// because their [`ExecutionResult`] / [`NetworkResult`] shapes carry
/// per-layer `LayerRun`s the unified [`JobResult`](crate::JobResult)
/// intentionally replaces — their outputs, timing and energy are
/// pinned to the job surface by parity tests. The engine remains
/// useful only as a `(config, backend)` pair holder for code that
/// predates the redesign.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EieConfig,
    backend: BackendKind,
    /// The instantiated backend behind the deprecated batch shims,
    /// built on first use and reused for the engine's lifetime — a
    /// legacy caller looping `run_batch` keeps a warm `NativeCpu`
    /// (plan cache, worker pool, scratch) instead of paying a fresh
    /// plan build + pool spawn per call. Safe to cache: `config` and
    /// `backend` are fixed at construction.
    shim_engine: OnceLock<Arc<dyn Backend>>,
}

impl Engine {
    /// Creates an engine with the given configuration and the default
    /// (cycle-accurate) backend.
    pub fn new(config: EieConfig) -> Self {
        Self {
            config,
            backend: BackendKind::default(),
            shim_engine: OnceLock::new(),
        }
    }

    /// Creates an engine that runs batches on the given backend.
    pub fn with_backend(config: EieConfig, backend: BackendKind) -> Self {
        Self {
            config,
            backend,
            shim_engine: OnceLock::new(),
        }
    }

    /// The cached backend instance the deprecated batch shims execute
    /// on (instantiated once per engine).
    fn shim_backend(&self) -> &Arc<dyn Backend> {
        self.shim_engine
            .get_or_init(|| Arc::from(self.backend.instantiate(&self.config)))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EieConfig {
        &self.config
    }

    /// Which backend batched runs dispatch to.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// Instantiates the engine's configured backend.
    pub fn backend(&self) -> Box<dyn Backend> {
        self.backend.instantiate(&self.config)
    }

    /// Compresses a pruned layer for this engine's PE array
    /// (k-means weight sharing + interleaved CSC, paper §III).
    ///
    /// Deprecated thin shim: the engine no longer owns a compression
    /// path. Use the unified pipeline ([`EieConfig::pipeline`]) or
    /// compile a whole-model artifact with
    /// [`CompiledModel`](crate::CompiledModel).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no non-zeros.
    #[deprecated(
        since = "0.1.0",
        note = "use EieConfig::pipeline().compile_matrix(..) or CompiledModel::compile"
    )]
    pub fn compress(&self, weights: &CsrMatrix) -> EncodedLayer {
        self.config.pipeline().compile_matrix(weights)
    }

    fn check_layer(&self, layer: &EncodedLayer) {
        assert_eq!(
            layer.num_pes(),
            self.config.num_pes,
            "layer compressed for a different PE count"
        );
    }

    /// Executes one layer (raw M×V) on the cycle-accurate model and
    /// prices its energy.
    ///
    /// Deprecated thin shim over the cycle simulator, kept only for the
    /// per-layer [`ExecutionResult`] shape. Use
    /// [`CompiledModel::infer`](crate::CompiledModel::infer) with
    /// [`BackendKind::CycleAccurate`]: `model.infer(backend).layer(i)
    /// .submit_one(acts)` returns the same outputs, statistics and
    /// energy through [`JobResult`](crate::JobResult).
    ///
    /// # Panics
    ///
    /// Panics if the layer was compressed for a different PE count or the
    /// activation length mismatches.
    #[deprecated(
        since = "0.1.0",
        note = "use CompiledModel::infer(BackendKind::CycleAccurate).layer(i).submit_one(acts)"
    )]
    pub fn run_layer(&self, layer: &EncodedLayer, acts: &[f32]) -> ExecutionResult {
        self.check_layer(layer);
        let run = simulate(layer, acts, &self.config.sim_config());
        let energy = EnergyReport::price(&activity_from_stats(&run.stats), &self.config.pe_model());
        ExecutionResult {
            run,
            energy,
            clock_hz: self.config.clock_hz,
        }
    }

    /// Executes a feed-forward network (ReLU between layers) on the
    /// cycle-accurate model.
    ///
    /// Deprecated thin shim: use
    /// [`CompiledModel::infer`](crate::CompiledModel::infer) —
    /// `model.infer(BackendKind::CycleAccurate).submit_one(input)` runs
    /// the same chain and exposes the per-layer breakdown via
    /// [`JobResult::layer_phases`](crate::JobResult::layer_phases).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or a PE-count mismatch.
    #[deprecated(
        since = "0.1.0",
        note = "use CompiledModel::infer(BackendKind::CycleAccurate).submit_one(input)"
    )]
    pub fn run_network(&self, layers: &[&EncodedLayer], input: &[f32]) -> NetworkResult {
        for l in layers {
            self.check_layer(l);
        }
        let run = simulate_network(layers, input, &self.config.sim_config());
        let energy = EnergyReport::price(&activity_from_stats(&run.total), &self.config.pe_model());
        NetworkResult {
            run,
            energy,
            clock_hz: self.config.clock_hz,
        }
    }

    /// Executes a batch of activation vectors against one layer (raw
    /// M×V) on the engine's configured backend.
    ///
    /// Deprecated thin shim over the unified execution core: identical
    /// to `model.infer(kind).layer(i).submit(batch).batch` on a
    /// [`CompiledModel`](crate::CompiledModel).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, the layer was compressed for a
    /// different PE count, or an item's length mismatches.
    #[deprecated(
        since = "0.1.0",
        note = "use CompiledModel::infer(kind).layer(i).submit(batch)"
    )]
    pub fn run_batch(&self, layer: &EncodedLayer, batch: &[Vec<f32>]) -> BatchResult {
        assert!(!batch.is_empty(), "batch must be non-empty");
        let planned = [crate::PlannedLayer::unplanned(layer)];
        crate::infer::execute_stack(
            &self.config,
            self.backend,
            self.shim_backend().as_ref(),
            &planned,
            batch,
            true,
        )
        .batch
    }

    /// Executes a batch of inputs through a feed-forward network (ReLU
    /// between layers) on the engine's configured backend.
    ///
    /// Deprecated thin shim over the unified execution core: identical
    /// to `model.infer(kind).submit(batch).batch` on a
    /// [`CompiledModel`](crate::CompiledModel) of the same layers.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, `layers` is empty, any layer was
    /// compressed for a different PE count, or dimensions mismatch.
    #[deprecated(since = "0.1.0", note = "use CompiledModel::infer(kind).submit(batch)")]
    pub fn run_network_batch(&self, layers: &[&EncodedLayer], batch: &[Vec<f32>]) -> BatchResult {
        assert!(!layers.is_empty(), "network needs at least one layer");
        assert!(!batch.is_empty(), "batch must be non-empty");
        let planned: Vec<crate::PlannedLayer<'_>> = layers
            .iter()
            .map(|layer| crate::PlannedLayer::unplanned(layer))
            .collect();
        crate::infer::execute_stack(
            &self.config,
            self.backend,
            self.shim_backend().as_ref(),
            &planned,
            batch,
            true,
        )
        .batch
    }
}

#[cfg(test)]
mod tests {
    // The legacy entry points must stay behaviourally identical to the
    // unified inference surface until they are removed; these tests
    // exercise them (and their parity with it) deliberately.
    #![allow(deprecated)]

    use super::*;
    use crate::{BackendKind, CompiledModel};
    use eie_nn::zoo::Benchmark;

    fn small_engine() -> (Engine, eie_nn::zoo::BenchLayer) {
        let engine = Engine::new(EieConfig::default().with_num_pes(4));
        let layer = Benchmark::Alex7.generate_scaled(1, 32);
        (engine, layer)
    }

    #[test]
    fn compress_then_run_produces_consistent_result() {
        let (engine, layer) = small_engine();
        let enc = engine.config().pipeline().compile_matrix(&layer.weights);
        let acts = layer.sample_activations(3);
        let result = engine.run_layer(&enc, &acts);
        assert_eq!(result.run.outputs.len(), layer.weights.rows());
        assert!(result.time_us() > 0.0);
        assert!(result.theoretical_time_us() <= result.time_us());
        assert!(result.energy.total_nj() > 0.0);
        assert!(result.frames_per_second() > 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_compress_shim_matches_the_pipeline() {
        // The legacy entry point must stay a bit-exact alias of the
        // unified pipeline until it is removed.
        let (engine, layer) = small_engine();
        assert_eq!(
            engine.compress(&layer.weights),
            engine.config().pipeline().compile_matrix(&layer.weights)
        );
    }

    #[test]
    fn activity_conversion_sums_pe_counters() {
        let (engine, layer) = small_engine();
        let enc = engine.config().pipeline().compile_matrix(&layer.weights);
        let result = engine.run_layer(&enc, &layer.sample_activations(1));
        let act = activity_from_stats(&result.run.stats);
        assert_eq!(act.num_pes, 4);
        assert_eq!(act.macs, result.run.stats.total_macs());
        assert!(act.spmat_row_reads > 0);
        assert!(act.dest_writes >= act.macs); // every MAC writes
    }

    #[test]
    fn faster_clock_is_faster_wall_clock() {
        let (_, layer) = small_engine();
        let slow = Engine::new(EieConfig::default().with_num_pes(4).with_clock_hz(800e6));
        let fast = Engine::new(EieConfig::default().with_num_pes(4).with_clock_hz(1.6e9));
        let acts = layer.sample_activations(9);
        let enc = slow.config().pipeline().compile_matrix(&layer.weights);
        let t_slow = slow.run_layer(&enc, &acts).time_us();
        let t_fast = fast.run_layer(&enc, &acts).time_us();
        assert!((t_slow / t_fast - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different PE count")]
    fn rejects_pe_count_mismatch() {
        let (engine, layer) = small_engine();
        let other = Engine::new(EieConfig::default().with_num_pes(8));
        let enc = other.config().pipeline().compile_matrix(&layer.weights);
        let _ = engine.run_layer(&enc, &layer.sample_activations(1));
    }

    #[test]
    fn network_result_times_accumulate() {
        let engine = Engine::new(EieConfig::default().with_num_pes(2));
        let w1 = eie_nn::zoo::random_sparse(32, 24, 0.3, 1);
        let w2 = eie_nn::zoo::random_sparse(16, 32, 0.3, 2);
        let l1 = engine.config().pipeline().compile_matrix(&w1);
        let l2 = engine.config().pipeline().compile_matrix(&w2);
        let input: Vec<f32> = (0..24).map(|i| (i % 3) as f32).collect();
        let net = engine.run_network(&[&l1, &l2], &input);
        assert_eq!(net.run.outputs.len(), 16);
        let sum_us: f64 = net
            .run
            .layers
            .iter()
            .map(|l| l.stats.total_cycles as f64 / 800e6 * 1e6)
            .sum();
        assert!((net.time_us() - sum_us).abs() < 1e-9);
    }

    #[test]
    fn network_result_has_execution_result_parity() {
        let engine = Engine::new(EieConfig::default().with_num_pes(2));
        let w = eie_nn::zoo::random_sparse(24, 24, 0.3, 7);
        let l = engine.config().pipeline().compile_matrix(&w);
        let input: Vec<f32> = (0..24).map(|i| (i % 4) as f32 * 0.5).collect();
        let net = engine.run_network(&[&l], &input);
        let single = engine.run_layer(&l, &input);
        // One-layer network timing equals the layer result's timing.
        assert!((net.time_us() - single.time_us()).abs() < 1e-9);
        assert!((net.theoretical_time_us() - single.theoretical_time_us()).abs() < 1e-9);
        assert!((net.frames_per_second() - single.frames_per_second()).abs() < 1e-6);
        assert!(net.theoretical_time_us() <= net.time_us());
        let display = net.to_string();
        assert!(
            display.contains("frames/s") && display.contains("µJ"),
            "{display}"
        );
    }

    #[test]
    fn cycle_batch_matches_per_item_runs_and_prices_energy() {
        let (engine, layer) = small_engine();
        let enc = engine.config().pipeline().compile_matrix(&layer.weights);
        let batch = layer.sample_activation_batch(5, 3);
        let result = engine.run_batch(&enc, &batch);
        assert_eq!(result.backend, "cycle-accurate");
        assert_eq!(result.batch_size(), 3);
        let mut expected_wall = 0.0;
        let mut expected_uj = 0.0;
        for (i, item) in batch.iter().enumerate() {
            let single = engine.run_layer(&enc, item);
            assert_eq!(result.outputs(i), &single.run.outputs[..]);
            assert!((result.items[i].latency_us() - single.time_us()).abs() < 1e-9);
            expected_wall += single.time_us();
            expected_uj += single.energy.total_uj();
        }
        assert!((result.wall_time_us() - expected_wall).abs() < 1e-9);
        let uj = result
            .total_energy_uj()
            .expect("cycle backend prices energy");
        // Energy pricing is linear in activity, so the merged-batch price
        // equals the sum of per-item prices.
        assert!((uj - expected_uj).abs() / expected_uj < 1e-9);
    }

    #[test]
    fn host_backends_agree_with_cycle_batch_outputs() {
        let (engine, layer) = small_engine();
        let enc = engine.config().pipeline().compile_matrix(&layer.weights);
        let batch = layer.sample_activation_batch(11, 4);
        let cycle = engine.run_batch(&enc, &batch);
        for kind in [BackendKind::Functional, BackendKind::NativeCpu(2)] {
            let host = Engine::with_backend(*engine.config(), kind).run_batch(&enc, &batch);
            assert!(host.total_energy_uj().is_none());
            assert!(host.wall_s >= 0.0);
            for i in 0..batch.len() {
                assert_eq!(host.outputs(i), cycle.outputs(i), "{kind} diverged");
            }
        }
    }

    #[test]
    fn network_batch_chains_layers_per_item() {
        let engine = Engine::with_backend(
            EieConfig::default().with_num_pes(2),
            BackendKind::NativeCpu(2),
        );
        let w1 = eie_nn::zoo::random_sparse(32, 24, 0.3, 1);
        let w2 = eie_nn::zoo::random_sparse(16, 32, 0.3, 2);
        let l1 = engine.config().pipeline().compile_matrix(&w1);
        let l2 = engine.config().pipeline().compile_matrix(&w2);
        let batch: Vec<Vec<f32>> = (0..5)
            .map(|s| (0..24).map(|i| ((i + s) % 3) as f32).collect())
            .collect();
        let result = engine.run_network_batch(&[&l1, &l2], &batch);
        assert_eq!(result.batch_size(), 5);
        let reference = Engine::new(*engine.config());
        for (i, item) in batch.iter().enumerate() {
            let net = reference.run_network(&[&l1, &l2], item);
            assert_eq!(result.outputs(i), &net.run.outputs[..]);
        }
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn rejects_empty_batch() {
        let (engine, layer) = small_engine();
        let enc = engine.config().pipeline().compile_matrix(&layer.weights);
        let _ = engine.run_batch(&enc, &[]);
    }

    #[test]
    fn deprecated_run_shims_match_the_inference_surface() {
        // The four legacy entry points are thin shims over the same
        // execution core as `CompiledModel::infer`; outputs, timing and
        // energy must agree exactly.
        let (engine, layer) = small_engine();
        let model = CompiledModel::compile_layer(*engine.config(), &layer.weights);
        let batch = layer.sample_activation_batch(5, 3);

        let single = engine.run_layer(model.layer(0), &batch[0]);
        let job = model
            .infer(BackendKind::CycleAccurate)
            .submit_one(&batch[0]);
        assert_eq!(&single.run.outputs[..], job.outputs(0));
        assert!((single.time_us() - job.time_us()).abs() < 1e-9);
        assert!(
            (single.energy.total_uj() - job.energy().unwrap().total_uj()).abs() < 1e-12,
            "shim energy diverged from the job surface"
        );

        let legacy = engine.run_batch(model.layer(0), &batch);
        let batched = model.infer(BackendKind::CycleAccurate).submit(&batch);
        for i in 0..batch.len() {
            assert_eq!(legacy.outputs(i), batched.outputs(i));
        }
        assert!((legacy.wall_s - batched.batch.wall_s).abs() < 1e-15);
    }

    #[test]
    fn deprecated_network_shims_match_the_inference_surface() {
        // run_network keeps its own simulate_network call for the
        // per-layer NetworkResult shape; outputs, per-layer stats,
        // timing and energy must still agree exactly with a whole-stack
        // inference job so the two paths cannot drift apart.
        let engine = Engine::new(EieConfig::default().with_num_pes(2));
        let w1 = eie_nn::zoo::random_sparse(32, 24, 0.3, 31);
        let w2 = eie_nn::zoo::random_sparse(16, 32, 0.3, 32);
        let model = CompiledModel::compile(*engine.config(), &[&w1, &w2]);
        let batch: Vec<Vec<f32>> = (0..3)
            .map(|s| (0..24).map(|i| ((i + s) % 3) as f32 * 0.5).collect())
            .collect();

        let net = engine.run_network(&model.layer_refs(), &batch[0]);
        let job = model
            .infer(BackendKind::CycleAccurate)
            .submit_one(&batch[0]);
        assert_eq!(&net.run.outputs[..], job.outputs(0));
        assert!((net.time_us() - job.time_us()).abs() < 1e-12);
        for (run, phase) in net.run.layers.iter().zip(job.layer_phases()) {
            assert_eq!(Some(&run.stats), phase.stats.as_ref());
        }
        assert!(
            (net.energy.total_uj() - job.energy().unwrap().total_uj()).abs() < 1e-12,
            "network shim energy diverged from the job surface"
        );

        let legacy = engine.run_network_batch(&model.layer_refs(), &batch);
        let batched = model.infer(BackendKind::CycleAccurate).submit(&batch);
        for i in 0..batch.len() {
            assert_eq!(legacy.outputs(i), batched.outputs(i));
        }
        assert!((legacy.wall_s - batched.batch.wall_s).abs() < 1e-15);
    }
}
