//! # eie-core — the public API of the EIE reproduction
//!
//! This crate ties the substrates together into the workflow a user of
//! the accelerator would follow:
//!
//! 1. **Configure** the accelerator with [`EieConfig`] (PE count, FIFO
//!    depth, SRAM width, clock — the design parameters of paper §IV/§VI),
//! 2. **Compile** pruned weights through the unified pipeline
//!    ([`EieConfig::pipeline`], or [`CompiledModel::compile`] for a
//!    whole model — weight sharing + interleaved CSC, paper §III) and
//!    optionally **deploy** the result as a versioned `.eie` artifact
//!    ([`CompiledModel::save`] / [`CompiledModel::load`]),
//! 3. **Execute** it cycle-accurately with [`Engine::run_layer`] /
//!    [`Engine::run_network`], obtaining outputs, cycle statistics,
//!    wall-clock time and an activity-based energy report,
//! 4. **Serve** batches on a pluggable [`Backend`] — the cycle model,
//!    the bit-exact [`Functional`] golden model, or the host-speed
//!    multi-threaded [`NativeCpu`] kernel — via [`Engine::run_batch`] /
//!    [`Engine::run_network_batch`] or a [`CompiledModel`], obtaining a
//!    [`BatchResult`] (latency distribution, frames/s, energy).
//!
//! The sub-crates are re-exported under [`compress`], [`nn`], [`sim`],
//! [`energy`], [`baselines`] and [`fixed`] for direct access; the
//! [`prelude`] exposes the names almost every user needs.
//!
//! # Example
//!
//! ```
//! use eie_core::prelude::*;
//!
//! // AlexNet FC7 shape at 1/32 scale, Table III densities.
//! let layer = Benchmark::Alex7.generate_scaled(1, 32);
//! let config = EieConfig::default().with_num_pes(4);
//! let compressed = config.pipeline().compile_matrix(&layer.weights);
//! let engine = Engine::new(config);
//! let result = engine.run_layer(&compressed, &layer.sample_activations(7));
//! assert!(result.time_us() > 0.0);
//! assert!(result.energy.total_uj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
pub mod backend;
mod batch;
mod benchmarks;
mod config;
mod engine;
pub mod prelude;

pub use artifact::{ModelArtifactError, MODEL_EXTENSION, MODEL_MAGIC, MODEL_VERSION};
pub use backend::{
    Backend, BackendKind, BackendRun, CompiledModel, CycleAccurate, Functional, NativeCpu,
};
pub use batch::BatchResult;
pub use benchmarks::BenchmarkInstance;
pub use config::EieConfig;
pub use engine::{activity_from_stats, Engine, ExecutionResult, NetworkResult};

/// The Deep Compression pipeline (re-export of `eie-compress`).
pub mod compress {
    pub use eie_compress::*;
}

/// The NN substrate and benchmark zoo (re-export of `eie-nn`).
pub mod nn {
    pub use eie_nn::*;
}

/// The cycle-accurate simulator (re-export of `eie-sim`).
pub mod sim {
    pub use eie_sim::*;
}

/// Energy/area/power models (re-export of `eie-energy`).
pub mod energy {
    pub use eie_energy::*;
}

/// CPU baselines (re-export of `eie-baselines`).
pub mod baselines {
    pub use eie_baselines::*;
}

/// Fixed-point arithmetic (re-export of `eie-fixed`).
pub mod fixed {
    pub use eie_fixed::*;
}
