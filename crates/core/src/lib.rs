//! # eie-core — the public API of the EIE reproduction
//!
//! This crate ties the substrates together into the workflow a user of
//! the accelerator would follow:
//!
//! 1. **Configure** the accelerator with [`EieConfig`] (PE count, FIFO
//!    depth, SRAM width, clock — the design parameters of paper §IV/§VI),
//! 2. **Compile** pruned weights through the unified pipeline
//!    ([`EieConfig::pipeline`], or [`CompiledModel::compile`] for a
//!    whole model — weight sharing + interleaved CSC, paper §III) and
//!    optionally **deploy** the result as a versioned `.eie` artifact
//!    ([`CompiledModel::save`] / [`CompiledModel::load`]),
//! 3. **Execute** through the single inference surface: build an
//!    [`InferenceJob`] with [`CompiledModel::infer`] (pick a
//!    [`Backend`] — the cycle model for hardware numbers, the bit-exact
//!    [`Functional`] golden model for verification, the host-speed
//!    multi-threaded [`NativeCpu`] kernel for serving), scope it
//!    ([`InferenceJob::layers`], [`InferenceJob::config`],
//!    [`InferenceJob::energy`]) and [`submit`](InferenceJob::submit) a
//!    batch, obtaining a [`JobResult`] (outputs, latency distribution,
//!    per-layer statistics, energy),
//! 4. **Serve** the same artifact under live traffic with the
//!    `eie-serve` crate's `ModelServer` (request queue, dynamic
//!    micro-batching, worker threads — one [`Backend`] each).
//!
//! The sub-crates are re-exported under [`compress`], [`nn`], [`sim`],
//! [`energy`], [`baselines`] and [`fixed`] for direct access; the
//! [`prelude`] exposes the names almost every user needs.
//!
//! # Example
//!
//! ```
//! use eie_core::prelude::*;
//!
//! // AlexNet FC7 shape at 1/32 scale, Table III densities.
//! let layer = Benchmark::Alex7.generate_scaled(1, 32);
//! let config = EieConfig::default().with_num_pes(4);
//! let model = CompiledModel::compile_layer(config, &layer.weights);
//! let result = model
//!     .infer(BackendKind::CycleAccurate)
//!     .submit_one(&layer.sample_activations(7));
//! assert!(result.time_us() > 0.0);
//! assert!(result.energy().unwrap().total_uj() > 0.0);
//! ```

// Unsafe code is forbidden except for the one audited `core::arch`
// intrinsics module behind the `simd` feature (backend::native::simd),
// which carries its own `#[allow(unsafe_code)]` — everything else in
// the crate still refuses to compile with unsafe under `deny`.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod artifact;
pub mod backend;
mod batch;
mod benchmarks;
mod config;
mod engine;
pub mod infer;
pub mod pipeline;
pub mod prelude;

pub use artifact::{ModelArtifactError, MODEL_EXTENSION, MODEL_MAGIC, MODEL_VERSION};
pub use backend::{
    Backend, BackendKind, BackendRun, CompiledModel, CycleAccurate, Functional, NativeCpu,
    PlannedLayer,
};
pub use batch::{percentile, BatchResult};
pub use benchmarks::BenchmarkInstance;
pub use config::EieConfig;
pub use engine::{activity_from_stats, Engine, ExecutionResult, NetworkResult};
pub use infer::{run_stack_planned, run_stack_quantized, InferenceJob, JobResult, LayerPhase};
pub use pipeline::{run_stack_pipelined, PipelineRun, PipelinedStack, QUEUE_DEPTH};

// The execution-layout types are first-class core concepts (the
// topology knob on `InferenceJob` and `PipelinedStack`), so they're
// re-exported at the root alongside the executors that consume them.
pub use eie_compress::{ShardPlan, Topology};

/// The Deep Compression pipeline (re-export of `eie-compress`).
pub mod compress {
    pub use eie_compress::*;
}

/// The NN substrate and benchmark zoo (re-export of `eie-nn`).
pub mod nn {
    pub use eie_nn::*;
}

/// The cycle-accurate simulator (re-export of `eie-sim`).
pub mod sim {
    pub use eie_sim::*;
}

/// Energy/area/power models (re-export of `eie-energy`).
pub mod energy {
    pub use eie_energy::*;
}

/// CPU baselines (re-export of `eie-baselines`).
pub mod baselines {
    pub use eie_baselines::*;
}

/// Fixed-point arithmetic (re-export of `eie-fixed`).
pub mod fixed {
    pub use eie_fixed::*;
}
