//! The single inference surface: build an [`InferenceJob`], submit
//! inputs, read a [`JobResult`].
//!
//! EIE's evaluation runs one compressed artifact on three engines; this
//! module gives all of them one request/response lifecycle:
//!
//! ```
//! use eie_core::{BackendKind, CompiledModel, EieConfig};
//! use eie_core::nn::zoo::random_sparse;
//!
//! let w1 = random_sparse(32, 24, 0.2, 1);
//! let w2 = random_sparse(16, 32, 0.2, 2);
//! let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2]);
//!
//! // One surface for every execution mode: pick a backend, scope the
//! // job, submit a batch.
//! let batch = vec![vec![0.5f32; 24]; 3];
//! let job = model.infer(BackendKind::CycleAccurate).energy(true).submit(&batch);
//! assert_eq!(job.batch_size(), 3);
//! assert!(job.energy().is_some());
//!
//! // A sub-stack of the model (here: just the first layer, raw M×V).
//! let first = model.infer(BackendKind::Functional).layers(0..1).submit_one(&vec![0.5; 24]);
//! assert_eq!(first.outputs(0).len(), 32);
//! ```
//!
//! The job executes the selected layers **layer-at-a-time over the whole
//! batch** (ReLU between selected layers, none after the last), so every
//! backend's batched fast path stays in play while outputs remain
//! bit-identical to a one-at-a-time functional run — the invariant the
//! serving stack ([`eie-serve`]) builds on.
//!
//! [`eie-serve`]: https://github.com/eie-rs/eie

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use eie_compress::{EncodedLayer, LaneTile, LayerPlan, Topology};
use eie_energy::EnergyReport;
use eie_fixed::Q8p8;
use eie_sim::SimStats;

use crate::backend::{Backend, BackendKind, BackendRun, CompiledModel, PlannedLayer};
use crate::engine::activity_from_stats;
use crate::pipeline::PipelinedStack;
use crate::{BatchResult, EieConfig};

impl CompiledModel {
    /// Starts an inference job on this model for the given backend — the
    /// single entry point that replaced the four `Engine::run_*`
    /// methods.
    ///
    /// The job defaults to the whole layer stack, the model's compiled
    /// configuration, and energy pricing on (a no-op on backends without
    /// activity statistics); see the [`InferenceJob`] builders.
    pub fn infer(&self, backend: BackendKind) -> InferenceJob<'_> {
        InferenceJob {
            model: self,
            backend,
            config: *self.config(),
            first: 0,
            end: self.num_layers(),
            price_energy: true,
            topology: None,
            lane_tile: None,
            custom_plans: OnceLock::new(),
            engine: OnceLock::new(),
        }
    }
}

/// A configured-but-not-yet-submitted inference request against a
/// [`CompiledModel`]: which backend executes, which contiguous slice of
/// the layer stack runs, under which execution configuration, and
/// whether activity statistics are priced into an energy report.
///
/// Built by [`CompiledModel::infer`]; consumed by
/// [`InferenceJob::submit`] / [`InferenceJob::submit_one`].
#[derive(Debug, Clone)]
pub struct InferenceJob<'m> {
    model: &'m CompiledModel,
    backend: BackendKind,
    config: EieConfig,
    first: usize,
    end: usize,
    price_energy: bool,
    /// Sharded/pipelined execution layout ([`InferenceJob::topology`]);
    /// `None` runs the classic single-engine layer-at-a-time loop.
    topology: Option<Topology>,
    /// Per-layer lane-tile override ([`InferenceJob::lane_tile`]);
    /// `None` keeps each plan's auto-selected tile.
    lane_tile: Option<LaneTile>,
    /// Plans rebuilt under a [`LaneTile`] override, built lazily on the
    /// first submit and reused (the model's shared cache keeps its
    /// auto-tiled plans; an override must not clobber them for other
    /// jobs). Cleared whenever the layer range or tile changes.
    custom_plans: OnceLock<Vec<Arc<LayerPlan>>>,
    /// The instantiated backend, built on the first submit and reused
    /// across submits of the same job — a looping caller keeps the
    /// `NativeCpu` engine (worker pool, plan cache, warm scratch) alive
    /// instead of re-spawning it per call, the same warm shape the
    /// serving workers have. Cleared by [`InferenceJob::config`]
    /// (backends capture the configuration at instantiation).
    engine: OnceLock<Arc<dyn Backend>>,
}

impl<'m> InferenceJob<'m> {
    /// Restricts the job to a contiguous sub-range of the model's layer
    /// stack (default: all layers). ReLU applies between *selected*
    /// layers and never after the last, so a single-layer job is a raw
    /// M×V — the old `run_layer` semantics.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn layers<R: RangeBounds<usize>>(mut self, range: R) -> Self {
        let first = match range.start_bound() {
            Bound::Unbounded => 0,
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
        };
        let end = match range.end_bound() {
            Bound::Unbounded => self.model.num_layers(),
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
        };
        assert!(
            first < end && end <= self.model.num_layers(),
            "layer range {first}..{end} invalid for a {}-layer model",
            self.model.num_layers()
        );
        self.first = first;
        self.end = end;
        // Tile-overridden plans are per-range; a new range rebuilds.
        self.custom_plans = OnceLock::new();
        self
    }

    /// Restricts the job to one layer (raw M×V, no ReLU) — shorthand for
    /// `layers(i..=i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn layer(self, i: usize) -> Self {
        self.layers(i..=i)
    }

    /// Overrides the execution configuration (clock, FIFO depth, SRAM
    /// width, ablation switches) without recompiling the artifact — the
    /// design-space-sweep entry point. The PE count must match the
    /// compiled layers; [`InferenceJob::submit`] asserts it.
    pub fn config(mut self, config: EieConfig) -> Self {
        self.config = config;
        // Backends capture the configuration at instantiation; a
        // cached engine built under the old one must not survive.
        self.engine = OnceLock::new();
        self
    }

    /// Enables or disables energy pricing of the run's activity
    /// statistics (default: on). Only the cycle-accurate backend
    /// produces statistics; on other backends this is a no-op and
    /// [`JobResult::energy`] is `None` either way.
    pub fn energy(mut self, price: bool) -> Self {
        self.price_energy = price;
        self
    }

    /// Routes the job through the sharded/pipelined executor
    /// ([`PipelinedStack`]): the selected layers are carved into
    /// `topology.stages()` stages (each with its own row-sharded
    /// engine) and the batch streams between them through bounded
    /// queues. Outputs stay bit-exact with the default path; latency
    /// percentiles become degenerate (the batch completes as a unit)
    /// and no energy report is produced.
    ///
    /// Only meaningful on [`BackendKind::NativeCpu`];
    /// [`InferenceJob::submit`] panics for other backends (the CLI
    /// validates this combination up front).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Overrides every selected layer's lane tile, rebuilding plans
    /// under the given tile instead of using the model's auto-tiled
    /// cache — the sweep knob behind `eie bench --lane-tile`. A no-op
    /// on backends that don't execute plans.
    pub fn lane_tile(mut self, tile: LaneTile) -> Self {
        self.lane_tile = Some(tile);
        self.custom_plans = OnceLock::new();
        self
    }

    /// The backend this job will execute on.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Submits a batch of `f32` input vectors and runs the job to
    /// completion, returning the unified [`JobResult`].
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, an item's length differs from the
    /// first selected layer's input dimension, or the execution
    /// configuration's PE count mismatches the compiled layers.
    pub fn submit(&self, inputs: &[Vec<f32>]) -> JobResult {
        if let Some(topology) = self.topology {
            return self.submit_pipelined(inputs, &topology);
        }
        let backend = self
            .engine
            .get_or_init(|| Arc::from(self.backend.instantiate(&self.config)));
        let layers = self.assemble_layers(backend.wants_plans());
        execute_stack(
            &self.config,
            self.backend,
            backend.as_ref(),
            &layers,
            inputs,
            self.price_energy,
        )
    }

    /// The job's planned-layer list. Plans are fetched (building lazily
    /// into the model's shared cache) only for backends that execute
    /// them; the cycle model, the golden model and the streaming
    /// baseline stream the compressed artifact and would ignore them. A
    /// [`InferenceJob::lane_tile`] override rebuilds the plans under
    /// the requested tile into the job's own cache instead.
    fn assemble_layers(&self, wants_plans: bool) -> Vec<PlannedLayer<'_>> {
        if !wants_plans {
            return self.model.layers()[self.first..self.end]
                .iter()
                .map(PlannedLayer::unplanned)
                .collect();
        }
        match self.lane_tile {
            Some(tile) => {
                let custom = self.custom_plans.get_or_init(|| {
                    self.model.layers()[self.first..self.end]
                        .iter()
                        .map(|layer| Arc::new(LayerPlan::build(layer).with_lane_tile(tile)))
                        .collect()
                });
                custom
                    .iter()
                    .zip(&self.model.layers()[self.first..self.end])
                    .map(|(plan, layer)| PlannedLayer {
                        layer,
                        plan: Some(plan),
                    })
                    .collect()
            }
            None => (self.first..self.end)
                .map(|i| self.model.planned_layer(i))
                .collect(),
        }
    }

    /// The topology-routed submit: quantize, stream the batch through a
    /// [`PipelinedStack`], wrap the result in the unified [`JobResult`]
    /// shape (fused semantics: every item reports the batch's wall
    /// time; no activity statistics, so no energy report).
    fn submit_pipelined(&self, inputs: &[Vec<f32>], topology: &Topology) -> JobResult {
        let threads = match self.backend {
            BackendKind::NativeCpu(t) => t,
            other => panic!("a topology requires the native-cpu backend, not {other}"),
        };
        assert!(!inputs.is_empty(), "batch must be non-empty");
        for i in self.first..self.end {
            assert_eq!(
                self.model.layers()[i].num_pes(),
                self.config.num_pes,
                "layer compressed for a different PE count"
            );
        }
        let layers = self.assemble_layers(true);
        let quantized: Vec<Vec<Q8p8>> = inputs
            .iter()
            .map(|acts| Q8p8::from_f32_slice(acts))
            .collect();
        let stack = PipelinedStack::new(&layers, topology, threads);
        let run = stack.run(&quantized);
        let n = run.outputs.len();
        let amortized_s = run.wall_s / n as f64;
        let items = run
            .outputs
            .into_iter()
            .map(|outputs| BackendRun {
                outputs,
                latency_s: run.wall_s,
                amortized_s,
                stats: None,
            })
            .collect();
        JobResult {
            backend: self.backend,
            clock_hz: self.config.clock_hz,
            batch: BatchResult {
                backend: "native-pipelined",
                items,
                wall_s: run.wall_s,
                energy: None,
            },
            phases: run.phases,
        }
    }

    /// Submits a single input vector — shorthand for a batch of one.
    ///
    /// # Panics
    ///
    /// Same conditions as [`InferenceJob::submit`].
    pub fn submit_one(&self, input: &[f32]) -> JobResult {
        self.submit(std::slice::from_ref(&input.to_vec()))
    }
}

/// Per-layer aggregate of one job: the summed item latencies and the
/// merged activity statistics (cycle-accurate backend only) of one layer
/// of the selected stack, over the whole batch.
#[derive(Debug, Clone)]
pub struct LayerPhase {
    /// Summed per-item time spent in this layer, seconds (modelled time
    /// on the cycle backend, measured host time otherwise).
    pub latency_s: f64,
    /// Activity statistics merged over the batch (cycle backend only).
    pub stats: Option<SimStats>,
}

impl LayerPhase {
    /// Summed per-item time spent in this layer, µs.
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }
}

/// The unified result of one [`InferenceJob`]: per-item outputs and
/// latencies, a per-layer breakdown, and — on the cycle-accurate
/// backend — merged activity statistics priced into an energy report.
///
/// The batched-distribution view (percentiles, frames/s, per-frame cost)
/// lives in the embedded [`BatchResult`]; the accessors here delegate to
/// it so callers need only one type.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Which backend executed the job.
    backend: BackendKind,
    /// Clock the job was timed at, Hz (for cycle → wall conversions).
    clock_hz: f64,
    /// The aggregated batch: per-item runs, wall time, energy.
    pub batch: BatchResult,
    /// Per-layer breakdown of the selected stack, input to output.
    phases: Vec<LayerPhase>,
}

impl JobResult {
    /// Which backend executed the job.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Number of items in the submitted batch.
    pub fn batch_size(&self) -> usize {
        self.batch.batch_size()
    }

    /// Output activations of item `i`, Q8.8.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    pub fn outputs(&self, i: usize) -> &[Q8p8] {
        self.batch.outputs(i)
    }

    /// Output activations of item `i`, converted to `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    pub fn outputs_f32(&self, i: usize) -> Vec<f32> {
        self.batch.outputs(i).iter().map(|v| v.to_f32()).collect()
    }

    /// Item `i`'s end-to-end latency, µs (modelled hardware time on the
    /// cycle backend, measured host time otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    pub fn latency_us(&self, i: usize) -> f64 {
        self.batch.items[i].latency_us()
    }

    /// Item `i`'s amortized per-item cost, µs: fused-batch wall time
    /// divided by the batch size (equal to [`JobResult::latency_us`]
    /// for unfused execution). At batch > 1 the fused native kernel
    /// stamps every item with the batch's wall time, so *latency*
    /// percentiles are degenerate — this is the throughput-style
    /// per-item number.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    pub fn amortized_latency_us(&self, i: usize) -> f64 {
        self.batch.items[i].amortized_us()
    }

    /// Item `i`'s cycle/activity statistics (cycle backend only), merged
    /// over the selected layers.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    pub fn stats(&self, i: usize) -> Option<&SimStats> {
        self.batch.items[i].stats.as_ref()
    }

    /// Activity statistics merged over the whole batch (cycle backend
    /// only).
    pub fn merged_stats(&self) -> Option<SimStats> {
        let mut total: Option<SimStats> = None;
        for item in &self.batch.items {
            match (&mut total, item.stats.as_ref()) {
                (_, None) => return None,
                (None, Some(s)) => total = Some(s.clone()),
                (Some(t), Some(s)) => t.merge(s),
            }
        }
        total
    }

    /// The per-layer breakdown of the selected stack (one entry per
    /// executed layer, input to output).
    pub fn layer_phases(&self) -> &[LayerPhase] {
        &self.phases
    }

    /// Activity statistics of executed layer `li`, merged over the batch
    /// (cycle backend only).
    ///
    /// # Panics
    ///
    /// Panics if `li` is not an executed-layer index.
    pub fn layer_stats(&self, li: usize) -> Option<&SimStats> {
        self.phases[li].stats.as_ref()
    }

    /// Whole-job wall time, µs: the sum of modelled item times on the
    /// cycle backend (the hardware runs items back to back), measured
    /// end-to-end host time otherwise.
    pub fn time_us(&self) -> f64 {
        self.batch.wall_time_us()
    }

    /// The theoretical (perfectly balanced, stall-free) time for the
    /// whole job, µs — Table IV's "EIE Theoretical Time" row (cycle
    /// backend only).
    pub fn theoretical_time_us(&self) -> Option<f64> {
        self.merged_stats()
            .map(|s| s.theoretical_cycles() as f64 / self.clock_hz * 1e6)
    }

    /// Aggregate inference throughput over the batch, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        self.batch.frames_per_second()
    }

    /// Mean per-item latency, µs.
    pub fn mean_latency_us(&self) -> f64 {
        self.batch.mean_latency_us()
    }

    /// Amortized per-frame time, µs (batch wall over batch size).
    pub fn per_frame_us(&self) -> f64 {
        self.batch.per_frame_us()
    }

    /// Median per-item latency, µs.
    pub fn p50(&self) -> f64 {
        self.batch.p50()
    }

    /// 95th-percentile per-item latency, µs.
    pub fn p95(&self) -> f64 {
        self.batch.p95()
    }

    /// 99th-percentile per-item latency, µs.
    pub fn p99(&self) -> f64 {
        self.batch.p99()
    }

    /// Sustained GOP/s on the compressed workload (cycle backend only).
    pub fn gops(&self) -> Option<f64> {
        self.merged_stats().map(|s| s.gops_at(self.clock_hz))
    }

    /// Activity-priced energy over the whole batch (cycle backend, with
    /// pricing enabled).
    pub fn energy(&self) -> Option<&EnergyReport> {
        self.batch.energy.as_ref()
    }

    /// Energy per frame, µJ (cycle backend, with pricing enabled).
    pub fn energy_per_frame_uj(&self) -> Option<f64> {
        self.batch.energy_per_frame_uj()
    }

    /// Average power over the run, W (cycle backend, with pricing
    /// enabled).
    pub fn average_power_w(&self) -> Option<f64> {
        self.energy().map(EnergyReport::average_power_w)
    }
}

impl fmt::Display for JobResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.batch.fmt(f)
    }
}

/// Runs a quantized batch through a feed-forward layer stack on an
/// already-instantiated backend, layer-at-a-time over the whole batch
/// (ReLU between layers, none after the last).
///
/// This wraps the layers unplanned; callers holding a
/// [`CompiledModel`] should prefer [`run_stack_planned`] with
/// [`CompiledModel::planned_layers`] so plan-aware backends skip their
/// own cache lookup.
///
/// # Panics
///
/// Panics if `layers` or `batch` is empty, or dimensions mismatch.
pub fn run_stack_quantized(
    backend: &dyn Backend,
    layers: &[&EncodedLayer],
    batch: &[Vec<Q8p8>],
) -> Vec<BackendRun> {
    let planned: Vec<PlannedLayer<'_>> = layers
        .iter()
        .map(|layer| PlannedLayer::unplanned(layer))
        .collect();
    chain_stack(backend, &planned, batch).0
}

/// Runs a quantized batch through a stack of planned layers on an
/// already-instantiated backend — the serving loop's entry point
/// (ReLU between layers, none after the last).
///
/// This is the one execution loop behind [`InferenceJob::submit`] and
/// the serving workers, so micro-batch coalescing can never change
/// outputs: every path quantizes, chains and accumulates identically,
/// and plans change *where the weights are read from*, never the
/// accumulation order.
///
/// # Panics
///
/// Panics if `layers` or `batch` is empty, or dimensions mismatch.
pub fn run_stack_planned(
    backend: &dyn Backend,
    layers: &[PlannedLayer<'_>],
    batch: &[Vec<Q8p8>],
) -> Vec<BackendRun> {
    chain_stack(backend, layers, batch).0
}

/// The one chaining loop: run each selected layer over the whole batch,
/// accumulating per-item latency/statistics and the per-layer phases.
fn chain_stack(
    backend: &dyn Backend,
    layers: &[PlannedLayer<'_>],
    batch: &[Vec<Q8p8>],
) -> (Vec<BackendRun>, Vec<LayerPhase>) {
    assert!(!layers.is_empty(), "inference job needs at least one layer");
    assert!(!batch.is_empty(), "batch must be non-empty");
    let n = batch.len();
    let mut latency_s = vec![0.0f64; n];
    let mut amortized_s = vec![0.0f64; n];
    let mut stats: Vec<Option<SimStats>> = vec![None; n];
    let mut current: Vec<Vec<Q8p8>> = batch.to_vec();
    let mut phases: Vec<LayerPhase> = Vec::with_capacity(layers.len());
    for (li, layer) in layers.iter().enumerate() {
        let relu = li + 1 < layers.len();
        let runs = backend.run_layer_batch_planned(*layer, &current, relu);
        let mut phase = LayerPhase {
            latency_s: 0.0,
            stats: None,
        };
        let mut next: Vec<Vec<Q8p8>> = Vec::with_capacity(n);
        for (i, run) in runs.into_iter().enumerate() {
            latency_s[i] += run.latency_s;
            amortized_s[i] += run.amortized_s;
            phase.latency_s += run.latency_s;
            match (&mut phase.stats, run.stats.as_ref()) {
                (None, Some(s)) => phase.stats = Some(s.clone()),
                (Some(t), Some(s)) => t.merge(s),
                (_, None) => {}
            }
            match (&mut stats[i], run.stats) {
                (slot @ None, s) => *slot = s,
                (Some(total), Some(s)) => total.merge(&s),
                (Some(_), None) => {}
            }
            next.push(run.outputs);
        }
        current = next;
        phases.push(phase);
    }
    let items = current
        .into_iter()
        .zip(latency_s.into_iter().zip(amortized_s))
        .zip(stats)
        .map(|((outputs, (latency_s, amortized_s)), stats)| BackendRun {
            outputs,
            latency_s,
            amortized_s,
            stats,
        })
        .collect();
    (items, phases)
}

/// The shared execution core: quantize → chain the stack on an
/// already-instantiated backend → aggregate per-item, per-layer and
/// whole-batch views (`kind` names the backend in the result).
///
/// Every public execution surface funnels here: [`InferenceJob::submit`]
/// directly (with its cached engine), and the deprecated
/// `Engine::run_batch` / `Engine::run_network_batch` shims through
/// their layer slices (instantiating per call).
pub(crate) fn execute_stack(
    config: &EieConfig,
    kind: BackendKind,
    backend: &dyn Backend,
    layers: &[PlannedLayer<'_>],
    inputs: &[Vec<f32>],
    price_energy: bool,
) -> JobResult {
    assert!(!layers.is_empty(), "inference job needs at least one layer");
    assert!(!inputs.is_empty(), "batch must be non-empty");
    for planned in layers {
        assert_eq!(
            planned.layer.num_pes(),
            config.num_pes,
            "layer compressed for a different PE count"
        );
    }
    let quantized: Vec<Vec<Q8p8>> = inputs
        .iter()
        .map(|acts| Q8p8::from_f32_slice(acts))
        .collect();

    let start = Instant::now();
    let (items, phases) = chain_stack(backend, layers, &quantized);
    let measured_wall_s = start.elapsed().as_secs_f64();

    let wall_s = if backend.is_modeled() {
        items.iter().map(|r| r.latency_s).sum()
    } else {
        measured_wall_s
    };
    let energy = if price_energy && items.iter().all(|r| r.stats.is_some()) {
        let mut total = SimStats::default();
        for run in &items {
            total.merge(run.stats.as_ref().expect("checked above"));
        }
        Some(EnergyReport::price(
            &activity_from_stats(&total),
            &config.pe_model(),
        ))
    } else {
        None
    };
    JobResult {
        backend: kind,
        clock_hz: config.clock_hz,
        batch: BatchResult {
            backend: backend.name(),
            items,
            wall_s,
            energy,
        },
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_nn::zoo::random_sparse;

    fn two_layer_model() -> CompiledModel {
        let w1 = random_sparse(32, 24, 0.3, 11);
        let w2 = random_sparse(12, 32, 0.3, 12);
        CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2])
    }

    fn batch(n: usize) -> Vec<Vec<f32>> {
        (0..n as u64)
            .map(|i| eie_nn::zoo::sample_activations(24, 0.5, false, 50 + i))
            .collect()
    }

    #[test]
    fn job_runs_the_whole_stack_by_default() {
        let model = two_layer_model();
        let job = model.infer(BackendKind::Functional).submit(&batch(3));
        assert_eq!(job.batch_size(), 3);
        assert_eq!(job.outputs(0).len(), 12);
        assert_eq!(job.layer_phases().len(), 2);
        assert!(job.energy().is_none(), "functional backend has no energy");
        assert!(job.merged_stats().is_none());
        assert!(job.time_us() >= 0.0);
    }

    #[test]
    fn cycle_jobs_price_energy_and_expose_stats() {
        let model = two_layer_model();
        let job = model.infer(BackendKind::CycleAccurate).submit(&batch(2));
        let energy = job.energy().expect("cycle backend prices energy");
        assert!(energy.total_uj() > 0.0);
        assert!(job.average_power_w().unwrap() > 0.0);
        assert!(job.gops().unwrap() > 0.0);
        assert!(job.theoretical_time_us().unwrap() <= job.time_us());
        let merged = job.merged_stats().unwrap();
        let per_item: u64 = (0..2).map(|i| job.stats(i).unwrap().total_cycles).sum();
        assert_eq!(merged.total_cycles, per_item);
        let per_layer: u64 = (0..2)
            .map(|li| job.layer_stats(li).unwrap().total_cycles)
            .sum();
        assert_eq!(merged.total_cycles, per_layer);
        // Disabled pricing drops the report but not the statistics.
        let unpriced = model
            .infer(BackendKind::CycleAccurate)
            .energy(false)
            .submit(&batch(2));
        assert!(unpriced.energy().is_none());
        assert!(unpriced.stats(0).is_some());
    }

    #[test]
    fn layer_scoping_matches_manual_chaining() {
        let model = two_layer_model();
        let inputs = batch(1);
        // Layer 0 raw, host-side ReLU + quantize, layer 1 raw == whole
        // stack (the job applies ReLU between layers on-device).
        let l0 = model
            .infer(BackendKind::Functional)
            .layer(0)
            .submit(&inputs);
        let mid: Vec<f32> = l0.outputs_f32(0).iter().map(|&v| v.max(0.0)).collect();
        let l1 = model
            .infer(BackendKind::Functional)
            .layers(1..)
            .submit_one(&mid);
        let whole = model.infer(BackendKind::Functional).submit(&inputs);
        assert_eq!(l1.outputs(0), whole.outputs(0));
        assert_eq!(whole.layer_phases().len(), 2);
        assert_eq!(l0.layer_phases().len(), 1);
    }

    #[test]
    fn jobs_reuse_their_engine_and_plans_across_submits() {
        let model = two_layer_model();
        let job = model.infer(BackendKind::NativeCpu(2));
        assert_eq!(model.plans_built(), 0);
        let first = job.submit(&batch(2));
        // The native engine pulled both plans from the model's cache…
        assert_eq!(model.plans_built(), 2);
        let second = job.submit(&batch(2));
        assert_eq!(first.outputs(0), second.outputs(0));
        // …and resubmitting reuses engine and plans alike.
        assert_eq!(model.plans_built(), 2);
        // Non-plan backends never trigger plan builds.
        let fresh = two_layer_model();
        let _ = fresh.infer(BackendKind::Functional).submit(&batch(1));
        let _ = fresh
            .infer(BackendKind::NativeStreaming(1))
            .submit(&batch(1));
        assert_eq!(fresh.plans_built(), 0);
    }

    #[test]
    fn config_override_retimes_without_recompiling() {
        let model = two_layer_model();
        let inputs = batch(1);
        let slow = model.infer(BackendKind::CycleAccurate).submit(&inputs);
        let fast = model
            .infer(BackendKind::CycleAccurate)
            .config(model.config().with_clock_hz(1.6e9))
            .submit(&inputs);
        assert_eq!(slow.outputs(0), fast.outputs(0));
        assert!((slow.time_us() / fast.time_us() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backends_agree_through_the_job_surface() {
        let model = two_layer_model();
        let inputs = batch(4);
        let golden = model.infer(BackendKind::Functional).submit(&inputs);
        for kind in [BackendKind::CycleAccurate, BackendKind::NativeCpu(2)] {
            let job = model.infer(kind).submit(&inputs);
            for i in 0..inputs.len() {
                assert_eq!(job.outputs(i), golden.outputs(i), "{kind} diverged");
            }
        }
    }

    #[test]
    fn topology_jobs_match_the_default_path_bit_for_bit() {
        let model = two_layer_model();
        let inputs = batch(5);
        let baseline = model.infer(BackendKind::NativeCpu(1)).submit(&inputs);
        for topology in [
            Topology::single().with_shards(3),
            Topology::single().with_stages(2),
            Topology::single().with_stages(0).with_shards(2),
        ] {
            let job = model
                .infer(BackendKind::NativeCpu(1))
                .topology(topology)
                .submit(&inputs);
            assert_eq!(job.batch_size(), 5);
            assert_eq!(job.layer_phases().len(), 2);
            assert!(job.energy().is_none());
            for i in 0..5 {
                assert_eq!(job.outputs(i), baseline.outputs(i), "{topology} diverged");
            }
        }
    }

    #[test]
    fn lane_tile_override_keeps_outputs_and_spares_the_shared_cache() {
        let model = two_layer_model();
        let inputs = batch(4);
        let baseline = model.infer(BackendKind::NativeCpu(1)).submit(&inputs);
        let built_before = model.plans_built();
        let job = model
            .infer(BackendKind::NativeCpu(1))
            .lane_tile(LaneTile::fixed(16));
        let tiled = job.submit(&inputs);
        let again = job.submit(&inputs);
        for i in 0..4 {
            assert_eq!(tiled.outputs(i), baseline.outputs(i));
            assert_eq!(again.outputs(i), baseline.outputs(i));
        }
        // Overridden plans live in the job, not the model's cache.
        assert_eq!(model.plans_built(), built_before);
    }

    #[test]
    #[should_panic(expected = "requires the native-cpu backend")]
    fn topology_rejects_non_native_backends() {
        let model = two_layer_model();
        let _ = model
            .infer(BackendKind::Functional)
            .topology(Topology::single().with_stages(2))
            .submit(&batch(1));
    }

    #[test]
    #[should_panic(expected = "layer range")]
    fn rejects_empty_layer_range() {
        let model = two_layer_model();
        #[allow(clippy::reversed_empty_ranges)]
        let _ = model.infer(BackendKind::Functional).layers(1..1);
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn rejects_empty_batch() {
        let model = two_layer_model();
        let _ = model.infer(BackendKind::Functional).submit(&[]);
    }

    #[test]
    #[should_panic(expected = "different PE count")]
    fn rejects_pe_mismatched_config_override() {
        let model = two_layer_model();
        let _ = model
            .infer(BackendKind::Functional)
            .config(EieConfig::default().with_num_pes(8))
            .submit(&batch(1));
    }
}
