//! Batched execution results: latency distribution, throughput, energy.
//!
//! EIE's headline claim is latency *without* batching (§VI-B compares at
//! batch 1, Table IV adds the CPU/GPU batch-64 columns the accelerator
//! doesn't need). [`BatchResult`] makes that story measurable: per-item
//! latencies as a distribution, aggregate frames/s over the whole batch,
//! and — on the cycle-accurate backend — the activity-priced energy of
//! the batch.

use std::fmt;

use eie_energy::EnergyReport;
use eie_fixed::Q8p8;

use crate::backend::BackendRun;

/// Aggregated result of one batched run on some backend.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Name of the backend that ran the batch.
    pub backend: &'static str,
    /// Per-item runs, in batch order.
    pub items: Vec<BackendRun>,
    /// Whole-batch wall time, seconds: measured end to end for host
    /// backends (so it reflects real parallel speed-up), the sum of
    /// modelled item times for the cycle-accurate backend (the hardware
    /// runs items back to back).
    pub wall_s: f64,
    /// Activity-priced energy over the whole batch (cycle-accurate
    /// backend only).
    pub energy: Option<EnergyReport>,
}

impl BatchResult {
    /// Number of items in the batch.
    pub fn batch_size(&self) -> usize {
        self.items.len()
    }

    /// Output activations of item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    pub fn outputs(&self, i: usize) -> &[Q8p8] {
        &self.items[i].outputs
    }

    /// Per-item latencies, µs, in batch order.
    pub fn latencies_us(&self) -> Vec<f64> {
        self.items.iter().map(BackendRun::latency_us).collect()
    }

    /// Per-item *amortized* costs, µs, in batch order: fused-batch wall
    /// time divided by the batch size, plain latency for unfused runs.
    /// Every item of a fused batch reports the same latency (the batch
    /// completes as a unit), so latency percentiles at batch > 1 are
    /// degenerate — this is the distribution to rank for
    /// throughput-style per-item cost.
    pub fn amortized_us(&self) -> Vec<f64> {
        self.items.iter().map(BackendRun::amortized_us).collect()
    }

    /// The `p`-th percentile of amortized per-item cost, µs
    /// (nearest-rank; `0.0` for an empty batch).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile_amortized_us(&self, p: f64) -> f64 {
        percentile(&self.amortized_us(), p)
    }

    /// Mean per-item latency, µs; `0.0` for an empty batch.
    pub fn mean_latency_us(&self) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        self.latencies_us().iter().sum::<f64>() / self.batch_size() as f64
    }

    /// The `p`-th percentile of per-item latency, µs (nearest-rank).
    ///
    /// An empty batch has no distribution to rank; it reports `0.0`
    /// rather than panicking, so metrics loops (server dashboards, load
    /// generators between requests) can call this unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile_latency_us(&self, p: f64) -> f64 {
        percentile(&self.latencies_us(), p)
    }

    /// Median per-item latency, µs (`0.0` for an empty batch) — the
    /// serving dashboards' headline number.
    pub fn p50(&self) -> f64 {
        self.percentile_latency_us(50.0)
    }

    /// 95th-percentile per-item latency, µs (`0.0` for an empty batch).
    pub fn p95(&self) -> f64 {
        self.percentile_latency_us(95.0)
    }

    /// 99th-percentile per-item latency, µs (`0.0` for an empty batch) —
    /// the tail-latency number serving SLOs are written against.
    pub fn p99(&self) -> f64 {
        self.percentile_latency_us(99.0)
    }

    /// Worst per-item latency, µs.
    pub fn max_latency_us(&self) -> f64 {
        self.latencies_us()
            .into_iter()
            .fold(0.0f64, |m, l| m.max(l))
    }

    /// Whole-batch wall time, µs.
    pub fn wall_time_us(&self) -> f64 {
        self.wall_s * 1e6
    }

    /// Amortized per-frame time, µs: batch wall time over batch size —
    /// the paper's Table IV convention, and the number to compare with
    /// [`BaselineBatchRun::per_frame_us`](eie_baselines::BaselineBatchRun).
    /// (Per-*item* latency can be larger: a fused host batch completes
    /// as a unit, so each item's latency is the whole batch's wall.)
    pub fn per_frame_us(&self) -> f64 {
        self.wall_time_us() / self.batch_size() as f64
    }

    /// Aggregate inference throughput over the batch, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        self.batch_size() as f64 / self.wall_s
    }

    /// Total batch energy, µJ (cycle-accurate backend only).
    pub fn total_energy_uj(&self) -> Option<f64> {
        self.energy.as_ref().map(EnergyReport::total_uj)
    }

    /// Energy per frame, µJ (cycle-accurate backend only).
    pub fn energy_per_frame_uj(&self) -> Option<f64> {
        self.total_energy_uj().map(|e| e / self.batch_size() as f64)
    }
}

/// Nearest-rank percentile of an unsorted sample; `0.0` for an empty
/// one — the shared latency-distribution helper behind
/// [`BatchResult::percentile_latency_us`] and the serving metrics.
///
/// # Panics
///
/// Panics if `p` is outside `0.0..=100.0` or a sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

impl fmt::Display for BatchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batch {}: {:.2} µs/frame, {:.0} frames/s (item p95 {:.2} µs)",
            self.backend,
            self.batch_size(),
            self.per_frame_us(),
            self.frames_per_second(),
            self.percentile_latency_us(95.0),
        )?;
        if let Some(uj) = self.energy_per_frame_uj() {
            write!(f, ", {uj:.3} µJ/frame")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(latency_us: f64) -> BackendRun {
        BackendRun {
            outputs: vec![Q8p8::ONE],
            latency_s: latency_us * 1e-6,
            amortized_s: latency_us * 1e-6,
            stats: None,
        }
    }

    fn result(latencies_us: &[f64]) -> BatchResult {
        BatchResult {
            backend: "test",
            items: latencies_us.iter().map(|&l| run(l)).collect(),
            wall_s: latencies_us.iter().sum::<f64>() * 1e-6,
            energy: None,
        }
    }

    #[test]
    fn latency_distribution_metrics() {
        let r = result(&[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(r.batch_size(), 4);
        assert!((r.mean_latency_us() - 2.5).abs() < 1e-12);
        assert_eq!(r.max_latency_us(), 4.0);
        assert_eq!(r.percentile_latency_us(50.0), 2.0);
        assert_eq!(r.percentile_latency_us(100.0), 4.0);
        assert_eq!(r.percentile_latency_us(0.0), 1.0);
        assert_eq!(r.outputs(0), &[Q8p8::ONE]);
    }

    #[test]
    fn throughput_is_batch_over_wall() {
        let r = result(&[10.0, 10.0]);
        assert!((r.wall_time_us() - 20.0).abs() < 1e-9);
        assert!((r.per_frame_us() - 10.0).abs() < 1e-9);
        assert!((r.frames_per_second() - 1e5).abs() < 1e-3);
    }

    #[test]
    fn display_reports_rate_without_energy() {
        let r = result(&[5.0]);
        let s = r.to_string();
        assert!(s.contains("frames/s") && !s.contains("µJ"), "{s}");
        assert!(r.total_energy_uj().is_none());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn rejects_out_of_range_percentile() {
        let _ = result(&[1.0]).percentile_latency_us(101.0);
    }

    #[test]
    fn empty_batch_reports_zero_latency_metrics() {
        // The documented no-distribution path: an empty batch (a metrics
        // tick before any request completed) must not panic.
        let r = result(&[]);
        assert_eq!(r.batch_size(), 0);
        assert_eq!(r.mean_latency_us(), 0.0);
        assert_eq!(r.percentile_latency_us(50.0), 0.0);
        assert_eq!(r.p50(), 0.0);
        assert_eq!(r.p99(), 0.0);
        assert_eq!(r.max_latency_us(), 0.0);
    }

    #[test]
    fn percentile_conveniences_match_the_general_form() {
        let r = result(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(r.p50(), r.percentile_latency_us(50.0));
        assert_eq!(r.p95(), r.percentile_latency_us(95.0));
        assert_eq!(r.p99(), r.percentile_latency_us(99.0));
        assert_eq!(r.p50(), 3.0);
        assert_eq!(r.p99(), 5.0);
    }

    #[test]
    fn amortized_distribution_separates_fused_items() {
        // A fused batch of 4: every item stamped with the whole batch's
        // 40 µs wall, amortized to 10 µs each.
        let items: Vec<BackendRun> = (0..4)
            .map(|_| BackendRun {
                outputs: vec![Q8p8::ONE],
                latency_s: 40.0e-6,
                amortized_s: 10.0e-6,
                stats: None,
            })
            .collect();
        let r = BatchResult {
            backend: "test",
            items,
            wall_s: 40.0e-6,
            energy: None,
        };
        // Latency percentiles are degenerate (by design: the batch
        // completes as a unit)...
        assert_eq!(r.p50(), r.p99());
        assert_eq!(r.p99(), 40.0);
        // ...while the amortized distribution carries the per-frame
        // number and sums back to the wall.
        assert_eq!(r.percentile_amortized_us(50.0), 10.0);
        assert!((r.amortized_us().iter().sum::<f64>() - r.wall_time_us()).abs() < 1e-9);
        // Unfused runs keep amortized == latency.
        assert_eq!(run(5.0).amortized_us(), run(5.0).latency_us());
        // Empty batches still report without panicking.
        assert_eq!(result(&[]).percentile_amortized_us(99.0), 0.0);
    }

    #[test]
    fn percentile_helper_is_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 100.0), 3.0);
    }
}
