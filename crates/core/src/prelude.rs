//! The names almost every user of the reproduction needs.
//!
//! ```
//! use eie_core::prelude::*;
//!
//! let config = EieConfig::default().with_num_pes(2);
//! let weights = random_sparse(32, 32, 0.2, 1);
//! let layer = config.pipeline().compile_matrix(&weights);
//! let out = Engine::new(config).run_layer(&layer, &vec![1.0; 32]);
//! assert_eq!(out.run.outputs.len(), 32);
//! ```

pub use crate::{
    activity_from_stats, Backend, BackendKind, BackendRun, BatchResult, BenchmarkInstance,
    CompiledModel, CycleAccurate, EieConfig, Engine, ExecutionResult, Functional,
    ModelArtifactError, NativeCpu, NetworkResult,
};

pub use eie_compress::{
    compress, encode_with_codebook, Codebook, CodebookStrategy, CompilePipeline, CompressConfig,
    EncodedLayer, EncodingStats,
};
pub use eie_energy::{platform::Platform, EnergyReport, LayerActivity, PeModel, SramModel};
pub use eie_fixed::{Accum32, Fix16, Precision, Q8p8, QFormat};
pub use eie_nn::zoo::{random_sparse, BenchLayer, Benchmark, DEFAULT_SEED};
pub use eie_nn::{Activation, CscMatrix, CsrMatrix, FcLayer, LstmCell, LstmState, Matrix, Mlp};
pub use eie_sim::{functional, simulate, simulate_network, LayerRun, SimConfig, SimStats};
