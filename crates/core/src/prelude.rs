//! The names almost every user of the reproduction needs.
//!
//! ```
//! use eie_core::prelude::*;
//!
//! let config = EieConfig::default().with_num_pes(2);
//! let weights = random_sparse(32, 32, 0.2, 1);
//! let model = CompiledModel::compile_layer(config, &weights);
//! let out = model.infer(BackendKind::CycleAccurate).submit_one(&vec![1.0; 32]);
//! assert_eq!(out.outputs(0).len(), 32);
//! ```

pub use crate::backend::lane_isa;
pub use crate::{
    activity_from_stats, percentile, run_stack_pipelined, Backend, BackendKind, BackendRun,
    BatchResult, BenchmarkInstance, CompiledModel, CycleAccurate, EieConfig, Engine,
    ExecutionResult, Functional, InferenceJob, JobResult, LayerPhase, ModelArtifactError,
    NativeCpu, NetworkResult, PipelineRun, PipelinedStack, PlannedLayer,
};

pub use eie_compress::{
    compress, decode_any, encode_with_codebook, BitPlane, Codebook, CodebookStrategy,
    CompilePipeline, CompressConfig, CscNibble, EncodedLayer, EncodingStats, HuffmanPacked,
    LaneTile, LayerPlan, ShardPlan, Topology, WeightCodec, WeightCodecKind, LANE_WIDTH,
};
pub use eie_energy::{platform::Platform, EnergyReport, LayerActivity, PeModel, SramModel};
pub use eie_fixed::{Accum32, Fix16, Precision, Q8p8, QFormat};
pub use eie_nn::zoo::{random_sparse, BenchLayer, Benchmark, DEFAULT_SEED};
pub use eie_nn::{Activation, CscMatrix, CsrMatrix, FcLayer, LstmCell, LstmState, Matrix, Mlp};
pub use eie_sim::{functional, simulate, simulate_network, LayerRun, SimConfig, SimStats};
