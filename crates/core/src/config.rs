//! Accelerator configuration: the design parameters of paper §IV/§VI.

use std::fmt;

use eie_compress::{CompilePipeline, CompressConfig, WeightCodecKind};
use eie_energy::PeModel;
use eie_sim::SimConfig;

/// Accelerator configuration: the union of the design parameters the
/// paper explores (§VI-C) with the paper's chosen values as defaults.
///
/// `EieConfig` is a non-consuming builder:
///
/// ```
/// use eie_core::EieConfig;
///
/// let cfg = EieConfig::default()
///     .with_num_pes(256)
///     .with_fifo_depth(16)
///     .with_spmat_width(128);
/// assert_eq!(cfg.num_pes, 256);
/// ```
///
/// Every ablation axis of §VI has a setter, so sweep configs never need
/// struct-literal updates:
///
/// ```
/// use eie_core::EieConfig;
///
/// // The "no hardware help" ablation point: oracle-free broadcast,
/// // serialized pointer reads, hazard stalls, 8-bit relative indices.
/// let cfg = EieConfig::default()
///     .with_index_bits(8)
///     .with_lnzd_tree(false)
///     .with_ptr_banked(false)
///     .with_accumulator_bypass(false);
/// assert_eq!(cfg.compress_config().index_bits, 8);
/// let sim = cfg.sim_config();
/// assert!(!sim.lnzd_tree && !sim.ptr_banked && !sim.accumulator_bypass);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EieConfig {
    /// Number of processing elements (paper default: 64; scalable to 256+).
    pub num_pes: usize,
    /// Activation FIFO depth (paper default: 8).
    pub fifo_depth: usize,
    /// Sparse-matrix SRAM width in bits (paper default: 64).
    pub spmat_width_bits: u32,
    /// Clock frequency in Hz (paper: 800 MHz at 45 nm).
    pub clock_hz: f64,
    /// Relative-index bits in the encoding (paper: 4).
    pub index_bits: u32,
    /// Model the LNZD tree (vs. an oracle broadcast).
    pub lnzd_tree: bool,
    /// Pointer SRAM banking (vs. serialized double reads).
    pub ptr_banked: bool,
    /// Accumulator bypass path (vs. hazard stalls).
    pub accumulator_bypass: bool,
    /// Weight codec the pack stage stores layer images with (default:
    /// the raw CSC-nibble image; storage-only — execution is identical
    /// for every codec).
    pub codec: WeightCodecKind,
}

impl Default for EieConfig {
    fn default() -> Self {
        Self {
            num_pes: 64,
            fifo_depth: 8,
            spmat_width_bits: 64,
            clock_hz: 800e6,
            index_bits: 4,
            lnzd_tree: true,
            ptr_banked: true,
            accumulator_bypass: true,
            codec: WeightCodecKind::CscNibble,
        }
    }
}

impl EieConfig {
    /// Sets the PE count.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`.
    pub fn with_num_pes(mut self, num_pes: usize) -> Self {
        assert!(num_pes > 0, "num_pes must be non-zero");
        self.num_pes = num_pes;
        self
    }

    /// Sets the activation FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "fifo depth must be non-zero");
        self.fifo_depth = depth;
        self
    }

    /// Sets the sparse-matrix SRAM width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a positive multiple of 8.
    pub fn with_spmat_width(mut self, bits: u32) -> Self {
        assert!(
            bits >= 8 && bits.is_multiple_of(8),
            "width must be a multiple of 8"
        );
        self.spmat_width_bits = bits;
        self
    }

    /// Sets the clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not positive.
    pub fn with_clock_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "clock must be positive");
        self.clock_hz = hz;
        self
    }

    /// Sets the relative-index width of the encoding (the Fig. 12 index
    /// ablation; the paper uses 4 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=8` (the encoder's supported range).
    pub fn with_index_bits(mut self, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "index_bits must be in 1..=8");
        self.index_bits = bits;
        self
    }

    /// Enables or disables the LNZD broadcast tree model (`false` is the
    /// oracle-broadcast ablation).
    pub fn with_lnzd_tree(mut self, enabled: bool) -> Self {
        self.lnzd_tree = enabled;
        self
    }

    /// Enables or disables pointer-SRAM banking (`false` serializes the
    /// two pointer reads — the banking ablation).
    pub fn with_ptr_banked(mut self, enabled: bool) -> Self {
        self.ptr_banked = enabled;
        self
    }

    /// Enables or disables the accumulator bypass path (`false` inserts
    /// read-after-write hazard stalls — the bypass ablation).
    pub fn with_accumulator_bypass(mut self, enabled: bool) -> Self {
        self.accumulator_bypass = enabled;
        self
    }

    /// Sets the weight codec artifacts are packed with. A non-default
    /// codec bumps the model container to version 2; the decoded layers,
    /// plans and every backend's outputs are bit-identical regardless.
    pub fn with_codec(mut self, codec: WeightCodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// The compression configuration implied by this accelerator config.
    pub fn compress_config(&self) -> CompressConfig {
        CompressConfig {
            num_pes: self.num_pes,
            index_bits: self.index_bits,
            ..CompressConfig::default()
        }
    }

    /// The unified compile pipeline (prune → quantize → encode →
    /// validate → pack) for this accelerator config — the single code
    /// path every compression entry point delegates to.
    ///
    /// ```
    /// use eie_core::EieConfig;
    /// use eie_core::nn::zoo::random_sparse;
    ///
    /// let w = random_sparse(32, 32, 0.2, 1);
    /// let layer = EieConfig::default().with_num_pes(4).pipeline().compile_matrix(&w);
    /// assert_eq!(layer.num_pes(), 4);
    /// ```
    pub fn pipeline(&self) -> CompilePipeline {
        CompilePipeline::new(self.compress_config()).with_codec(self.codec)
    }

    /// The simulator configuration implied by this accelerator config.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            fifo_depth: self.fifo_depth,
            spmat_width_bits: self.spmat_width_bits,
            clock_hz: self.clock_hz,
            lnzd_tree: self.lnzd_tree,
            ptr_banked: self.ptr_banked,
            accumulator_bypass: self.accumulator_bypass,
            ..SimConfig::default()
        }
    }

    /// The physical PE model implied by this accelerator config.
    pub fn pe_model(&self) -> PeModel {
        PeModel {
            spmat_width_bits: self.spmat_width_bits,
            fifo_depth: self.fifo_depth,
            clock_hz: self.clock_hz,
        }
    }
}

impl fmt::Display for EieConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EIE[{} PEs, FIFO {}, {}b SRAM, {:.0} MHz]",
            self.num_pes,
            self.fifo_depth,
            self.spmat_width_bits,
            self.clock_hz / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = EieConfig::default()
            .with_num_pes(128)
            .with_fifo_depth(4)
            .with_spmat_width(256)
            .with_clock_hz(1.2e9);
        assert_eq!(cfg.num_pes, 128);
        assert_eq!(cfg.fifo_depth, 4);
        assert_eq!(cfg.spmat_width_bits, 256);
        assert_eq!(cfg.clock_hz, 1.2e9);
        assert_eq!(cfg.sim_config().fifo_depth, 4);
        assert_eq!(cfg.compress_config().num_pes, 128);
        assert_eq!(cfg.pe_model().spmat_width_bits, 256);
    }

    #[test]
    fn ablation_setters_reach_both_sub_configs() {
        let cfg = EieConfig::default()
            .with_index_bits(6)
            .with_lnzd_tree(false)
            .with_ptr_banked(false)
            .with_accumulator_bypass(false);
        assert_eq!(cfg.index_bits, 6);
        assert_eq!(cfg.compress_config().index_bits, 6);
        let sim = cfg.sim_config();
        assert!(!sim.lnzd_tree);
        assert!(!sim.ptr_banked);
        assert!(!sim.accumulator_bypass);
        // Re-enabling restores the defaults' behaviour.
        let back = cfg
            .with_lnzd_tree(true)
            .with_ptr_banked(true)
            .with_accumulator_bypass(true);
        assert!(back.sim_config().lnzd_tree);
    }

    #[test]
    fn codec_setter_reaches_the_pipeline() {
        assert_eq!(EieConfig::default().codec, WeightCodecKind::CscNibble);
        let cfg = EieConfig::default().with_codec(WeightCodecKind::BitPlane);
        assert_eq!(cfg.codec, WeightCodecKind::BitPlane);
        assert_eq!(cfg.pipeline().codec(), WeightCodecKind::BitPlane);
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn rejects_zero_index_bits() {
        let _ = EieConfig::default().with_index_bits(0);
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn rejects_oversized_index_bits() {
        let _ = EieConfig::default().with_index_bits(9);
    }
}
