//! The versioned `.eie` whole-model container: the deployment unit.
//!
//! EIE's lasting contribution (per the paper's retrospective) is the
//! *compressed model as the artifact*: prune + quantize + CSC-encode
//! once, then deploy the compact result everywhere it fits in SRAM. This
//! module gives [`CompiledModel`] that container: a deterministic,
//! checksummed, little-endian file format holding the accelerator
//! configuration, network topology metadata and every layer's SRAM
//! image, written by [`CompiledModel::save`] and read back — **fully
//! validated** — by [`CompiledModel::load`].
//!
//! # Wire format (all integers little-endian)
//!
//! ```text
//! preamble (16 bytes, not checksummed):
//!   magic "EIEM" | version u16 | flags u16 (bit 0: shared codebook)
//!   payload_len u32 | payload_crc32 u32 (CRC-32/IEEE over the payload)
//! payload (payload_len bytes, checksummed):
//!   config: num_pes u32 | fifo_depth u32 | spmat_width_bits u32
//!           | index_bits u32 | clock_hz f64
//!           | hw_flags u8 (bit0 lnzd, bit1 ptr_banked, bit2 accum_bypass)
//!           | pad u8 × 3
//!   topology: name_len u16 | name (UTF-8) | num_layers u32
//!   per layer (version 1): image_len u32 | layer image (the "EIE1"
//!              format of `EncodedLayer::to_bytes`, embedding its
//!              codebook — the `csc-nibble` codec)
//!   per layer (version 2): codec_id u8 | image_len u32 | layer image
//!              (that codec's stream — see `eie_compress::codec`)
//! ```
//!
//! # Version & compatibility policy
//!
//! * The version is bumped for any layout change; readers reject
//!   versions they do not support ([`ModelArtifactError::UnsupportedVersion`])
//!   rather than guessing.
//! * Version-1 layers imply the [`WeightCodecKind::CscNibble`] codec.
//!   A writer emits version 1 whenever the model uses that codec — so
//!   default-codec artifacts stay byte-identical to what version-1
//!   builds wrote — and version 2 only when a non-default codec is
//!   selected. Readers accept both; an unknown codec id in a version-2
//!   layer is the typed [`ModelArtifactError::UnknownCodec`], never a
//!   guess or a panic.
//! * `flags` bits other than bit 0 are reserved **and must be zero**; a
//!   reader rejects unknown bits, so future writers can only use them
//!   with a version bump or for features old readers may safely ignore
//!   being absent from.
//! * The CRC covers the whole payload, so a bit flip anywhere in config,
//!   topology or layer images is caught before layer validation runs.
//! * Trailing bytes after the declared payload are an error (a truncated
//!   *next* file concatenated onto this one should never pass).

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use eie_compress::{DecodeLayerError, EncodedLayer, WeightCodecKind};

use crate::{CompiledModel, EieConfig};

/// Magic bytes heading every `.eie` model container.
pub const MODEL_MAGIC: [u8; 4] = *b"EIEM";

/// The newest container format version this build writes and reads
/// (older versions back to 1 are still read; see the module docs for
/// the per-version layer layout).
pub const MODEL_VERSION: u16 = 2;

/// Recommended file extension for model containers.
pub const MODEL_EXTENSION: &str = "eie";

/// Flag bit 0: every layer shares one codebook.
const FLAG_SHARED_CODEBOOK: u16 = 1 << 0;
/// All bits a version-1 reader understands.
const KNOWN_FLAGS: u16 = FLAG_SHARED_CODEBOOK;

/// Preamble length: magic (4) + version (2) + flags (2) + payload_len
/// (4) + crc32 (4).
const PREAMBLE_LEN: usize = 16;

/// Failure to decode (or read) a `.eie` model container.
///
/// Every rejection is typed: corrupt bytes surface as
/// [`ChecksumMismatch`](Self::ChecksumMismatch) or a specific structural
/// error, never as a panic or a silently-wrong model.
#[derive(Debug)]
pub enum ModelArtifactError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The bytes do not start with [`MODEL_MAGIC`].
    BadMagic,
    /// The container was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the preamble.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The container ended before the declared payload.
    Truncated {
        /// Byte offset at which data ran out.
        offset: usize,
        /// Which section was being read.
        section: &'static str,
    },
    /// The payload's CRC-32 does not match the preamble's.
    ChecksumMismatch {
        /// Checksum stored in the preamble.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A header or topology field holds an impossible value.
    BadHeader {
        /// Which field was invalid.
        field: &'static str,
    },
    /// A layer image failed to decode or validate.
    Layer {
        /// Index of the offending layer (input to output).
        index: usize,
        /// The layer-level error.
        source: DecodeLayerError,
    },
    /// A version-2 layer record names a codec id this build does not
    /// implement.
    UnknownCodec {
        /// Index of the offending layer (input to output).
        index: usize,
        /// The codec id found in the layer record.
        id: u8,
    },
    /// Consecutive layer dimensions do not chain into a network.
    TopologyMismatch {
        /// Index of the layer whose input dimension is wrong.
        index: usize,
        /// Output count of the previous layer.
        expected: usize,
        /// Input count the layer actually declares.
        found: usize,
    },
}

impl fmt::Display for ModelArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelArtifactError::Io(e) => write!(f, "model file I/O failed: {e}"),
            ModelArtifactError::BadMagic => write!(f, "not an EIE model container (bad magic)"),
            ModelArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported model container version {found} (this build reads {supported})"
            ),
            ModelArtifactError::Truncated { offset, section } => write!(
                f,
                "model container truncated at byte {offset} while reading {section}"
            ),
            ModelArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "model payload corrupt: stored CRC {stored:#010x}, computed {computed:#010x}"
            ),
            ModelArtifactError::BadHeader { field } => {
                write!(f, "invalid model header field: {field}")
            }
            ModelArtifactError::Layer { index, source } => {
                write!(f, "layer {index} invalid: {source}")
            }
            ModelArtifactError::UnknownCodec { index, id } => {
                write!(f, "layer {index} uses unknown weight codec id {id}")
            }
            ModelArtifactError::TopologyMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "topology broken at layer {index}: previous layer outputs {expected} \
                 values but this layer consumes {found}"
            ),
        }
    }
}

impl Error for ModelArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelArtifactError::Io(e) => Some(e),
            ModelArtifactError::Layer { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelArtifactError {
    fn from(e: std::io::Error) -> Self {
        ModelArtifactError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), bitwise — model payloads
/// are small enough that a table buys nothing worth the code.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A little-endian cursor with section attribution (the container
/// counterpart of the layer-image reader in `eie-compress`).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn enter(&mut self, section: &'static str) {
        self.section = section;
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelArtifactError> {
        if self.pos + n > self.bytes.len() {
            return Err(ModelArtifactError::Truncated {
                offset: self.pos,
                section: self.section,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ModelArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ModelArtifactError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ModelArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, ModelArtifactError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl CompiledModel {
    /// Exact byte length of [`CompiledModel::to_bytes`]' container,
    /// computed from the layout arithmetic without serializing.
    ///
    /// This is the model's footprint as a deployment artifact — the
    /// number a multi-model serving registry charges against its
    /// residency budget when deciding which cold model to evict.
    pub fn artifact_bytes(&self) -> usize {
        // Config block: num_pes/fifo_depth/spmat_width/index_bits (16) +
        // clock_hz (8) + hw_flags (1) + pad (3).
        let config = 28;
        let topology = 2 + self.name().len() + 4;
        // Version-2 layer records carry a codec id byte ahead of the
        // length; version 1 (the csc-nibble codec) does not.
        let record = if self.container_version() == 1 { 4 } else { 5 };
        let codec = self.config().codec.codec();
        let layers: usize = self
            .layers()
            .iter()
            .map(|l| record + codec.encoded_bytes(l))
            .sum::<usize>();
        PREAMBLE_LEN + config + topology + layers
    }

    /// The container version [`CompiledModel::to_bytes`] will write: 1
    /// for the default `csc-nibble` codec (byte-identical to what
    /// version-1 builds wrote), 2 for any other codec.
    pub fn container_version(&self) -> u16 {
        if self.config().codec == WeightCodecKind::CscNibble {
            1
        } else {
            2
        }
    }

    /// Serializes the model into the versioned `.eie` container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();

        // Config block.
        let cfg = self.config();
        payload.extend_from_slice(&(cfg.num_pes as u32).to_le_bytes());
        payload.extend_from_slice(&(cfg.fifo_depth as u32).to_le_bytes());
        payload.extend_from_slice(&cfg.spmat_width_bits.to_le_bytes());
        payload.extend_from_slice(&cfg.index_bits.to_le_bytes());
        payload.extend_from_slice(&cfg.clock_hz.to_le_bytes());
        let hw_flags = u8::from(cfg.lnzd_tree)
            | u8::from(cfg.ptr_banked) << 1
            | u8::from(cfg.accumulator_bypass) << 2;
        payload.push(hw_flags);
        payload.extend_from_slice(&[0u8; 3]);

        // Topology metadata.
        let name = self.name().as_bytes();
        assert!(name.len() <= u16::MAX as usize, "model name too long");
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name);
        payload.extend_from_slice(&(self.num_layers() as u32).to_le_bytes());

        // Layer images (each embeds its codebook; sharing is recorded in
        // the preamble flags and costs only the duplicated table bytes).
        let version = self.container_version();
        let codec = self.config().codec;
        for layer in self.layers() {
            if version >= 2 {
                payload.push(codec.id());
            }
            let image = codec.codec().encode(layer);
            assert!(
                image.len() <= u32::MAX as usize,
                "layer image exceeds the container's u32 length field"
            );
            payload.extend_from_slice(&(image.len() as u32).to_le_bytes());
            payload.extend_from_slice(&image);
        }

        let mut out = Vec::with_capacity(PREAMBLE_LEN + payload.len());
        out.extend_from_slice(&MODEL_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        let flags = if self.has_shared_codebook() {
            FLAG_SHARED_CODEBOOK
        } else {
            0
        };
        out.extend_from_slice(&flags.to_le_bytes());
        assert!(
            payload.len() <= u32::MAX as usize,
            "model payload exceeds the container's u32 length field"
        );
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes and **validates** a `.eie` container: magic,
    /// version, flags, checksum, config ranges, topology chaining and
    /// every layer image's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelArtifactError`] naming the first problem found;
    /// corrupt bytes never reach a backend.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompiledModel, ModelArtifactError> {
        let mut r = Reader {
            bytes,
            pos: 0,
            section: "magic",
        };
        if r.take(4)? != MODEL_MAGIC {
            return Err(ModelArtifactError::BadMagic);
        }
        r.enter("preamble");
        let version = r.u16()?;
        if !(1..=MODEL_VERSION).contains(&version) {
            return Err(ModelArtifactError::UnsupportedVersion {
                found: version,
                supported: MODEL_VERSION,
            });
        }
        let flags = r.u16()?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(ModelArtifactError::BadHeader { field: "flags" });
        }
        let payload_len = r.u32()? as usize;
        let stored_crc = r.u32()?;
        r.enter("payload");
        let payload = r.take(payload_len)?;
        if r.pos != bytes.len() {
            return Err(ModelArtifactError::BadHeader {
                field: "trailing bytes",
            });
        }
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(ModelArtifactError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }

        let mut r = Reader {
            bytes: payload,
            pos: 0,
            section: "config",
        };
        let num_pes = r.u32()? as usize;
        let fifo_depth = r.u32()? as usize;
        let spmat_width_bits = r.u32()?;
        let index_bits = r.u32()?;
        let clock_hz = r.f64()?;
        let hw_flags = r.u8()?;
        let _pad = r.take(3)?;
        if num_pes == 0 || num_pes > 1 << 20 {
            return Err(ModelArtifactError::BadHeader { field: "num_pes" });
        }
        if fifo_depth == 0 {
            return Err(ModelArtifactError::BadHeader {
                field: "fifo_depth",
            });
        }
        if spmat_width_bits < 8 || spmat_width_bits % 8 != 0 {
            return Err(ModelArtifactError::BadHeader {
                field: "spmat_width_bits",
            });
        }
        if !(1..=8).contains(&index_bits) {
            return Err(ModelArtifactError::BadHeader {
                field: "index_bits",
            });
        }
        if !clock_hz.is_finite() || clock_hz <= 0.0 {
            return Err(ModelArtifactError::BadHeader { field: "clock_hz" });
        }
        if hw_flags & !0b111 != 0 {
            return Err(ModelArtifactError::BadHeader { field: "hw_flags" });
        }
        let mut config = EieConfig {
            num_pes,
            fifo_depth,
            spmat_width_bits,
            clock_hz,
            index_bits,
            lnzd_tree: hw_flags & 1 != 0,
            ptr_banked: hw_flags & 2 != 0,
            accumulator_bypass: hw_flags & 4 != 0,
            // Provisional: the layer records carry the actual codec.
            codec: WeightCodecKind::CscNibble,
        };

        r.enter("topology");
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| ModelArtifactError::BadHeader { field: "name" })?
            .to_owned();
        let num_layers = r.u32()? as usize;
        if num_layers == 0 {
            return Err(ModelArtifactError::BadHeader {
                field: "num_layers",
            });
        }

        let mut layers: Vec<EncodedLayer> = Vec::with_capacity(num_layers.min(1 << 16));
        let mut model_codec = WeightCodecKind::CscNibble;
        for index in 0..num_layers {
            r.enter("layer image");
            // Version 1 has no codec id: every layer is csc-nibble.
            let codec = if version >= 2 {
                let id = r.u8()?;
                WeightCodecKind::from_id(id)
                    .ok_or(ModelArtifactError::UnknownCodec { index, id })?
            } else {
                WeightCodecKind::CscNibble
            };
            if index == 0 {
                model_codec = codec;
            } else if codec != model_codec {
                // The writer packs a whole model with one codec; a mixed
                // container did not come from this implementation.
                return Err(ModelArtifactError::BadHeader {
                    field: "layer codec",
                });
            }
            let image_len = r.u32()? as usize;
            let image = r.take(image_len)?;
            let layer = codec
                .codec()
                .decode(image)
                .map_err(|source| ModelArtifactError::Layer { index, source })?;
            if layer.num_pes() != config.num_pes {
                return Err(ModelArtifactError::BadHeader {
                    field: "layer num_pes",
                });
            }
            if layer.index_bits() != config.index_bits {
                return Err(ModelArtifactError::BadHeader {
                    field: "layer index_bits",
                });
            }
            if let Some(prev) = layers.last() {
                if layer.cols() != prev.rows() {
                    return Err(ModelArtifactError::TopologyMismatch {
                        index,
                        expected: prev.rows(),
                        found: layer.cols(),
                    });
                }
            }
            layers.push(layer);
        }
        if r.pos != payload.len() {
            return Err(ModelArtifactError::BadHeader {
                field: "payload length",
            });
        }
        config.codec = model_codec;

        let model = CompiledModel::from_parts(config, layers, name);
        let shared_flag = flags & FLAG_SHARED_CODEBOOK != 0;
        if shared_flag != model.has_shared_codebook() {
            return Err(ModelArtifactError::BadHeader {
                field: "shared-codebook flag",
            });
        }
        Ok(model)
    }

    /// Writes the model to a `.eie` file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelArtifactError::Io`] when the file cannot be
    /// written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelArtifactError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a `.eie` file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelArtifactError::Io`] when the file cannot be read,
    /// or any decode error from [`CompiledModel::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<CompiledModel, ModelArtifactError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendKind;
    use eie_nn::zoo::random_sparse;

    fn codec_model(codec: WeightCodecKind) -> CompiledModel {
        let w1 = random_sparse(32, 24, 0.25, 1);
        let w2 = random_sparse(16, 32, 0.25, 2);
        CompiledModel::compile(
            EieConfig::default().with_num_pes(4).with_codec(codec),
            &[&w1, &w2],
        )
        .with_name("unit-test model")
    }

    fn sample_model() -> CompiledModel {
        codec_model(WeightCodecKind::CscNibble)
    }

    /// Recomputes the payload CRC after a test patches payload bytes, so
    /// the corruption under test is reached instead of the checksum.
    fn reseal(bytes: &mut [u8]) {
        let crc = crc32(&bytes[PREAMBLE_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
    }

    /// Byte offset of the first layer record inside a serialized model.
    fn first_layer_record(model: &CompiledModel) -> usize {
        PREAMBLE_LEN + 28 + 2 + model.name().len() + 4
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn artifact_bytes_matches_serialized_length() {
        let model = sample_model();
        assert_eq!(model.artifact_bytes(), model.to_bytes().len());
        // Unnamed and single-layer shapes hit the other layout branches.
        let single = CompiledModel::compile_layer(
            EieConfig::default().with_num_pes(2),
            &random_sparse(16, 12, 0.4, 9),
        );
        assert_eq!(single.artifact_bytes(), single.to_bytes().len());
    }

    #[test]
    fn roundtrip_is_identity() {
        let model = sample_model();
        let restored = CompiledModel::from_bytes(&model.to_bytes()).expect("roundtrip");
        assert_eq!(restored, model);
        assert_eq!(restored.name(), "unit-test model");
    }

    #[test]
    fn roundtrip_preserves_outputs_bit_exactly() {
        let model = sample_model();
        let restored = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
        let batch = vec![vec![0.5f32; 24]; 2];
        let a = model.infer(BackendKind::Functional).submit(&batch);
        let b = restored.infer(BackendKind::Functional).submit(&batch);
        for i in 0..batch.len() {
            assert_eq!(a.outputs(i), b.outputs(i));
        }
    }

    #[test]
    fn shared_codebook_flag_roundtrips() {
        let w1 = random_sparse(24, 16, 0.3, 5);
        let w2 = random_sparse(8, 24, 0.3, 6);
        let shared = CompiledModel::compile_shared_codebook(
            EieConfig::default().with_num_pes(2),
            &[&w1, &w2],
        );
        assert!(shared.has_shared_codebook());
        let bytes = shared.to_bytes();
        assert_eq!(
            u16::from_le_bytes([bytes[6], bytes[7]]) & FLAG_SHARED_CODEBOOK,
            FLAG_SHARED_CODEBOOK
        );
        let restored = CompiledModel::from_bytes(&bytes).unwrap();
        assert!(restored.has_shared_codebook());

        let per_layer = CompiledModel::compile(EieConfig::default().with_num_pes(2), &[&w1, &w2]);
        assert!(!per_layer.has_shared_codebook());
        let restored = CompiledModel::from_bytes(&per_layer.to_bytes()).unwrap();
        assert!(!restored.has_shared_codebook());
    }

    #[test]
    fn default_codec_still_writes_version_1_containers() {
        let model = sample_model();
        assert_eq!(model.container_version(), 1);
        let bytes = model.to_bytes();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);
        let restored = CompiledModel::from_bytes(&bytes).expect("v1 loads");
        assert_eq!(restored.config().codec, WeightCodecKind::CscNibble);
    }

    #[test]
    fn non_default_codecs_write_version_2_and_roundtrip() {
        for codec in [WeightCodecKind::HuffmanPacked, WeightCodecKind::BitPlane] {
            let model = codec_model(codec);
            assert_eq!(model.container_version(), 2);
            let bytes = model.to_bytes();
            assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2, "{codec}");
            assert_eq!(model.artifact_bytes(), bytes.len(), "{codec}");
            let restored = CompiledModel::from_bytes(&bytes).expect("v2 loads");
            assert_eq!(restored, model, "{codec}");
            assert_eq!(restored.config().codec, codec, "{codec}");
        }
    }

    #[test]
    fn codec_only_changes_storage_not_outputs() {
        let batch = vec![vec![0.5f32; 24]; 2];
        let golden = sample_model().infer(BackendKind::Functional).submit(&batch);
        for codec in [WeightCodecKind::HuffmanPacked, WeightCodecKind::BitPlane] {
            let restored = CompiledModel::from_bytes(&codec_model(codec).to_bytes()).unwrap();
            let out = restored.infer(BackendKind::Functional).submit(&batch);
            for i in 0..batch.len() {
                assert_eq!(out.outputs(i), golden.outputs(i), "{codec}");
            }
        }
    }

    #[test]
    fn huffman_codec_shrinks_the_artifact() {
        assert!(
            codec_model(WeightCodecKind::HuffmanPacked).artifact_bytes()
                < sample_model().artifact_bytes()
        );
    }

    #[test]
    fn unknown_codec_id_is_a_typed_error() {
        let model = codec_model(WeightCodecKind::HuffmanPacked);
        let mut bytes = model.to_bytes();
        let pos = first_layer_record(&model);
        assert_eq!(bytes[pos], WeightCodecKind::HuffmanPacked.id());
        bytes[pos] = 9;
        reseal(&mut bytes);
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::UnknownCodec { index: 0, id: 9 })
        ));
        let err = ModelArtifactError::UnknownCodec { index: 0, id: 9 };
        assert!(err.to_string().contains("unknown weight codec id 9"));
    }

    #[test]
    fn mixed_layer_codecs_are_rejected() {
        let model = codec_model(WeightCodecKind::HuffmanPacked);
        let mut bytes = model.to_bytes();
        // Walk to the second layer record and relabel it csc-nibble.
        let first = first_layer_record(&model);
        let image_len =
            u32::from_le_bytes(bytes[first + 1..first + 5].try_into().unwrap()) as usize;
        let second = first + 5 + image_len;
        assert_eq!(bytes[second], WeightCodecKind::HuffmanPacked.id());
        bytes[second] = WeightCodecKind::CscNibble.id();
        reseal(&mut bytes);
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::BadHeader {
                field: "layer codec"
            })
        ));
    }

    #[test]
    fn rejects_version_zero() {
        let mut bytes = sample_model().to_bytes();
        bytes[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::UnsupportedVersion {
                found: 0,
                supported: MODEL_VERSION
            })
        ));
    }

    #[test]
    fn v2_bitflips_and_truncations_are_rejected() {
        let bytes = codec_model(WeightCodecKind::BitPlane).to_bytes();
        let stride = ((bytes.len() - PREAMBLE_LEN) / 61).max(1);
        for pos in (PREAMBLE_LEN..bytes.len()).step_by(stride) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                matches!(
                    CompiledModel::from_bytes(&corrupt),
                    Err(ModelArtifactError::ChecksumMismatch { .. })
                ),
                "flip at byte {pos} escaped the checksum"
            );
        }
        for cut in [PREAMBLE_LEN + 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    CompiledModel::from_bytes(&bytes[..cut]),
                    Err(ModelArtifactError::Truncated { .. })
                ),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_model().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::BadMagic)
        ));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample_model().to_bytes();
        bytes[4..6].copy_from_slice(&(MODEL_VERSION + 1).to_le_bytes());
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::UnsupportedVersion { found, supported })
                if found == MODEL_VERSION + 1 && supported == MODEL_VERSION
        ));
    }

    #[test]
    fn rejects_unknown_flags() {
        let mut bytes = sample_model().to_bytes();
        bytes[6] |= 0x80;
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::BadHeader { field: "flags" })
        ));
    }

    #[test]
    fn any_payload_bitflip_is_caught_by_the_checksum() {
        let bytes = sample_model().to_bytes();
        let stride = ((bytes.len() - PREAMBLE_LEN) / 61).max(1);
        for pos in (PREAMBLE_LEN..bytes.len()).step_by(stride) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                matches!(
                    CompiledModel::from_bytes(&corrupt),
                    Err(ModelArtifactError::ChecksumMismatch { .. })
                ),
                "flip at byte {pos} escaped the checksum"
            );
        }
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let bytes = sample_model().to_bytes();
        for cut in [
            0usize,
            3,
            8,
            PREAMBLE_LEN - 1,
            PREAMBLE_LEN + 5,
            bytes.len() - 1,
        ] {
            let r = CompiledModel::from_bytes(&bytes[..cut]);
            assert!(
                matches!(r, Err(ModelArtifactError::Truncated { .. })),
                "prefix of {cut} bytes: {r:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample_model().to_bytes();
        bytes.push(0);
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ModelArtifactError::BadHeader {
                field: "trailing bytes"
            })
        ));
    }

    #[test]
    fn save_and_load_through_a_file() {
        let model = sample_model();
        let path = std::env::temp_dir().join("eie_core_artifact_unit_test.eie");
        model.save(&path).expect("save");
        let restored = CompiledModel::load(&path).expect("load");
        assert_eq!(restored, model);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        let err = CompiledModel::load("/nonexistent/definitely/missing.eie").unwrap_err();
        assert!(matches!(err, ModelArtifactError::Io(_)));
        assert!(err.to_string().contains("I/O"));
        use std::error::Error as _;
        assert!(err.source().is_some());
    }

    #[test]
    fn error_display_names_the_problem() {
        let e = ModelArtifactError::TopologyMismatch {
            index: 1,
            expected: 32,
            found: 24,
        };
        let s = e.to_string();
        assert!(
            s.contains("layer 1") && s.contains("32") && s.contains("24"),
            "{s}"
        );
        let e = ModelArtifactError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("corrupt"));
    }
}
