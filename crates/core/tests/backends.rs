//! Cross-backend agreement and performance: the contract of the
//! pluggable-backend refactor.
//!
//! Every backend must produce **bit-identical `Q8p8` outputs** for the
//! same compiled layer and inputs — the cycle model and the native
//! kernel are each checked against the functional golden model on every
//! Table III zoo benchmark. The `--ignored` perf test asserts the point
//! of `NativeCpu`: batched serving at host speed beats the interpreted
//! golden model.

use std::time::Instant;

use eie_core::prelude::*;

fn quantize_batch(batch: &[Vec<f32>]) -> Vec<Vec<Q8p8>> {
    batch
        .iter()
        .map(|item| Q8p8::from_f32_slice(item))
        .collect()
}

/// All three backends agree bit-exactly on every zoo benchmark at 4 PEs,
/// batched and unbatched (acceptance criterion of the backend refactor).
#[test]
fn all_backends_bit_exact_on_every_zoo_benchmark_at_4_pes() {
    let config = EieConfig::default().with_num_pes(4);
    for benchmark in Benchmark::ALL {
        let layer = benchmark.generate_scaled(DEFAULT_SEED, 32);
        let enc = config.pipeline().compile_matrix(&layer.weights);
        let batch = quantize_batch(&layer.sample_activation_batch(DEFAULT_SEED, 3));

        let functional = Functional::new();
        let cycle = CycleAccurate::new(config.sim_config());
        let native = NativeCpu::with_threads(4);

        for relu in [false, true] {
            // Unbatched: each backend on item 0.
            let golden = functional.run_layer(&enc, &batch[0], relu);
            let cyc = cycle.run_layer(&enc, &batch[0], relu);
            let nat = native.run_layer(&enc, &batch[0], relu);
            assert_eq!(
                cyc.outputs, golden.outputs,
                "{benchmark}: cycle vs functional diverged (relu={relu})"
            );
            assert_eq!(
                nat.outputs, golden.outputs,
                "{benchmark}: native vs functional diverged (relu={relu})"
            );

            // Batched: whole-batch runs item by item.
            let golden_b = functional.run_layer_batch(&enc, &batch, relu);
            let cyc_b = cycle.run_layer_batch(&enc, &batch, relu);
            let nat_b = native.run_layer_batch(&enc, &batch, relu);
            for i in 0..batch.len() {
                assert_eq!(
                    cyc_b[i].outputs, golden_b[i].outputs,
                    "{benchmark}: batched cycle diverged at item {i} (relu={relu})"
                );
                assert_eq!(
                    nat_b[i].outputs, golden_b[i].outputs,
                    "{benchmark}: batched native diverged at item {i} (relu={relu})"
                );
            }
        }
    }
}

/// Backends agree through the engine's batched entry points too, and
/// through a multi-layer `CompiledModel`.
#[test]
fn engine_batches_agree_across_backends_through_a_network() {
    let config = EieConfig::default().with_num_pes(4);
    let w1 = random_sparse(64, 48, 0.15, 21);
    let w2 = random_sparse(32, 64, 0.2, 22);
    let model = CompiledModel::compile(config, &[&w1, &w2]);
    let batch: Vec<Vec<f32>> = (0..6)
        .map(|s| eie_core::nn::zoo::sample_activations(48, 0.4, false, 100 + s))
        .collect();
    let reference = model.infer(BackendKind::Functional).submit(&batch);
    for kind in [
        BackendKind::CycleAccurate,
        BackendKind::NativeCpu(1),
        BackendKind::NativeCpu(4),
    ] {
        let result = model.infer(kind).submit(&batch);
        assert_eq!(result.batch_size(), reference.batch_size());
        for i in 0..batch.len() {
            assert_eq!(
                result.outputs(i),
                reference.outputs(i),
                "{kind} diverged at item {i}"
            );
        }
    }
}

/// The point of the NativeCpu backend: a batched inference job with ≥4
/// threads beats looping the functional golden model item by item, with
/// a generous margin. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "wall-clock performance assertion; run explicitly with --ignored (release build)"]
fn native_batch_outpaces_functional_per_item_loop() {
    let config = EieConfig::default().with_num_pes(8);
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 4); // 1024×1024 @ 9%
    let model = CompiledModel::compile_layer(config, &layer.weights);
    let native = model.infer(BackendKind::NativeCpu(4));
    let enc = model.layer(0);
    let batch = layer.sample_activation_batch(DEFAULT_SEED, 64);
    let quantized = quantize_batch(&batch);

    // Warm both paths once.
    let functional = Functional::new();
    let _ = functional.run_layer(enc, &quantized[0], false);
    let _ = native.submit(&batch);

    // Best-of-3 per path: robust against scheduler noise on small or
    // loaded machines (a single preemption can double one measurement).
    let mut functional_s = f64::INFINITY;
    let mut golden_outputs = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        golden_outputs = quantized
            .iter()
            .map(|item| functional.run_layer(enc, item, false).outputs)
            .collect();
        functional_s = functional_s.min(start.elapsed().as_secs_f64());
    }

    let mut native_s = f64::INFINITY;
    let mut result = native.submit(&batch);
    native_s = native_s.min(result.batch.wall_s);
    for _ in 0..2 {
        result = native.submit(&batch);
        native_s = native_s.min(result.batch.wall_s);
    }

    for (i, golden) in golden_outputs.iter().enumerate() {
        assert_eq!(result.outputs(i), &golden[..], "outputs diverged at {i}");
    }
    let speedup = functional_s / native_s;
    eprintln!(
        "NativeCpu fused batch: {speedup:.2}× over functional loop \
         (functional {:.1} ms vs native {:.1} ms, batch 64)",
        functional_s * 1e3,
        native_s * 1e3
    );
    // The fused kernel alone wins well over 1.3× on a single core;
    // worker threads multiply that on real machines. The generous margin
    // keeps the test robust on loaded or core-starved CI boxes.
    assert!(
        speedup > 1.3,
        "NativeCpu batch speedup only {speedup:.2}× \
         (functional loop {:.1} ms vs native {:.1} ms)",
        functional_s * 1e3,
        native_s * 1e3
    );
}
