//! Cross-backend agreement and performance: the contract of the
//! pluggable-backend refactor.
//!
//! Every backend must produce **bit-identical `Q8p8` outputs** for the
//! same compiled layer and inputs — the cycle model and the native
//! kernel are each checked against the functional golden model on every
//! Table III zoo benchmark. The `--ignored` perf test asserts the point
//! of `NativeCpu`: batched serving at host speed beats the interpreted
//! golden model.

use std::time::Instant;

use eie_core::prelude::*;

fn quantize_batch(batch: &[Vec<f32>]) -> Vec<Vec<Q8p8>> {
    batch
        .iter()
        .map(|item| Q8p8::from_f32_slice(item))
        .collect()
}

/// All three backends agree bit-exactly on every zoo benchmark at 4 PEs,
/// batched and unbatched (acceptance criterion of the backend refactor).
#[test]
fn all_backends_bit_exact_on_every_zoo_benchmark_at_4_pes() {
    let config = EieConfig::default().with_num_pes(4);
    for benchmark in Benchmark::ALL {
        let layer = benchmark.generate_scaled(DEFAULT_SEED, 32);
        let enc = config.pipeline().compile_matrix(&layer.weights);
        let batch = quantize_batch(&layer.sample_activation_batch(DEFAULT_SEED, 3));

        let functional = Functional::new();
        let cycle = CycleAccurate::new(config.sim_config());
        let native = NativeCpu::with_threads(4);

        for relu in [false, true] {
            // Unbatched: each backend on item 0.
            let golden = functional.run_layer(&enc, &batch[0], relu);
            let cyc = cycle.run_layer(&enc, &batch[0], relu);
            let nat = native.run_layer(&enc, &batch[0], relu);
            assert_eq!(
                cyc.outputs, golden.outputs,
                "{benchmark}: cycle vs functional diverged (relu={relu})"
            );
            assert_eq!(
                nat.outputs, golden.outputs,
                "{benchmark}: native vs functional diverged (relu={relu})"
            );

            // Batched: whole-batch runs item by item.
            let golden_b = functional.run_layer_batch(&enc, &batch, relu);
            let cyc_b = cycle.run_layer_batch(&enc, &batch, relu);
            let nat_b = native.run_layer_batch(&enc, &batch, relu);
            for i in 0..batch.len() {
                assert_eq!(
                    cyc_b[i].outputs, golden_b[i].outputs,
                    "{benchmark}: batched cycle diverged at item {i} (relu={relu})"
                );
                assert_eq!(
                    nat_b[i].outputs, golden_b[i].outputs,
                    "{benchmark}: batched native diverged at item {i} (relu={relu})"
                );
            }
        }
    }
}

/// Backends agree through the engine's batched entry points too, and
/// through a multi-layer `CompiledModel`.
#[test]
fn engine_batches_agree_across_backends_through_a_network() {
    let config = EieConfig::default().with_num_pes(4);
    let w1 = random_sparse(64, 48, 0.15, 21);
    let w2 = random_sparse(32, 64, 0.2, 22);
    let model = CompiledModel::compile(config, &[&w1, &w2]);
    let batch: Vec<Vec<f32>> = (0..6)
        .map(|s| eie_core::nn::zoo::sample_activations(48, 0.4, false, 100 + s))
        .collect();
    let reference = model.infer(BackendKind::Functional).submit(&batch);
    for kind in [
        BackendKind::CycleAccurate,
        BackendKind::NativeCpu(1),
        BackendKind::NativeCpu(4),
    ] {
        let result = model.infer(kind).submit(&batch);
        assert_eq!(result.batch_size(), reference.batch_size());
        for i in 0..batch.len() {
            assert_eq!(
                result.outputs(i),
                reference.outputs(i),
                "{kind} diverged at item {i}"
            );
        }
    }
}

/// Extracts the message of a caught panic (assert payloads are
/// `String`s; literal panics are `&str`s).
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// Malformed activation lengths are rejected at every backend's entry
/// points — single-item, whole batch, and the once-sneaky batch of one
/// (which used to fall back to `run_layer` before any length check ran)
/// — with one identical message. Validation is hoisted, not buried in
/// whichever kernel happens to index first.
#[test]
fn all_backends_reject_bad_activation_lengths_uniformly() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let config = EieConfig::default().with_num_pes(2);
    let enc = config
        .pipeline()
        .compile_matrix(&random_sparse(16, 12, 0.4, 3));
    let good = vec![Q8p8::from_f32(0.5); 12];
    let bad = vec![Q8p8::from_f32(0.5); 11];
    for kind in [
        BackendKind::CycleAccurate,
        BackendKind::Functional,
        BackendKind::NativeCpu(2),
        BackendKind::NativeStreaming(2),
    ] {
        let backend = kind.instantiate(&config);
        let cases: [Box<dyn Fn() + '_>; 3] = [
            Box::new(|| {
                backend.run_layer(&enc, &bad, false);
            }),
            Box::new(|| {
                backend.run_layer_batch(&enc, &[good.clone(), bad.clone()], false);
            }),
            Box::new(|| {
                backend.run_layer_batch(&enc, std::slice::from_ref(&bad), false);
            }),
        ];
        for (i, case) in cases.iter().enumerate() {
            let err = catch_unwind(AssertUnwindSafe(case))
                .expect_err(&format!("{kind} accepted malformed input (case {i})"));
            let message = panic_message(err);
            assert!(
                message.contains("activation length mismatch"),
                "{kind} case {i} failed with the wrong message: {message:?}"
            );
        }
    }
}

/// The point of the NativeCpu backend: a batched inference job with ≥4
/// threads beats looping the functional golden model item by item, with
/// a generous margin. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "wall-clock performance assertion; run explicitly with --ignored (release build)"]
fn native_batch_outpaces_functional_per_item_loop() {
    let config = EieConfig::default().with_num_pes(8);
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 4); // 1024×1024 @ 9%
    let model = CompiledModel::compile_layer(config, &layer.weights);
    let native = model.infer(BackendKind::NativeCpu(4));
    let enc = model.layer(0);
    let batch = layer.sample_activation_batch(DEFAULT_SEED, 64);
    let quantized = quantize_batch(&batch);

    // Warm both paths once.
    let functional = Functional::new();
    let _ = functional.run_layer(enc, &quantized[0], false);
    let _ = native.submit(&batch);

    // Best-of-3 per path: robust against scheduler noise on small or
    // loaded machines (a single preemption can double one measurement).
    let mut functional_s = f64::INFINITY;
    let mut golden_outputs = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        golden_outputs = quantized
            .iter()
            .map(|item| functional.run_layer(enc, item, false).outputs)
            .collect();
        functional_s = functional_s.min(start.elapsed().as_secs_f64());
    }

    let mut native_s = f64::INFINITY;
    let mut result = native.submit(&batch);
    native_s = native_s.min(result.batch.wall_s);
    for _ in 0..2 {
        result = native.submit(&batch);
        native_s = native_s.min(result.batch.wall_s);
    }

    for (i, golden) in golden_outputs.iter().enumerate() {
        assert_eq!(result.outputs(i), &golden[..], "outputs diverged at {i}");
    }
    let speedup = functional_s / native_s;
    eprintln!(
        "NativeCpu fused batch: {speedup:.2}× over functional loop \
         (functional {:.1} ms vs native {:.1} ms, batch 64)",
        functional_s * 1e3,
        native_s * 1e3
    );
    // The fused kernel alone wins well over 1.3× on a single core;
    // worker threads multiply that on real machines. The generous margin
    // keeps the test robust on loaded or core-starved CI boxes.
    assert!(
        speedup > 1.3,
        "NativeCpu batch speedup only {speedup:.2}× \
         (functional loop {:.1} ms vs native {:.1} ms)",
        functional_s * 1e3,
        native_s * 1e3
    );
}

/// The point of the plan refactor: once warmed, the pre-decoded plan
/// kernel must not be slower than the streaming kernel it replaced —
/// single-item and fused-batch, at one thread (pure kernel) and
/// several (pool versus scoped spawns). Run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "wall-clock performance assertion; run explicitly with --ignored (release build)"]
fn plan_kernel_not_slower_than_streaming() {
    let config = EieConfig::default().with_num_pes(8);
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 4); // 1024×1024 @ 9%
    let enc = config.pipeline().compile_matrix(&layer.weights);
    let acts = Q8p8::from_f32_slice(&layer.sample_activations(DEFAULT_SEED));
    let batch = quantize_batch(&layer.sample_activation_batch(DEFAULT_SEED, 16));

    let best_of = |runs: usize, mut f: Box<dyn FnMut() + '_>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    for threads in [1usize, 4] {
        let plan = NativeCpu::with_threads(threads);
        let stream = plan.clone().without_plans();
        // Warm both paths: plan build + pool spawn on one side, page
        // cache on the other.
        let warm_plan = plan.run_layer(&enc, &acts, false);
        let warm_stream = stream.run_layer(&enc, &acts, false);
        assert_eq!(warm_plan.outputs, warm_stream.outputs);

        let iters = 20usize;
        let plan_s = best_of(
            3,
            Box::new(|| {
                for _ in 0..iters {
                    let _ = plan.run_layer(&enc, &acts, false);
                }
            }),
        );
        let stream_s = best_of(
            3,
            Box::new(|| {
                for _ in 0..iters {
                    let _ = stream.run_layer(&enc, &acts, false);
                }
            }),
        );
        let single_ratio = stream_s / plan_s;

        let plan_b = best_of(
            3,
            Box::new(|| {
                let _ = plan.run_layer_batch(&enc, &batch, false);
            }),
        );
        let stream_b = best_of(
            3,
            Box::new(|| {
                let _ = stream.run_layer_batch(&enc, &batch, false);
            }),
        );
        let batch_ratio = stream_b / plan_b;

        eprintln!(
            "plan vs streaming at {threads} thread(s): single {single_ratio:.2}×, \
             batch-16 {batch_ratio:.2}×"
        );
        // "Not slower" with a little headroom eaten by scheduler noise;
        // in practice the single-item win is well above 1.5× (see
        // BENCH_kernel.json).
        assert!(
            single_ratio > 1.0,
            "plan single-item kernel slower than streaming at {threads} threads \
             ({single_ratio:.2}×)"
        );
        assert!(
            batch_ratio > 1.0,
            "plan batch kernel slower than streaming at {threads} threads \
             ({batch_ratio:.2}×)"
        );
    }
}
