//! Property test for the weight-codec subsystem: for random layer
//! stacks × PE counts × **every registered codec**, `save → load` must
//! be an identity, the loaded model must remember its codec, and all
//! three backends must run the reloaded model **bit-exactly** like the
//! never-serialized functional golden.

use eie_core::prelude::*;
use proptest::prelude::*;

/// Strategy: a stack of 1..=2 chained sparse matrices, a PE count from
/// {1, 2, 4, 8}, a codec, and a small activation batch.
#[allow(clippy::type_complexity)]
fn arb_codec_case() -> impl Strategy<Value = (Vec<CsrMatrix>, usize, WeightCodecKind, Vec<Vec<f32>>)>
{
    (
        1usize..=2,
        8usize..28,
        0.08f64..0.5,
        any::<u64>(),
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        prop_oneof![
            Just(WeightCodecKind::CscNibble),
            Just(WeightCodecKind::HuffmanPacked),
            Just(WeightCodecKind::BitPlane),
        ],
        1usize..3,
        any::<u64>(),
    )
        .prop_map(
            |(depth, dim_base, density, seed, pes, codec, batch, act_seed)| {
                // Chained dims derived from the seed so consecutive
                // matrices compose (same scheme as artifact_prop.rs).
                let mut dims = Vec::with_capacity(depth + 1);
                let mut d = dim_base;
                for i in 0..=depth {
                    dims.push(d);
                    d = 8 + (d * 7 + i * 13 + seed as usize % 11) % 24;
                }
                let weights: Vec<CsrMatrix> = dims
                    .windows(2)
                    .enumerate()
                    .map(|(i, pair)| {
                        let mut m =
                            random_sparse(pair[1], pair[0], density, seed.wrapping_add(i as u64));
                        let mut reroll = seed;
                        while m.nnz() == 0 {
                            reroll = reroll.wrapping_add(0x9E37_79B9);
                            m = random_sparse(pair[1], pair[0], density.max(0.3), reroll);
                        }
                        m
                    })
                    .collect();
                let input_dim = dims[0];
                let batch: Vec<Vec<f32>> = (0..batch as u64)
                    .map(|i| {
                        eie_core::nn::zoo::sample_activations(
                            input_dim,
                            0.5,
                            true,
                            act_seed.wrapping_add(i),
                        )
                    })
                    .collect();
                (weights, pes, codec, batch)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode → container → decode → plan is bit-exact versus the
    /// never-serialized functional golden on all three backends, for
    /// every codec.
    #[test]
    fn every_codec_roundtrips_bit_exactly_on_all_backends(
        (weights, pes, codec, batch) in arb_codec_case()
    ) {
        let config = EieConfig::default().with_num_pes(pes).with_codec(codec);
        let refs: Vec<&CsrMatrix> = weights.iter().collect();
        let model = CompiledModel::compile(config, &refs).with_name("codec prop");
        let golden = model.infer(BackendKind::Functional).submit(&batch);

        let bytes = model.to_bytes();
        prop_assert_eq!(
            bytes.len(),
            model.artifact_bytes(),
            "artifact_bytes must predict the serialized size for {}", codec
        );
        let loaded = match CompiledModel::from_bytes(&bytes) {
            Ok(m) => m,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("{codec} roundtrip failed: {e}"),
            )),
        };
        prop_assert_eq!(&loaded, &model, "save → load must be the identity for {}", codec);
        prop_assert_eq!(loaded.config().codec, codec);

        for kind in [
            BackendKind::Functional,
            BackendKind::CycleAccurate,
            BackendKind::NativeCpu(2),
        ] {
            let from_disk = loaded.infer(kind).submit(&batch);
            for i in 0..batch.len() {
                prop_assert_eq!(
                    from_disk.outputs(i),
                    golden.outputs(i),
                    "{} via {} diverged at item {} (pes={})",
                    kind, codec, i, pes
                );
            }
        }
    }

    /// Per-layer codec roundtrip at the compress-crate boundary: every
    /// codec's `encode → decode` preserves the layer exactly, and the
    /// generic `decode_any` agrees with the codec-specific decoder.
    #[test]
    fn layer_images_roundtrip_under_every_codec(
        rows in 4usize..40,
        cols in 4usize..40,
        density in 0.05f64..0.6,
        seed in any::<u64>(),
        pes in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let weights = random_sparse(rows, cols, density, seed);
        let config = EieConfig::default().with_num_pes(pes);
        let layer = config.pipeline().compile_matrix(&weights);
        for codec in WeightCodecKind::ALL {
            let image = codec.codec().encode(&layer);
            prop_assert_eq!(
                image.len(),
                codec.codec().encoded_bytes(&layer),
                "encoded_bytes must predict the image size for {}", codec
            );
            let decoded = match codec.codec().decode(&image) {
                Ok(l) => l,
                Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("{codec} decode failed: {e}"),
                )),
            };
            prop_assert_eq!(&decoded, &layer, "{} must be lossless", codec);
            let dispatched = match decode_any(&image) {
                Ok(l) => l,
                Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("decode_any failed on a {codec} image: {e}"),
                )),
            };
            prop_assert_eq!(&dispatched, &layer, "decode_any must agree for {}", codec);
        }
    }
}
