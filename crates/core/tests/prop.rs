//! Property-based tests: backend agreement is an invariant, not a
//! coincidence of the unit-test inputs.
//!
//! For random layers, batches and PE counts in {1, 2, 4, 8}, the
//! NativeCpu kernel and the cycle-accurate simulator must each produce
//! `Q8p8` outputs bit-identical to the functional golden model —
//! batched and unbatched, with and without ReLU, at any thread count.

use eie_core::prelude::*;
use proptest::prelude::*;

/// Strategy: a compressed layer, a batch of quantized inputs, and a PE
/// count drawn from {1, 2, 4, 8}.
fn arb_case() -> impl Strategy<Value = (eie_core::compress::EncodedLayer, Vec<Vec<Q8p8>>, usize)> {
    (
        4usize..48,
        4usize..40,
        0.05f64..0.5,
        any::<u64>(),
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        0.1f64..1.0,
        any::<u64>(),
        1usize..5,
    )
        .prop_map(
            |(rows, cols, density, seed, pes, act_density, act_seed, batch)| {
                // Reroll degenerate all-zero matrices (compress rejects them).
                let mut m = random_sparse(rows, cols, density, seed);
                let mut reroll = seed;
                while m.nnz() == 0 {
                    reroll = reroll.wrapping_add(0x9E37_79B9);
                    m = random_sparse(rows, cols, density.max(0.2), reroll);
                }
                let enc = eie_core::compress::compress(
                    &m,
                    eie_core::compress::CompressConfig::with_pes(pes),
                );
                let items = (0..batch as u64)
                    .map(|i| {
                        Q8p8::from_f32_slice(&eie_core::nn::zoo::sample_activations(
                            cols,
                            act_density,
                            true,
                            act_seed.wrapping_add(i),
                        ))
                    })
                    .collect();
                (enc, items, pes)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unbatched: both non-golden backends match the functional model
    /// bit for bit, for both writeback modes.
    #[test]
    fn backends_bit_exact_unbatched((enc, batch, _pes) in arb_case()) {
        let cycle = CycleAccurate::new(SimConfig::default());
        let native = NativeCpu::with_threads(3);
        for relu in [false, true] {
            let golden = Functional::new().run_layer(&enc, &batch[0], relu);
            prop_assert_eq!(
                &cycle.run_layer(&enc, &batch[0], relu).outputs,
                &golden.outputs,
                "cycle diverged (relu={})", relu
            );
            prop_assert_eq!(
                &native.run_layer(&enc, &batch[0], relu).outputs,
                &golden.outputs,
                "native diverged (relu={})", relu
            );
        }
    }

    /// Batched: whole-batch entry points agree item by item with the
    /// golden model, across thread counts.
    #[test]
    fn backends_bit_exact_batched((enc, batch, _pes) in arb_case(), threads in 1usize..6) {
        let golden = Functional::new().run_layer_batch(&enc, &batch, false);
        let cycle = CycleAccurate::new(SimConfig::default())
            .run_layer_batch(&enc, &batch, false);
        let native = NativeCpu::with_threads(threads)
            .run_layer_batch(&enc, &batch, false);
        prop_assert_eq!(golden.len(), batch.len());
        for i in 0..batch.len() {
            prop_assert_eq!(
                &cycle[i].outputs, &golden[i].outputs,
                "cycle diverged at item {}", i
            );
            prop_assert_eq!(
                &native[i].outputs, &golden[i].outputs,
                "native diverged at item {} ({} threads)", i, threads
            );
        }
    }

    /// The batch dimension is semantically inert: running a batch equals
    /// running its items one at a time, on every backend.
    #[test]
    fn batching_never_changes_outputs((enc, batch, _pes) in arb_case()) {
        let backends: [Box<dyn Backend>; 3] = [
            Box::new(Functional::new()),
            Box::new(CycleAccurate::new(SimConfig::default())),
            Box::new(NativeCpu::with_threads(2)),
        ];
        for backend in &backends {
            let batched = backend.run_layer_batch(&enc, &batch, true);
            for (i, item) in batch.iter().enumerate() {
                let single = backend.run_layer(&enc, item, true);
                prop_assert_eq!(
                    &batched[i].outputs, &single.outputs,
                    "{} batching changed item {}", backend.name(), i
                );
            }
        }
    }
}
