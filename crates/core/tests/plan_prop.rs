//! Property tests of the execution-plan refactor: the plan kernel is a
//! *layout* change, never a numerical one.
//!
//! For random layers, PE counts and batch shapes, the batch-lane
//! vectorized `NativeCpu` must produce `Q8p8` outputs bit-identical to
//! the scalar plan kernel (`without_lanes`), to the streaming kernel
//! they replaced (`without_plans`), and to the functional golden model
//! — including on saturation-heavy inputs near the `Accum32` limits,
//! where any reordering, dropped-padding, or lane-padding mistake would
//! change which saturating add clamps first, and at every lane-remainder
//! batch size (each congruence class mod [`LANE_WIDTH`] plus a
//! non-multiple like 13), where a tail-block bug would show.

use eie_core::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Strategy: a compressed layer, a batch of quantized inputs, and a PE
/// count drawn from {1, 2, 3, 4, 8}.
fn arb_case() -> impl Strategy<Value = (EncodedLayer, Vec<Vec<Q8p8>>)> {
    (
        4usize..48,
        4usize..40,
        0.05f64..0.5,
        any::<u64>(),
        prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(8)],
        0.1f64..1.0,
        any::<u64>(),
        // Every batch size through one past the lane width (covers each
        // remainder class of the lane kernel's padded tail block), plus
        // a larger non-multiple.
        prop_oneof![1usize..=LANE_WIDTH + 1, Just(13usize)],
    )
        .prop_map(
            |(rows, cols, density, seed, pes, act_density, act_seed, batch)| {
                // Reroll degenerate all-zero matrices (compress rejects them).
                let mut m = random_sparse(rows, cols, density, seed);
                let mut reroll = seed;
                while m.nnz() == 0 {
                    reroll = reroll.wrapping_add(0x9E37_79B9);
                    m = random_sparse(rows, cols, density.max(0.2), reroll);
                }
                let enc = compress(&m, CompressConfig::with_pes(pes));
                let items = (0..batch as u64)
                    .map(|i| {
                        Q8p8::from_f32_slice(&eie_core::nn::zoo::sample_activations(
                            cols,
                            act_density,
                            true,
                            act_seed.wrapping_add(i),
                        ))
                    })
                    .collect();
                (enc, items)
            },
        )
}

/// Strategy: a layer whose weights and activations sit near the Q8.8
/// rails, so accumulators brush the `Accum32` saturation limits within
/// a few MACs — the inputs where add order is *observable*.
fn arb_saturating_case() -> impl Strategy<Value = (EncodedLayer, Vec<Vec<Q8p8>>)> {
    (
        2usize..24,
        4usize..24,
        any::<u64>(),
        prop_oneof![Just(1usize), Just(2), Just(4)],
        // Lane-remainder batches for the saturation cases too: padded
        // tail lanes must stay no-ops even when real lanes clamp.
        prop_oneof![1usize..=LANE_WIDTH + 1, Just(13usize)],
    )
        .prop_map(|(rows, cols, seed, pes, batch)| {
            let mut state = seed | 1;
            let mut next = move || {
                // xorshift64: deterministic, dependency-free.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // Dense-ish matrix of near-rail weights with mixed signs:
            // every product is ~±120·120, so two same-sign adds already
            // approach the 32-bit accumulator limit.
            let mut triplets = Vec::new();
            for r in 0..rows {
                for c in 0..cols {
                    if next() % 4 == 0 {
                        continue; // keep some sparsity
                    }
                    let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                    triplets.push((r, c, sign * (100.0 + (next() % 28) as f32)));
                }
            }
            if triplets.is_empty() {
                triplets.push((0, 0, 127.0));
            }
            let m = CsrMatrix::from_triplets(rows, cols, &triplets);
            let enc = compress(&m, CompressConfig::with_pes(pes));
            let items = (0..batch)
                .map(|_| {
                    (0..cols)
                        .map(|_| {
                            if next() % 5 == 0 {
                                Q8p8::ZERO
                            } else {
                                let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                                Q8p8::from_f32(sign * (90.0 + (next() % 38) as f32))
                            }
                        })
                        .collect()
                })
                .collect();
            (enc, items)
        })
}

/// Asserts lane NativeCpu == scalar plan NativeCpu == streaming
/// NativeCpu == functional golden, item by item, single and batched,
/// both writeback modes.
fn assert_plan_streaming_golden_agree(
    enc: &EncodedLayer,
    batch: &[Vec<Q8p8>],
    threads: usize,
) -> Result<(), TestCaseError> {
    let golden = Functional::new();
    let plan = NativeCpu::with_threads(threads);
    let scalar = plan.clone().without_lanes();
    let stream = plan.clone().without_plans();
    for relu in [false, true] {
        let want = golden.run_layer(enc, &batch[0], relu);
        let p = plan.run_layer(enc, &batch[0], relu);
        let s = stream.run_layer(enc, &batch[0], relu);
        prop_assert_eq!(
            &p.outputs,
            &want.outputs,
            "plan single diverged from golden (relu={}, {} threads)",
            relu,
            threads
        );
        prop_assert_eq!(
            &s.outputs,
            &want.outputs,
            "streaming single diverged from golden (relu={}, {} threads)",
            relu,
            threads
        );
        let want_b = golden.run_layer_batch(enc, batch, relu);
        let p_b = plan.run_layer_batch(enc, batch, relu);
        let c_b = scalar.run_layer_batch(enc, batch, relu);
        let s_b = stream.run_layer_batch(enc, batch, relu);
        for i in 0..batch.len() {
            prop_assert_eq!(
                &p_b[i].outputs,
                &want_b[i].outputs,
                "lane batch item {} of {} diverged (relu={}, {} threads)",
                i,
                batch.len(),
                relu,
                threads
            );
            prop_assert_eq!(
                &c_b[i].outputs,
                &want_b[i].outputs,
                "scalar-plan batch item {} of {} diverged (relu={}, {} threads)",
                i,
                batch.len(),
                relu,
                threads
            );
            prop_assert_eq!(
                &s_b[i].outputs,
                &want_b[i].outputs,
                "streaming batch item {} diverged (relu={}, {} threads)",
                i,
                relu,
                threads
            );
        }
    }
    // Warm-path sanity: the plan engine lowered exactly one layer and
    // must not have rebuilt it across the calls above.
    prop_assert_eq!(plan.plan_builds(), 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random layers × PE counts × batch shapes: the plan kernel, the
    /// streaming kernel and the golden model are bit-identical.
    #[test]
    fn plan_streaming_and_golden_bit_exact((enc, batch) in arb_case(), threads in 1usize..5) {
        assert_plan_streaming_golden_agree(&enc, &batch, threads)?;
    }

    /// Saturation-heavy inputs near the `Accum32` rails: the add-order
    /// invariant survives plan lowering (padding drops, pre-multiplied
    /// weights, pool splitting) exactly.
    #[test]
    fn saturating_inputs_pin_the_add_order((enc, batch) in arb_saturating_case(), threads in 1usize..4) {
        // The case is only interesting if something actually clamps;
        // near-rail products guarantee plenty of saturated outputs.
        assert_plan_streaming_golden_agree(&enc, &batch, threads)?;
        let out = Functional::new().run_layer(&enc, &batch[0], false).outputs;
        prop_assert!(
            out.iter().any(|v| *v == Q8p8::MAX || *v == Q8p8::MIN),
            "saturation strategy produced no clamped outputs"
        );
    }

    /// Plans passed explicitly through the model cache (the serving
    /// path: `planned_layer` → `run_layer_batch_planned`) agree with
    /// the backend's own cache path and the golden model.
    #[test]
    fn model_plan_cache_path_bit_exact((enc, batch) in arb_case()) {
        let config = EieConfig::default().with_num_pes(enc.num_pes());
        let model = CompiledModel::from_layers(config, vec![enc.clone()]);
        let backend = NativeCpu::with_threads(2);
        prop_assert_eq!(model.plans_built(), 0);
        let planned = model.planned_layer(0);
        prop_assert_eq!(model.plans_built(), 1);
        let via_model = backend.run_layer_batch_planned(planned, &batch, false);
        // The explicit plan was used: the backend never touched its own
        // cache, so it built nothing.
        prop_assert_eq!(backend.plan_builds(), 0);
        let golden = Functional::new().run_layer_batch(&enc, &batch, false);
        for i in 0..batch.len() {
            prop_assert_eq!(
                &via_model[i].outputs, &golden[i].outputs,
                "model-plan path diverged at item {}", i
            );
        }
    }
}
