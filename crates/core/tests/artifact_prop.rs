//! Property test for the `.eie` whole-model container: for random layer
//! stacks × PE counts × codebook-sharing choices, `save → load` must be
//! an identity and the loaded artifact must run **bit-exactly** like the
//! in-process compile on all three backends.

use eie_core::prelude::*;
use proptest::prelude::*;

/// Strategy: a stack of 1..=3 chained sparse matrices, a PE count from
/// {1, 2, 3, 4, 8}, whether to share one codebook, and a small batch.
#[allow(clippy::type_complexity)]
fn arb_model_case() -> impl Strategy<Value = (Vec<CsrMatrix>, usize, bool, Vec<Vec<f32>>)> {
    (
        1usize..=3,
        8usize..32,
        0.1f64..0.5,
        any::<u64>(),
        prop_oneof![Just(1usize), Just(2), Just(3), Just(4), Just(8)],
        any::<bool>(),
        1usize..4,
        any::<u64>(),
    )
        .prop_map(
            |(depth, dim_base, density, seed, pes, shared, batch, act_seed)| {
                // Chained dims: in -> d1 -> d2 ... derived from the seed
                // so consecutive matrices compose.
                let mut dims = Vec::with_capacity(depth + 1);
                let mut d = dim_base;
                for i in 0..=depth {
                    dims.push(d);
                    d = 8 + (d * 7 + i * 13 + seed as usize % 11) % 24;
                }
                let weights: Vec<CsrMatrix> = dims
                    .windows(2)
                    .enumerate()
                    .map(|(i, pair)| {
                        let mut m =
                            random_sparse(pair[1], pair[0], density, seed.wrapping_add(i as u64));
                        let mut reroll = seed;
                        while m.nnz() == 0 {
                            reroll = reroll.wrapping_add(0x9E37_79B9);
                            m = random_sparse(pair[1], pair[0], density.max(0.3), reroll);
                        }
                        m
                    })
                    .collect();
                let input_dim = dims[0];
                let batch: Vec<Vec<f32>> = (0..batch as u64)
                    .map(|i| {
                        eie_core::nn::zoo::sample_activations(
                            input_dim,
                            0.5,
                            true,
                            act_seed.wrapping_add(i),
                        )
                    })
                    .collect();
                (weights, pes, shared, batch)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load is the identity, the shared-codebook property
    /// survives, and all three backends produce outputs bit-identical
    /// to the never-serialized model's.
    #[test]
    fn container_roundtrip_is_bit_exact_on_all_backends(
        (weights, pes, shared, batch) in arb_model_case()
    ) {
        let config = EieConfig::default().with_num_pes(pes);
        let refs: Vec<&CsrMatrix> = weights.iter().collect();
        let model = if shared {
            CompiledModel::compile_shared_codebook(config, &refs)
        } else {
            CompiledModel::compile(config, &refs)
        }
        .with_name("prop roundtrip");

        let loaded = match CompiledModel::from_bytes(&model.to_bytes()) {
            Ok(m) => m,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("roundtrip failed: {e}"),
            )),
        };
        prop_assert_eq!(&loaded, &model);
        if shared {
            prop_assert!(loaded.has_shared_codebook());
        }

        let golden = model.infer(BackendKind::Functional).submit(&batch);
        for kind in [
            BackendKind::Functional,
            BackendKind::CycleAccurate,
            BackendKind::NativeCpu(2),
        ] {
            let from_disk = loaded.infer(kind).submit(&batch);
            for i in 0..batch.len() {
                prop_assert_eq!(
                    from_disk.outputs(i),
                    golden.outputs(i),
                    "{} diverged at item {} (pes={}, shared={})",
                    kind, i, pes, shared
                );
            }
        }
    }
}
