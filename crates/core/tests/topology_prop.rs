//! Property tests of the execution topology: sharding a dispatch and
//! pipelining a stack are *scheduling* changes, never numerical ones.
//!
//! For random layer stacks, PE counts, shard counts (including more
//! shards than PEs), stage counts and lane-remainder batches, the
//! sharded pool and the pipelined executor must produce `Q8p8` outputs
//! bit-identical to the unsharded [`run_stack_planned`] baseline and to
//! the functional golden model — including on saturation-heavy inputs
//! near the `Accum32` rails fed *through* ReLU into a second layer,
//! where any change to a single add's order or a shard boundary that
//! splits an accumulator chain would be observable.

use eie_core::prelude::*;
use eie_core::run_stack_planned;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Rerolls until the matrix compresses (all-zero layers are rejected).
fn nonzero_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut m = random_sparse(rows, cols, density, seed);
    let mut reroll = seed;
    while m.nnz() == 0 {
        reroll = reroll.wrapping_add(0x9E37_79B9);
        m = random_sparse(rows, cols, density.max(0.2), reroll);
    }
    m
}

/// Strategy: a 1–3 layer chained stack, a PE count from {1, 2, 4}, a
/// lane-remainder batch, and a shard count from the issue's
/// {1, 2, 3, 7} (7 exceeds every drawn PE count: the degenerate
/// more-shards-than-PEs split must collapse, not crash).
#[allow(clippy::type_complexity)]
fn arb_case() -> impl Strategy<Value = (CompiledModel, Vec<Vec<Q8p8>>, usize, usize)> {
    (
        proptest::collection::vec(4usize..28, 2..=4),
        0.1f64..0.5,
        any::<u64>(),
        prop_oneof![Just(1usize), Just(2), Just(4)],
        0.2f64..1.0,
        any::<u64>(),
        // Every remainder class of the lane kernel's tail block plus a
        // larger non-multiple.
        prop_oneof![1usize..=LANE_WIDTH + 1, Just(13usize)],
        prop_oneof![Just(1usize), Just(2), Just(3), Just(7)],
        0usize..=4,
    )
        .prop_map(
            |(dims, density, seed, pes, act_density, act_seed, batch, shards, stages)| {
                let weights: Vec<CsrMatrix> = dims
                    .windows(2)
                    .enumerate()
                    .map(|(i, w)| nonzero_sparse(w[1], w[0], density, seed.wrapping_add(i as u64)))
                    .collect();
                let refs: Vec<&CsrMatrix> = weights.iter().collect();
                let model = CompiledModel::compile(EieConfig::default().with_num_pes(pes), &refs);
                let items = (0..batch as u64)
                    .map(|i| {
                        Q8p8::from_f32_slice(&eie_core::nn::zoo::sample_activations(
                            dims[0],
                            act_density,
                            true,
                            act_seed.wrapping_add(i),
                        ))
                    })
                    .collect();
                (model, items, shards, stages)
            },
        )
}

/// Asserts unsharded baseline == functional golden == sharded pool ==
/// pipelined executor (run + pinned chunk granularities), item by item.
fn assert_topology_agrees(
    model: &CompiledModel,
    batch: &[Vec<Q8p8>],
    shards: usize,
    stages: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let planned = model.planned_layers();
    let golden: Vec<Vec<Q8p8>> = run_stack_planned(&Functional::new(), &planned, batch)
        .into_iter()
        .map(|run| run.outputs)
        .collect();
    let baseline = run_stack_planned(&NativeCpu::with_threads(threads), &planned, batch);
    for (i, run) in baseline.iter().enumerate() {
        prop_assert_eq!(
            &run.outputs,
            &golden[i],
            "unsharded baseline diverged from golden at item {} ({} threads)",
            i,
            threads
        );
    }

    let sharded = NativeCpu::with_threads(threads).with_shards(shards);
    let sharded_runs = run_stack_planned(&sharded, &planned, batch);
    for (i, run) in sharded_runs.iter().enumerate() {
        prop_assert_eq!(
            &run.outputs,
            &golden[i],
            "sharded pool diverged at item {} ({} shards, {} threads)",
            i,
            shards,
            threads
        );
    }

    let topology = Topology::single().with_shards(shards).with_stages(stages);
    let stack = PipelinedStack::new(&planned, &topology, threads);
    let piped = stack.run(batch);
    prop_assert_eq!(piped.outputs.len(), batch.len());
    for (i, out) in piped.outputs.iter().enumerate() {
        prop_assert_eq!(
            out,
            &golden[i],
            "pipelined diverged at item {} ({}, {} threads)",
            i,
            topology,
            threads
        );
    }
    // Chunk granularity is scheduling only: single-item chunks maximise
    // queue traffic, lane-width chunks exercise the tail block.
    for chunk_frames in [1usize, LANE_WIDTH] {
        let chunked = stack.run_chunked(batch, chunk_frames);
        for (i, out) in chunked.outputs.iter().enumerate() {
            prop_assert_eq!(
                out,
                &golden[i],
                "pipelined chunk {} diverged at item {} ({})",
                chunk_frames,
                i,
                topology
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random stacks × PEs × shards × stages × batch shapes: every
    /// topology reproduces the unsharded planned baseline and the
    /// golden model bit for bit.
    #[test]
    fn sharded_and_pipelined_stacks_are_bit_exact(
        (model, batch, shards, stages) in arb_case(),
        threads in 1usize..4,
    ) {
        assert_topology_agrees(&model, &batch, shards, stages, threads)?;
    }

    /// Near-rail weights and activations: layer-0 accumulators clamp,
    /// ReLU gates the clamped values into layer 1, and every topology
    /// must still agree on every bit — shard boundaries and stage
    /// handoffs may never split or reorder one item's add chain.
    #[test]
    fn saturating_stacks_pin_the_add_order(
        seed in any::<u64>(),
        pes in prop_oneof![Just(1usize), Just(2), Just(4)],
        batch in prop_oneof![1usize..=LANE_WIDTH + 1, Just(13usize)],
        shards in prop_oneof![Just(1usize), Just(2), Just(3), Just(7)],
        stages in 0usize..=3,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let (mid, cols) = (12usize, 16usize);
        // Dense-ish near-rail weights with mixed signs: two same-sign
        // products already brush the Accum32 limit.
        let mut stack_weights = Vec::new();
        for (rows, cols) in [(mid, cols), (8, mid)] {
            let mut triplets = Vec::new();
            for r in 0..rows {
                for c in 0..cols {
                    if next() % 4 == 0 {
                        continue;
                    }
                    let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                    triplets.push((r, c, sign * (100.0 + (next() % 28) as f32)));
                }
            }
            if triplets.is_empty() {
                triplets.push((0, 0, 127.0));
            }
            stack_weights.push(CsrMatrix::from_triplets(rows, cols, &triplets));
        }
        let refs: Vec<&CsrMatrix> = stack_weights.iter().collect();
        let model = CompiledModel::compile(EieConfig::default().with_num_pes(pes), &refs);
        let items: Vec<Vec<Q8p8>> = (0..batch)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        if next() % 5 == 0 {
                            Q8p8::ZERO
                        } else {
                            let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                            Q8p8::from_f32(sign * (90.0 + (next() % 38) as f32))
                        }
                    })
                    .collect()
            })
            .collect();
        // The case is only interesting if layer 0 actually clamps
        // before ReLU feeds it forward.
        let first = Functional::new().run_layer(model.layer(0), &items[0], false).outputs;
        prop_assert!(
            first.iter().any(|v| *v == Q8p8::MAX || *v == Q8p8::MIN),
            "saturation strategy produced no clamped layer-0 outputs"
        );
        assert_topology_agrees(&model, &items, shards, stages, 2)?;
    }
}
