//! Property-based tests: the cycle-accurate model versus its invariants.

use eie_compress::{compress, CompressConfig, EncodedLayer};
use eie_fixed::Q8p8;
use eie_nn::zoo::{random_sparse, sample_activations};
use eie_sim::{functional, simulate, SimConfig};
use proptest::prelude::*;

/// Strategy: a compressed layer, activations, and a PE count.
fn arb_case() -> impl Strategy<Value = (EncodedLayer, Vec<f32>, usize)> {
    (
        4usize..40,
        4usize..40,
        0.05f64..0.5,
        any::<u64>(),
        1usize..9,
        0.0f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(rows, cols, density, seed, pes, act_density, act_seed)| {
            // Small matrices at low density can come out all-zero, which
            // compress rightly rejects; reroll until at least one weight
            // survives.
            let mut m = random_sparse(rows, cols, density, seed);
            let mut reroll = seed;
            while m.nnz() == 0 {
                reroll = reroll.wrapping_add(0x9E37_79B9);
                m = random_sparse(rows, cols, density.max(0.2), reroll);
            }
            let enc = compress(&m, CompressConfig::with_pes(pes));
            let acts = sample_activations(cols, act_density, true, act_seed);
            (enc, acts, pes)
        })
}

fn quantize(acts: &[f32]) -> Vec<Q8p8> {
    acts.iter().map(|&a| Q8p8::from_f32(a)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cycle-accurate model is bit-exact against the functional model
    /// for every layer shape, sparsity, PE count and input.
    #[test]
    fn cycle_model_matches_functional((enc, acts, _pes) in arb_case()) {
        let run = simulate(&enc, &acts, &SimConfig::default());
        let golden = functional::execute(&enc, &quantize(&acts), false);
        prop_assert_eq!(run.outputs, golden);
    }

    /// Total MACs equal the workload implied by the encoding + input.
    #[test]
    fn macs_equal_workload((enc, acts, _pes) in arb_case()) {
        let run = simulate(&enc, &acts, &SimConfig::default());
        prop_assert_eq!(
            run.stats.total_macs(),
            functional::workload_macs(&enc, &quantize(&acts))
        );
    }

    /// Cycle count is at least the theoretical minimum and at least the
    /// number of broadcasts (1 per cycle max).
    #[test]
    fn cycles_bounded_below((enc, acts, _pes) in arb_case()) {
        let run = simulate(&enc, &acts, &SimConfig::default());
        prop_assert!(run.stats.total_cycles >= run.stats.theoretical_cycles());
        prop_assert!(run.stats.total_cycles >= run.stats.broadcasts);
    }

    /// Busy + starved + hazard cycles account for every active PE cycle.
    #[test]
    fn pe_cycle_accounting((enc, acts, _pes) in arb_case()) {
        let run = simulate(&enc, &acts, &SimConfig::default());
        for pe in &run.stats.pe {
            prop_assert_eq!(
                pe.busy_cycles + pe.starved_cycles + pe.hazard_stall_cycles,
                run.stats.total_cycles
            );
        }
    }

    /// Queue pushes equal broadcasts, pops equal pushes (everything sent
    /// is consumed).
    #[test]
    fn queue_conservation((enc, acts, _pes) in arb_case()) {
        let run = simulate(&enc, &acts, &SimConfig::default());
        for pe in &run.stats.pe {
            prop_assert_eq!(pe.queue_pushes, run.stats.broadcasts);
            prop_assert_eq!(pe.queue_pops, pe.queue_pushes);
        }
    }

    /// FIFO occupancy never exceeds the configured depth.
    #[test]
    fn fifo_depth_respected((enc, acts, _pes) in arb_case(), depth in 1usize..16) {
        let cfg = SimConfig::with_fifo_depth(depth);
        let run = simulate(&enc, &acts, &cfg);
        for pe in &run.stats.pe {
            prop_assert!(pe.max_fifo_occupancy <= depth);
        }
    }

    /// Deeper FIFOs never hurt: total cycles are non-increasing in depth.
    #[test]
    fn deeper_fifo_never_slower((enc, acts, _pes) in arb_case()) {
        let mut last = u64::MAX;
        for depth in [1usize, 2, 4, 8, 16] {
            let run = simulate(&enc, &acts, &SimConfig::with_fifo_depth(depth));
            prop_assert!(
                run.stats.total_cycles <= last,
                "depth {} slower: {} > {}", depth, run.stats.total_cycles, last
            );
            last = run.stats.total_cycles;
        }
    }

    /// Results and cycle counts do not depend on the SRAM width (only the
    /// read counts do), and wider SRAM never increases row reads.
    #[test]
    fn sram_width_only_changes_read_counts((enc, acts, _pes) in arb_case()) {
        let mut last_reads = u64::MAX;
        let mut reference: Option<(Vec<Q8p8>, u64)> = None;
        for width in [32u32, 64, 128, 256, 512] {
            let run = simulate(&enc, &acts, &SimConfig::with_spmat_width(width));
            let reads = run.stats.spmat_row_reads();
            prop_assert!(reads <= last_reads, "width {width} increased reads");
            last_reads = reads;
            match &reference {
                None => reference = Some((run.outputs, run.stats.total_cycles)),
                Some((out, cycles)) => {
                    prop_assert_eq!(&run.outputs, out);
                    prop_assert_eq!(run.stats.total_cycles, *cycles);
                }
            }
        }
    }

    /// Disabling the bypass never changes results, only adds cycles.
    #[test]
    fn bypass_ablation_preserves_results((enc, acts, _pes) in arb_case()) {
        let with = simulate(&enc, &acts, &SimConfig::default());
        let without = simulate(&enc, &acts, &SimConfig {
            accumulator_bypass: false,
            ..SimConfig::default()
        });
        prop_assert_eq!(&with.outputs, &without.outputs);
        prop_assert!(without.stats.total_cycles >= with.stats.total_cycles);
        let hazards: u64 = without.stats.pe.iter().map(|p| p.hazard_stall_cycles).sum();
        let bypasses: u64 = with.stats.pe.iter().map(|p| p.bypass_hits).sum();
        prop_assert_eq!(hazards, bypasses);
    }

    /// Unbanked pointer SRAM never changes results, only adds cycles.
    #[test]
    fn banking_ablation_preserves_results((enc, acts, _pes) in arb_case()) {
        let banked = simulate(&enc, &acts, &SimConfig::default());
        let unbanked = simulate(&enc, &acts, &SimConfig {
            ptr_banked: false,
            ..SimConfig::default()
        });
        prop_assert_eq!(&banked.outputs, &unbanked.outputs);
        prop_assert!(unbanked.stats.total_cycles >= banked.stats.total_cycles);
    }

    /// Load-balance efficiency is a valid fraction, and all-PE busy time
    /// equals total MACs.
    #[test]
    fn efficiency_in_unit_interval((enc, acts, _pes) in arb_case()) {
        let run = simulate(&enc, &acts, &SimConfig::default());
        let eff = run.stats.load_balance_efficiency();
        prop_assert!((0.0..=1.0).contains(&eff), "efficiency {eff}");
        let busy: u64 = run.stats.pe.iter().map(|p| p.busy_cycles).sum();
        prop_assert_eq!(busy, run.stats.total_macs());
    }
}
