//! The distributed leading non-zero detection network (paper Fig. 4(a)).
//!
//! Input activations live distributed across PEs; each group of four PEs
//! performs a local leading-non-zero detection whose result feeds an LNZD
//! node, and nodes form a quadtree whose root (the CCU) broadcasts the
//! selected activation back down an H-tree. For 64 PEs the paper counts
//! `16 + 4 + 1 = 21` nodes, each 189 µm² and 0.023 mW — under 0.3% of a
//! PE.
//!
//! The cycle model in [`system`](crate::simulate) needs only the tree's
//! *timing* (pipeline-fill depth) and *selection order* (ascending index);
//! this module provides the structural model those numbers come from,
//! plus a faithful hierarchical scan used to cross-check the simulator's
//! linear scan.

use eie_fixed::Q8p8;

/// Structural model of the LNZD quadtree for a given PE count.
///
/// # Example
///
/// ```
/// use eie_sim::LnzdTree;
///
/// let tree = LnzdTree::new(64);
/// assert_eq!(tree.node_count(), 21); // 16 + 4 + 1, as in the paper
/// assert_eq!(tree.depth(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LnzdTree {
    num_pes: usize,
    fanin: usize,
}

impl LnzdTree {
    /// A quadtree (fan-in 4, the paper's choice) over `num_pes` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`.
    pub fn new(num_pes: usize) -> Self {
        Self::with_fanin(num_pes, 4)
    }

    /// A tree with arbitrary fan-in (for design exploration).
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0` or `fanin < 2`.
    pub fn with_fanin(num_pes: usize, fanin: usize) -> Self {
        assert!(num_pes > 0, "num_pes must be non-zero");
        assert!(fanin >= 2, "fanin must be at least 2");
        Self { num_pes, fanin }
    }

    /// Number of PEs at the leaves.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Tree depth: levels of LNZD nodes between PEs and the root
    /// (0 when one node — or none — suffices).
    pub fn depth(&self) -> u64 {
        let mut depth = 0u64;
        let mut reach = 1usize;
        while reach < self.num_pes {
            reach *= self.fanin;
            depth += 1;
        }
        depth
    }

    /// Total LNZD nodes: one per group of `fanin` at each level
    /// (`16 + 4 + 1 = 21` for 64 PEs at fan-in 4).
    pub fn node_count(&self) -> usize {
        let mut nodes = 0usize;
        let mut width = self.num_pes;
        while width > 1 {
            width = width.div_ceil(self.fanin);
            nodes += width;
        }
        nodes
    }

    /// Hierarchically selects the first non-zero at-or-after `start`,
    /// scanning a distributed activation vector (`acts[j]` lives on PE
    /// `j mod num_pes`, matching §III-C's storage rule). Returns the
    /// global index, or `None` when everything remaining is zero.
    ///
    /// Functionally equal to a linear scan — the property the simulator's
    /// scheduler relies on and the tests verify — but computed by
    /// per-group leading-non-zero detection like the hardware.
    pub fn next_nonzero(&self, acts: &[Q8p8], start: usize) -> Option<usize> {
        // Each PE owns positions j with j % num_pes == pe. A hardware
        // round considers one "wavefront" of positions per PE; the tree
        // then picks the lowest-indexed non-zero among PE candidates.
        let n = self.num_pes;
        let mut wave = start / n;
        loop {
            let base = wave * n;
            if base >= acts.len() + n {
                return None;
            }
            // Leaf detection: each PE reports its candidate in this wave.
            let mut best: Option<usize> = None;
            for pe in 0..n {
                let j = base + pe;
                if j < start || j >= acts.len() {
                    continue;
                }
                if !acts[j].is_zero() {
                    // Tree reduction picks the smallest index; emulate the
                    // per-level 4-way selects.
                    best = Some(match best {
                        None => j,
                        Some(b) => b.min(j),
                    });
                }
            }
            if let Some(j) = best {
                return Some(j);
            }
            if base >= acts.len() {
                return None;
            }
            wave += 1;
        }
    }

    /// The full non-zero schedule the CCU broadcasts, in order.
    pub fn schedule(&self, acts: &[Q8p8]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        while let Some(j) = self.next_nonzero(acts, cursor) {
            out.push(j);
            cursor = j + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts_from(pattern: &[f32]) -> Vec<Q8p8> {
        pattern.iter().map(|&v| Q8p8::from_f32(v)).collect()
    }

    #[test]
    fn paper_node_count_for_64_pes() {
        assert_eq!(LnzdTree::new(64).node_count(), 21);
        assert_eq!(LnzdTree::new(64).depth(), 3);
    }

    #[test]
    fn node_counts_for_other_sizes() {
        assert_eq!(LnzdTree::new(4).node_count(), 1);
        assert_eq!(LnzdTree::new(16).node_count(), 5); // 4 + 1
        assert_eq!(LnzdTree::new(256).node_count(), 85); // 64+16+4+1
        assert_eq!(LnzdTree::new(1).node_count(), 0);
    }

    #[test]
    fn depth_matches_simconfig_fill_model() {
        use crate::SimConfig;
        let cfg = SimConfig::default();
        for pes in [1usize, 4, 16, 64, 256, 100] {
            assert_eq!(
                LnzdTree::new(pes).depth(),
                cfg.lnzd_depth(pes),
                "depth mismatch at {pes} PEs"
            );
        }
    }

    #[test]
    fn scan_equals_linear_scan() {
        let acts = acts_from(&[0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 4.0, 0.0]);
        for pes in [1usize, 2, 4, 8] {
            let tree = LnzdTree::new(pes);
            let expected: Vec<usize> = acts
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.is_zero())
                .map(|(j, _)| j)
                .collect();
            assert_eq!(tree.schedule(&acts), expected, "PEs = {pes}");
        }
    }

    #[test]
    fn next_nonzero_respects_start() {
        let acts = acts_from(&[1.0, 0.0, 2.0, 3.0]);
        let tree = LnzdTree::new(2);
        assert_eq!(tree.next_nonzero(&acts, 0), Some(0));
        assert_eq!(tree.next_nonzero(&acts, 1), Some(2));
        assert_eq!(tree.next_nonzero(&acts, 3), Some(3));
        assert_eq!(tree.next_nonzero(&acts, 4), None);
    }

    #[test]
    fn all_zero_yields_empty_schedule() {
        let acts = acts_from(&[0.0; 17]);
        assert!(LnzdTree::new(4).schedule(&acts).is_empty());
    }

    #[test]
    fn binary_tree_fanin() {
        let t = LnzdTree::with_fanin(8, 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.node_count(), 4 + 2 + 1);
    }
}
