//! The full accelerator: central control unit + PE array (paper §IV).

use eie_compress::EncodedLayer;
use eie_fixed::Q8p8;

use crate::{Clocked, ProcessingElement, SimConfig, SimStats};

/// Result of simulating one layer.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// Output activations by global row, in 16-bit fixed point.
    pub outputs: Vec<Q8p8>,
    /// Cycle and activity statistics.
    pub stats: SimStats,
}

impl LayerRun {
    /// Output activations as `f32`.
    pub fn outputs_f32(&self) -> Vec<f32> {
        self.outputs.iter().map(|v| v.to_f32()).collect()
    }
}

/// Result of simulating a multi-layer network.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Per-layer results.
    pub layers: Vec<LayerRun>,
    /// Final output activations.
    pub outputs: Vec<Q8p8>,
    /// Statistics merged across layers.
    pub total: SimStats,
}

/// What the CCU does in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CcuAction {
    /// LNZD pipeline is filling.
    Fill,
    /// Waiting for PEs to drain at a batch boundary, or swapping
    /// activation registers.
    Drain,
    /// Broadcast the next non-zero activation to all queues.
    Send(u32, i16),
    /// Some PE's queue is full: broadcast disabled this cycle.
    Stall,
    /// Nothing left to send.
    Done,
}

/// The broadcast schedule the LNZD network produces for an activation
/// vector: the non-zero activations in index order, as `(index, value)`
/// pairs.
///
/// This is the exact work list the CCU broadcasts to the PE array, and
/// the contract every execution backend shares: the cycle model consumes
/// it through its FIFOs, the functional golden model and host-speed
/// kernels iterate it directly. Exposing it keeps "which activations are
/// skipped, in which order" defined in one place.
pub fn broadcast_schedule(acts: &[Q8p8]) -> Vec<(u32, Q8p8)> {
    acts.iter()
        .enumerate()
        .filter(|(_, a)| !a.is_zero())
        .map(|(j, &a)| (j as u32, a))
        .collect()
}

/// The accelerator model: CCU + LNZD + PE array, clocked as one module.
struct System<'a> {
    layer: &'a EncodedLayer,
    cfg: &'a SimConfig,
    pes: Vec<ProcessingElement>,
    /// Non-zero activations in index order: what the LNZD tree yields.
    schedule: Vec<(u32, Q8p8)>,
    next: usize,
    /// Cycles left of LNZD pipeline fill.
    fill_remaining: u64,
    /// First input position of the *next* batch.
    batch_boundary: usize,
    /// Cycles left of the current batch drain.
    drain_remaining: u64,
    /// Decision computed in `propagate`, committed in `update`.
    action: CcuAction,
    stats: SimStats,
}

impl<'a> System<'a> {
    fn new(layer: &'a EncodedLayer, acts: &[Q8p8], cfg: &'a SimConfig) -> Self {
        let codebook = layer.codebook().to_fix16::<8>();
        let pes = (0..layer.num_pes())
            .map(|k| ProcessingElement::new(layer.slice(k).local_rows(), codebook))
            .collect();
        let schedule = broadcast_schedule(acts);
        let fill = cfg.lnzd_depth(layer.num_pes());
        let batch_span = cfg.act_regfile_entries * layer.num_pes();
        let mut stats = SimStats {
            pe: Vec::new(),
            ..SimStats::default()
        };
        stats.batches = 1;
        Self {
            layer,
            cfg,
            pes,
            schedule,
            next: 0,
            fill_remaining: fill,
            batch_boundary: batch_span.max(1),
            drain_remaining: 0,
            action: CcuAction::Done,
            stats,
        }
    }

    fn all_pes_idle(&self) -> bool {
        self.pes.iter().all(ProcessingElement::idle)
    }

    fn done(&self) -> bool {
        self.next >= self.schedule.len() && self.drain_remaining == 0 && self.all_pes_idle()
    }

    /// Decides the CCU action for this cycle from pre-edge state.
    fn decide(&self) -> CcuAction {
        if self.drain_remaining > 0 {
            return CcuAction::Drain;
        }
        if self.next >= self.schedule.len() {
            return CcuAction::Done;
        }
        let (j, a) = self.schedule[self.next];
        if (j as usize) >= self.batch_boundary {
            // Next activation belongs to the next batch: wait for the PEs
            // to drain, then pay the register spill/refill overhead.
            return CcuAction::Drain;
        }
        if self.fill_remaining > 0 {
            return CcuAction::Fill;
        }
        if self.pes.iter().any(|pe| pe.fifo_full(self.cfg.fifo_depth)) {
            return CcuAction::Stall;
        }
        CcuAction::Send(j, a.raw())
    }
}

impl Clocked for System<'_> {
    fn propagate(&mut self) {
        // CCU decision from pre-edge queue occupancy…
        self.action = self.decide();
        // …then the PEs advance (their decisions also read pre-edge local
        // state; no PE reads another module's intra-cycle outputs).
        let slices = self.layer.slices();
        for (pe, slice) in self.pes.iter_mut().zip(slices) {
            pe.step(slice, self.cfg, true);
        }
    }

    fn update(&mut self) {
        self.stats.total_cycles += 1;
        match self.action {
            CcuAction::Fill => {
                self.fill_remaining -= 1;
                self.stats.lnzd_fill_cycles += 1;
            }
            CcuAction::Drain => {
                if self.drain_remaining > 0 {
                    self.drain_remaining -= 1;
                    self.stats.batch_drain_cycles += 1;
                    if self.drain_remaining == 0 {
                        // Registers swapped: next batch begins; the LNZD
                        // pipeline refills.
                        self.batch_boundary += self.cfg.act_regfile_entries * self.layer.num_pes();
                        self.fill_remaining = self.cfg.lnzd_depth(self.layer.num_pes());
                        self.stats.batches += 1;
                    }
                } else if self.all_pes_idle() {
                    // PEs just drained: start the spill/refill countdown.
                    self.drain_remaining = self.cfg.batch_overhead_cycles.max(1);
                }
                // Otherwise: waiting for PEs to drain the previous batch.
            }
            CcuAction::Send(j, raw) => {
                for pe in &mut self.pes {
                    pe.push_activation(j, Q8p8::from_raw(raw));
                }
                self.next += 1;
                self.stats.broadcasts += 1;
            }
            CcuAction::Stall => {
                self.stats.broadcast_stall_cycles += 1;
            }
            CcuAction::Done => {}
        }
    }
}

impl System<'_> {
    /// Total ALU-busy cycles accumulated across PEs (probe support).
    fn busy_total(&self) -> u64 {
        self.pes.iter().map(|pe| pe.stats.busy_cycles).sum()
    }

    /// Total queued activations across PEs (probe support).
    fn queue_total(&self) -> usize {
        self.pes.iter().map(ProcessingElement::fifo_len).sum()
    }
}

/// Observer of the running system, sampled once per cycle — the hook the
/// [`timeline`](crate::simulate_with_timeline) instrumentation plugs into.
pub(crate) trait TimelineProbe {
    /// Called after every completed cycle with cumulative counters.
    fn sample(
        &mut self,
        cycle: u64,
        busy_total: u64,
        queue_total: usize,
        broadcasts: u64,
        pes: usize,
    );
    /// Called once when the run completes.
    fn finish(
        &mut self,
        cycle: u64,
        busy_total: u64,
        queue_total: usize,
        broadcasts: u64,
        pes: usize,
    );
}

/// A probe that records nothing (the plain `simulate` path).
struct NoProbe;

impl TimelineProbe for NoProbe {
    fn sample(&mut self, _: u64, _: u64, _: usize, _: u64, _: usize) {}
    fn finish(&mut self, _: u64, _: u64, _: usize, _: u64, _: usize) {}
}

/// Quantizes `f32` activations to the Q8.8 datapath format.
fn quantize_acts(acts: &[f32]) -> Vec<Q8p8> {
    Q8p8::from_f32_slice(acts)
}

/// Runs a layer under an observer probe (crate-internal; the public
/// entry points are [`simulate`], [`simulate_fixed`] and
/// `simulate_with_timeline`).
pub(crate) fn simulate_with_probe(
    layer: &EncodedLayer,
    acts: &[Q8p8],
    cfg: &SimConfig,
    relu: bool,
    probe: &mut dyn TimelineProbe,
) -> LayerRun {
    assert_eq!(acts.len(), layer.cols(), "activation length mismatch");
    let n = layer.num_pes();
    let mut sys = System::new(layer, acts, cfg);
    let mut cycles = 0u64;
    while !sys.done() {
        assert!(
            cycles < cfg.max_cycles,
            "simulation exceeded max_cycles: modelled deadlock"
        );
        sys.propagate();
        sys.update();
        cycles += 1;
        probe.sample(
            cycles,
            sys.busy_total(),
            sys.queue_total(),
            sys.stats.broadcasts,
            n,
        );
    }
    probe.finish(
        cycles,
        sys.busy_total(),
        sys.queue_total(),
        sys.stats.broadcasts,
        n,
    );

    let mut outputs = vec![Q8p8::ZERO; layer.rows()];
    for (k, pe) in sys.pes.iter_mut().enumerate() {
        for (local, v) in pe.finalize_outputs(relu).into_iter().enumerate() {
            outputs[local * n + k] = v;
        }
    }
    let mut stats = sys.stats;
    stats.pe = sys.pes.into_iter().map(|pe| pe.stats).collect();
    LayerRun { outputs, stats }
}

/// Simulates one layer (raw M×V, no output non-linearity).
///
/// The input is quantized to Q8.8; zero-quantized activations are skipped
/// by the LNZD network exactly as in hardware.
///
/// # Panics
///
/// Panics if `acts.len() != layer.cols()` or the simulation exceeds
/// `cfg.max_cycles` (a modelled deadlock — a bug, not an input condition).
pub fn simulate(layer: &EncodedLayer, acts: &[f32], cfg: &SimConfig) -> LayerRun {
    simulate_fixed(layer, &quantize_acts(acts), cfg, false)
}

/// Simulates one layer on already-quantized activations, optionally
/// applying ReLU on writeback.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_fixed(
    layer: &EncodedLayer,
    acts: &[Q8p8],
    cfg: &SimConfig,
    relu: bool,
) -> LayerRun {
    simulate_with_probe(layer, acts, cfg, relu, &mut NoProbe)
}

/// Simulates a batch of activation vectors against one layer, one
/// independent run per item (the accelerator has no batch dimension in
/// hardware — Table IV's comparison runs EIE at batch 1 — so a batch is
/// simply back-to-back layer executions).
///
/// # Panics
///
/// Same conditions as [`simulate_fixed`], for any item.
pub fn simulate_batch(
    layer: &EncodedLayer,
    batch: &[Vec<Q8p8>],
    cfg: &SimConfig,
    relu: bool,
) -> Vec<LayerRun> {
    batch
        .iter()
        .map(|acts| simulate_fixed(layer, acts, cfg, relu))
        .collect()
}

/// Simulates a feed-forward stack of layers, applying ReLU between layers
/// (not after the last): the multi-layer mode of §IV where source and
/// destination register files swap roles each layer.
///
/// # Panics
///
/// Panics if `layers` is empty, consecutive dimensions mismatch, or the
/// input length is wrong.
pub fn simulate_network(layers: &[&EncodedLayer], input: &[f32], cfg: &SimConfig) -> NetworkRun {
    assert!(!layers.is_empty(), "network needs at least one layer");
    for pair in layers.windows(2) {
        assert_eq!(
            pair[0].rows(),
            pair[1].cols(),
            "layer dimension mismatch in network"
        );
    }
    let mut acts = quantize_acts(input);
    let mut runs = Vec::with_capacity(layers.len());
    let mut total = SimStats::default();
    for (i, layer) in layers.iter().enumerate() {
        let relu = i + 1 < layers.len();
        let run = simulate_fixed(layer, &acts, cfg, relu);
        acts = run.outputs.clone();
        total.merge(&run.stats);
        runs.push(run);
    }
    NetworkRun {
        outputs: acts,
        layers: runs,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;
    use eie_nn::CsrMatrix;

    fn small_case(pes: usize) -> (EncodedLayer, Vec<f32>) {
        let layer = Benchmark::Alex7.generate_scaled(3, 64); // 64×64 @ 9%
        let enc = compress(&layer.weights, CompressConfig::with_pes(pes));
        let acts = layer.sample_activations(5);
        (enc, acts)
    }

    #[test]
    fn outputs_match_functional_reference() {
        for pes in [1, 2, 4, 8] {
            let (enc, acts) = small_case(pes);
            let run = simulate(&enc, &acts, &SimConfig::default());
            let expected = crate::functional::execute(&enc, &quantize_acts(&acts), false);
            assert_eq!(run.outputs, expected, "mismatch at {pes} PEs");
        }
    }

    #[test]
    fn outputs_close_to_f32_reference() {
        let (enc, acts) = small_case(4);
        let run = simulate(&enc, &acts, &SimConfig::default());
        let expected = enc.spmv_f32(&acts);
        for (got, want) in run.outputs_f32().iter().zip(&expected) {
            assert!(
                (got - want).abs() < 0.25,
                "fixed-point divergence: {got} vs {want}"
            );
        }
    }

    #[test]
    fn cycle_count_independent_of_fifo_ordering_effects() {
        // Same inputs → deterministic cycle count.
        let (enc, acts) = small_case(4);
        let a = simulate(&enc, &acts, &SimConfig::default());
        let b = simulate(&enc, &acts, &SimConfig::default());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn more_pes_run_faster() {
        let layer = Benchmark::Alex7.generate_scaled(1, 16); // 256×256
        let acts = layer.sample_activations(2);
        let mut last = u64::MAX;
        for pes in [1usize, 4, 16] {
            let enc = compress(&layer.weights, CompressConfig::with_pes(pes));
            let run = simulate(&enc, &acts, &SimConfig::default());
            assert!(
                run.stats.total_cycles < last,
                "{pes} PEs did not speed up: {} vs {last}",
                run.stats.total_cycles
            );
            last = run.stats.total_cycles;
        }
    }

    #[test]
    fn deeper_fifo_improves_load_balance() {
        let layer = Benchmark::Alex7.generate_scaled(1, 16);
        let enc = compress(&layer.weights, CompressConfig::with_pes(16));
        let acts = layer.sample_activations(2);
        let eff = |depth: usize| {
            simulate(&enc, &acts, &SimConfig::with_fifo_depth(depth))
                .stats
                .load_balance_efficiency()
        };
        let (e1, e8) = (eff(1), eff(8));
        assert!(e8 > e1, "depth 8 ({e8}) should beat depth 1 ({e1})");
    }

    #[test]
    fn zero_activations_are_skipped() {
        let (enc, _) = small_case(2);
        let zeros = vec![0.0f32; enc.cols()];
        let run = simulate(&enc, &zeros, &SimConfig::default());
        assert_eq!(run.stats.broadcasts, 0);
        assert_eq!(run.stats.total_macs(), 0);
        assert!(run.outputs.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn broadcast_count_equals_nonzero_quantized_acts() {
        let (enc, acts) = small_case(2);
        let nonzero = acts
            .iter()
            .filter(|&&a| !Q8p8::from_f32(a).is_zero())
            .count() as u64;
        let run = simulate(&enc, &acts, &SimConfig::default());
        assert_eq!(run.stats.broadcasts, nonzero);
    }

    #[test]
    fn stats_macs_match_encoding_work() {
        let (enc, acts) = small_case(4);
        let run = simulate(&enc, &acts, &SimConfig::default());
        // Each broadcast column contributes exactly its encoded entries.
        let mut expected = 0u64;
        for (j, &a) in acts.iter().enumerate() {
            if Q8p8::from_f32(a).is_zero() {
                continue;
            }
            for slice in enc.slices() {
                expected += slice.col_entries(j).len() as u64;
            }
        }
        assert_eq!(run.stats.total_macs(), expected);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let m = CsrMatrix::from_triplets(2, 1, &[(0, 0, -1.0), (1, 0, 1.0)]);
        let enc = compress(&m, CompressConfig::with_pes(1));
        let run = simulate_fixed(&enc, &[Q8p8::from_f32(2.0)], &SimConfig::default(), true);
        assert_eq!(run.outputs[0], Q8p8::ZERO);
        assert!(run.outputs[1].to_f32() > 0.0);
    }

    #[test]
    fn network_chains_layers_with_relu_between() {
        let l1 = compress(
            &CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (1, 1, 1.0)]),
            CompressConfig::with_pes(2),
        );
        let l2 = compress(
            &CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]),
            CompressConfig::with_pes(2),
        );
        let run = simulate_network(&[&l1, &l2], &[1.0, 1.0], &SimConfig::default());
        // Layer 1 raw: [-1, 1] → ReLU → [0, 1]; layer 2: 0 + 1 = 1.
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0].to_f32(), 1.0);
        assert_eq!(run.layers.len(), 2);
        assert_eq!(
            run.total.total_cycles,
            run.layers[0].stats.total_cycles + run.layers[1].stats.total_cycles
        );
    }

    #[test]
    fn long_inputs_trigger_batching() {
        // Tiny register file → many batches.
        let layer = Benchmark::Alex7.generate_scaled(7, 32); // 128×128
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let acts = vec![1.0f32; 128];
        let cfg = SimConfig {
            act_regfile_entries: 16, // span 32 per batch at 2 PEs
            ..SimConfig::default()
        };
        let run = simulate(&enc, &acts, &cfg);
        assert_eq!(run.stats.batches, 4);
        assert!(run.stats.batch_drain_cycles > 0);
        // Output must still be correct.
        let expected = crate::functional::execute(&enc, &quantize_acts(&acts), false);
        assert_eq!(run.outputs, expected);
    }

    #[test]
    fn lnzd_fill_costs_log4_cycles() {
        let (enc, acts) = small_case(16);
        let tree = simulate(&enc, &acts, &SimConfig::default());
        let oracle_cfg = SimConfig {
            lnzd_tree: false,
            ..SimConfig::default()
        };
        let oracle = simulate(&enc, &acts, &oracle_cfg);
        assert_eq!(tree.stats.lnzd_fill_cycles, 2); // log4(16)
        assert_eq!(oracle.stats.lnzd_fill_cycles, 0);
        assert!(tree.stats.total_cycles >= oracle.stats.total_cycles);
        assert_eq!(tree.outputs, oracle.outputs);
    }

    #[test]
    fn broadcast_schedule_lists_nonzeros_in_index_order() {
        let acts = [
            Q8p8::ZERO,
            Q8p8::from_f32(1.5),
            Q8p8::ZERO,
            Q8p8::from_f32(-0.5),
        ];
        let sched = broadcast_schedule(&acts);
        assert_eq!(
            sched,
            vec![(1, Q8p8::from_f32(1.5)), (3, Q8p8::from_f32(-0.5))]
        );
        assert!(broadcast_schedule(&[Q8p8::ZERO; 4]).is_empty());
    }

    #[test]
    fn batch_runs_match_per_item_simulation() {
        let (enc, acts) = small_case(4);
        let batch: Vec<Vec<Q8p8>> = (0..3)
            .map(|i| {
                quantize_acts(&acts)
                    .iter()
                    .map(|a| if i == 2 { Q8p8::ZERO } else { *a })
                    .collect()
            })
            .collect();
        let runs = simulate_batch(&enc, &batch, &SimConfig::default(), false);
        assert_eq!(runs.len(), 3);
        for (item, run) in batch.iter().zip(&runs) {
            let single = simulate_fixed(&enc, item, &SimConfig::default(), false);
            assert_eq!(run.outputs, single.outputs);
            assert_eq!(run.stats, single.stats);
        }
        assert!(runs[2].outputs.iter().all(|v| v.is_zero()));
    }

    #[test]
    #[should_panic(expected = "activation length mismatch")]
    fn rejects_wrong_activation_length() {
        let (enc, _) = small_case(2);
        let _ = simulate(&enc, &[1.0], &SimConfig::default());
    }
}
