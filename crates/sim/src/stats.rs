//! Activity counters gathered by the cycle simulator.
//!
//! Every counter corresponds to a physical event the `eie-energy` models
//! price: SRAM row fetches, register-file accesses, MACs, FIFO pushes.
//! The derived metrics reproduce the paper's measurements: load-balance
//! efficiency (Fig. 8/13), actual-vs-theoretical time (Table IV), and the
//! SRAM read counts of the width sweep (Fig. 9).

use std::fmt;

/// Per-PE activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Cycles the arithmetic unit issued an entry (real or padding).
    pub busy_cycles: u64,
    /// Active cycles the arithmetic unit had nothing to issue.
    pub starved_cycles: u64,
    /// Cycles lost to the read-after-write hazard when the bypass path is
    /// disabled (ablation).
    pub hazard_stall_cycles: u64,
    /// Multiply-accumulates on real (non-padding) entries.
    pub real_macs: u64,
    /// Wasted multiply-accumulates on padding zeros (Fig. 12's overhead).
    pub padding_macs: u64,
    /// Times two adjacent entries targeted the same accumulator and the
    /// bypass path forwarded the sum.
    pub bypass_hits: u64,
    /// Sparse-matrix SRAM row fetches (one row = `width/8` entries).
    pub spmat_row_reads: u64,
    /// Pointer SRAM bank reads (two per column lookup when banked).
    pub ptr_bank_reads: u64,
    /// Activation-queue pushes received from the broadcast.
    pub queue_pushes: u64,
    /// Activation-queue pops (columns started).
    pub queue_pops: u64,
    /// Destination-accumulator register reads.
    pub dest_reads: u64,
    /// Destination-accumulator register writes.
    pub dest_writes: u64,
    /// Output activation writebacks at the end of the layer.
    pub output_writes: u64,
    /// High-water mark of the activation queue.
    pub max_fifo_occupancy: usize,
}

impl PeStats {
    /// Total multiply-accumulate operations, padding included.
    pub fn total_macs(&self) -> u64 {
        self.real_macs + self.padding_macs
    }
}

/// Whole-accelerator statistics for one layer execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles from start to all-idle.
    pub total_cycles: u64,
    /// Non-zero activations broadcast by the CCU.
    pub broadcasts: u64,
    /// Cycles the broadcast stalled because some PE's queue was full.
    pub broadcast_stall_cycles: u64,
    /// Cycles spent filling the LNZD quadtree pipeline.
    pub lnzd_fill_cycles: u64,
    /// Activation batches processed (input vectors longer than the
    /// distributed register file run in several batches, §IV).
    pub batches: u64,
    /// Cycles spent draining/refilling activation registers at batch
    /// boundaries.
    pub batch_drain_cycles: u64,
    /// Per-PE counters.
    pub pe: Vec<PeStats>,
}

impl SimStats {
    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pe.len()
    }

    /// Total MACs across PEs, padding included.
    pub fn total_macs(&self) -> u64 {
        self.pe.iter().map(PeStats::total_macs).sum()
    }

    /// Total real (non-padding) MACs across PEs.
    pub fn real_macs(&self) -> u64 {
        self.pe.iter().map(|p| p.real_macs).sum()
    }

    /// Total padding MACs across PEs.
    pub fn padding_macs(&self) -> u64 {
        self.pe.iter().map(|p| p.padding_macs).sum()
    }

    /// Total sparse-matrix SRAM row reads.
    pub fn spmat_row_reads(&self) -> u64 {
        self.pe.iter().map(|p| p.spmat_row_reads).sum()
    }

    /// Total pointer-bank reads.
    pub fn ptr_bank_reads(&self) -> u64 {
        self.pe.iter().map(|p| p.ptr_bank_reads).sum()
    }

    /// The paper's load-balance efficiency (Fig. 8/13): busy ALU cycles
    /// over total ALU cycles, averaged across PEs —
    /// `1 − bubble_cycles / total_cycles`.
    pub fn load_balance_efficiency(&self) -> f64 {
        if self.total_cycles == 0 || self.pe.is_empty() {
            return 1.0;
        }
        let busy: u64 = self.pe.iter().map(|p| p.busy_cycles).sum();
        busy as f64 / (self.total_cycles as f64 * self.pe.len() as f64)
    }

    /// Real work over total work (Fig. 12): `real / (real + padding)`.
    pub fn real_work_ratio(&self) -> f64 {
        let total = self.total_macs();
        if total == 0 {
            return 1.0;
        }
        self.real_macs() as f64 / total as f64
    }

    /// The perfectly-balanced, stall-free cycle count: total entries
    /// (padding included, as the hardware must process them) divided by
    /// PE count. Table IV's "theoretical time" is this at 800 MHz.
    pub fn theoretical_cycles(&self) -> u64 {
        if self.pe.is_empty() {
            return 0;
        }
        self.total_macs().div_ceil(self.pe.len() as u64)
    }

    /// Actual over theoretical cycles (the paper reports ~1.1×).
    pub fn overhead_factor(&self) -> f64 {
        let t = self.theoretical_cycles();
        if t == 0 {
            return 1.0;
        }
        self.total_cycles as f64 / t as f64
    }

    /// Wall-clock seconds at `clock_hz`.
    pub fn seconds_at(&self, clock_hz: f64) -> f64 {
        self.total_cycles as f64 / clock_hz
    }

    /// Giga-operations per second on the *compressed* workload (2 ops per
    /// MAC), at `clock_hz`.
    pub fn gops_at(&self, clock_hz: f64) -> f64 {
        let secs = self.seconds_at(clock_hz);
        if secs == 0.0 {
            return 0.0;
        }
        (2 * self.real_macs()) as f64 / secs / 1e9
    }

    /// Merges another run's statistics into this one (multi-layer runs).
    ///
    /// # Panics
    ///
    /// Panics if PE counts differ (and both are non-empty).
    pub fn merge(&mut self, other: &SimStats) {
        if self.pe.is_empty() {
            self.pe = vec![PeStats::default(); other.pe.len()];
        }
        if !other.pe.is_empty() {
            assert_eq!(self.pe.len(), other.pe.len(), "PE count mismatch");
        }
        self.total_cycles += other.total_cycles;
        self.broadcasts += other.broadcasts;
        self.broadcast_stall_cycles += other.broadcast_stall_cycles;
        self.lnzd_fill_cycles += other.lnzd_fill_cycles;
        self.batches += other.batches;
        self.batch_drain_cycles += other.batch_drain_cycles;
        for (mine, theirs) in self.pe.iter_mut().zip(&other.pe) {
            mine.busy_cycles += theirs.busy_cycles;
            mine.starved_cycles += theirs.starved_cycles;
            mine.hazard_stall_cycles += theirs.hazard_stall_cycles;
            mine.real_macs += theirs.real_macs;
            mine.padding_macs += theirs.padding_macs;
            mine.bypass_hits += theirs.bypass_hits;
            mine.spmat_row_reads += theirs.spmat_row_reads;
            mine.ptr_bank_reads += theirs.ptr_bank_reads;
            mine.queue_pushes += theirs.queue_pushes;
            mine.queue_pops += theirs.queue_pops;
            mine.dest_reads += theirs.dest_reads;
            mine.dest_writes += theirs.dest_writes;
            mine.output_writes += theirs.output_writes;
            mine.max_fifo_occupancy = mine.max_fifo_occupancy.max(theirs.max_fifo_occupancy);
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} MACs ({:.1}% padding), load balance {:.1}%, {:.2}x over theoretical",
            self.total_cycles,
            self.total_macs(),
            (1.0 - self.real_work_ratio()) * 100.0,
            self.load_balance_efficiency() * 100.0,
            self.overhead_factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(busy: &[u64], total: u64) -> SimStats {
        SimStats {
            total_cycles: total,
            pe: busy
                .iter()
                .map(|&b| PeStats {
                    busy_cycles: b,
                    real_macs: b,
                    ..PeStats::default()
                })
                .collect(),
            ..SimStats::default()
        }
    }

    #[test]
    fn load_balance_is_mean_busy_fraction() {
        let s = stats_with(&[50, 100], 100);
        assert!((s.load_balance_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance_is_one() {
        let s = stats_with(&[100, 100, 100], 100);
        assert_eq!(s.load_balance_efficiency(), 1.0);
        assert_eq!(s.overhead_factor(), 1.0);
    }

    #[test]
    fn real_work_ratio_accounts_padding() {
        let mut s = stats_with(&[90], 100);
        s.pe[0].padding_macs = 10;
        assert!((s.real_work_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn theoretical_cycles_divides_evenly() {
        let s = stats_with(&[30, 50], 60);
        assert_eq!(s.theoretical_cycles(), 40);
        assert!((s.overhead_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gops_counts_two_ops_per_mac() {
        let s = stats_with(&[400], 400);
        // 400 MACs in 400 cycles at 800 MHz = 0.5 µs → 800 MOP/s = 1.6 GOPS.
        assert!((s.gops_at(800e6) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = stats_with(&[10, 20], 25);
        let b = stats_with(&[5, 5], 10);
        a.merge(&b);
        assert_eq!(a.total_cycles, 35);
        assert_eq!(a.pe[0].busy_cycles, 15);
        assert_eq!(a.pe[1].real_macs, 25);
    }

    #[test]
    fn empty_stats_have_sane_derived_metrics() {
        let s = SimStats::default();
        assert_eq!(s.load_balance_efficiency(), 1.0);
        assert_eq!(s.real_work_ratio(), 1.0);
        assert_eq!(s.theoretical_cycles(), 0);
        assert_eq!(s.gops_at(800e6), 0.0);
    }
}
