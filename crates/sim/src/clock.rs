//! The two-phase clocking discipline of the paper's simulator (§V).
//!
//! "Each hardware module is abstracted as an object that implements two
//! abstract methods: propagate and update, corresponding to combination
//! logic and the flip-flop in RTL."
//!
//! [`Clocked`] captures that contract; [`run_until`] is the generic clock
//! driver. The EIE system model implements `Clocked` for the whole
//! accelerator (PEs + CCU), keeping each cycle's decisions a pure function
//! of the pre-edge state.

/// A synchronous hardware module with separate combinational and
/// sequential phases.
///
/// One simulated cycle is `propagate()` followed by `update()`:
///
/// * `propagate` evaluates combinational logic — it may *read* any state
///   and compute next-state values, but must not make them observable;
/// * `update` is the clock edge — it commits the next-state values.
///
/// Keeping the phases separate makes module evaluation order within a
/// cycle irrelevant, exactly like RTL.
pub trait Clocked {
    /// Evaluates combinational logic from current state into next state.
    fn propagate(&mut self);
    /// Commits next state (the rising clock edge).
    fn update(&mut self);
}

/// Drives `module` until `done` returns true, up to `max_cycles`.
///
/// Returns the number of cycles executed, or `None` if the budget was
/// exhausted before completion (a hang — e.g. deadlocked backpressure).
///
/// # Example
///
/// ```
/// use eie_sim::{run_until, Clocked};
///
/// struct Counter { value: u32, next: u32 }
/// impl Clocked for Counter {
///     fn propagate(&mut self) { self.next = self.value + 1; }
///     fn update(&mut self) { self.value = self.next; }
/// }
///
/// let mut c = Counter { value: 0, next: 0 };
/// let cycles = run_until(&mut c, 1000, |c| c.value == 42);
/// assert_eq!(cycles, Some(42));
/// ```
pub fn run_until<M: Clocked>(
    module: &mut M,
    max_cycles: u64,
    mut done: impl FnMut(&M) -> bool,
) -> Option<u64> {
    let mut cycles = 0u64;
    while !done(module) {
        if cycles >= max_cycles {
            return None;
        }
        module.propagate();
        module.update();
        cycles += 1;
    }
    Some(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Shifter {
        stages: [u8; 3],
        next: [u8; 3],
        input: u8,
    }

    impl Clocked for Shifter {
        fn propagate(&mut self) {
            self.next = [self.input, self.stages[0], self.stages[1]];
        }
        fn update(&mut self) {
            self.stages = self.next;
        }
    }

    #[test]
    fn two_phase_gives_register_semantics() {
        let mut s = Shifter {
            stages: [0; 3],
            next: [0; 3],
            input: 7,
        };
        // After one cycle only stage 0 sees the input (no fall-through).
        s.propagate();
        s.update();
        assert_eq!(s.stages, [7, 0, 0]);
        s.input = 9;
        s.propagate();
        s.update();
        assert_eq!(s.stages, [9, 7, 0]);
    }

    #[test]
    fn run_until_counts_cycles() {
        let mut s = Shifter {
            stages: [0; 3],
            next: [0; 3],
            input: 1,
        };
        let n = run_until(&mut s, 100, |s| s.stages[2] == 1);
        assert_eq!(n, Some(3));
    }

    #[test]
    fn run_until_reports_hang() {
        let mut s = Shifter {
            stages: [0; 3],
            next: [0; 3],
            input: 0,
        };
        assert_eq!(run_until(&mut s, 10, |s| s.stages[2] == 1), None);
    }

    #[test]
    fn run_until_zero_cycles_when_already_done() {
        let mut s = Shifter {
            stages: [5, 5, 5],
            next: [0; 3],
            input: 0,
        };
        assert_eq!(run_until(&mut s, 10, |_| true), Some(0));
    }
}
