//! Simulator configuration: the design parameters of §IV/§VI.

/// Micro-architectural parameters of the simulated accelerator.
///
/// Defaults match the paper's chosen design point: FIFO depth 8 (Fig. 8),
/// 64-bit sparse-matrix SRAM interface (Fig. 9), 800 MHz clock, 64-entry
/// activation register file per PE, banked pointer SRAM, accumulator
/// bypass, and a real (non-oracle) LNZD broadcast tree with fan-in 4.
///
/// The boolean knobs exist for the ablation studies: disabling them costs
/// cycles exactly where the hardware feature saves them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Activation-queue depth per PE (paper sweeps 1..256, picks 8).
    pub fifo_depth: usize,
    /// Sparse-matrix SRAM interface width in bits (paper sweeps 32..512,
    /// picks 64). Each entry is 8 bits, so `width/8` entries per fetch.
    pub spmat_width_bits: u32,
    /// Core clock (Hz). The paper's PE runs at 800 MHz in 45 nm.
    pub clock_hz: f64,
    /// Activation register-file entries per PE (source/destination files,
    /// 64 each in the paper). Inputs beyond `act_regfile_entries × N`
    /// positions are processed in batches with an SRAM spill/refill drain.
    pub act_regfile_entries: usize,
    /// Pointer SRAM split into even/odd banks so `p_j`/`p_{j+1}` read in
    /// one cycle (paper §IV). `false` serializes the two reads (ablation).
    pub ptr_banked: bool,
    /// Accumulator bypass path between adjacent same-row MACs (paper §VI).
    /// `false` inserts a 1-cycle hazard stall instead (ablation).
    pub accumulator_bypass: bool,
    /// Model the LNZD quadtree fill latency (`ceil(log4(N))` cycles) on
    /// start-up and after each batch drain. `false` is the oracle
    /// broadcast of the ablation study.
    pub lnzd_tree: bool,
    /// Cycles to drain/refill activation registers at a batch boundary.
    pub batch_overhead_cycles: u64,
    /// Safety limit for [`run_until`](crate::run_until).
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            fifo_depth: 8,
            spmat_width_bits: 64,
            clock_hz: 800e6,
            act_regfile_entries: 64,
            ptr_banked: true,
            accumulator_bypass: true,
            lnzd_tree: true,
            batch_overhead_cycles: 64,
            max_cycles: 2_000_000_000,
        }
    }
}

impl SimConfig {
    /// A config with a different FIFO depth (the Fig. 8 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_fifo_depth(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be non-zero");
        Self {
            fifo_depth: depth,
            ..Self::default()
        }
    }

    /// A config with a different sparse-matrix SRAM width (the Fig. 9
    /// sweep).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a positive multiple of 8.
    pub fn with_spmat_width(bits: u32) -> Self {
        assert!(
            bits >= 8 && bits.is_multiple_of(8),
            "width must be a multiple of 8"
        );
        Self {
            spmat_width_bits: bits,
            ..Self::default()
        }
    }

    /// Encoded entries fetched per sparse-matrix SRAM read.
    pub fn entries_per_fetch(&self) -> usize {
        (self.spmat_width_bits / 8) as usize
    }

    /// LNZD quadtree depth for `n` PEs: `ceil(log4(max(n,1)))`.
    pub fn lnzd_depth(&self, num_pes: usize) -> u64 {
        if !self.lnzd_tree || num_pes <= 1 {
            return 0;
        }
        let mut depth = 0u64;
        let mut reach = 1usize;
        while reach < num_pes {
            reach *= 4;
            depth += 1;
        }
        depth
    }

    /// Converts a cycle count to microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_design_point() {
        let c = SimConfig::default();
        assert_eq!(c.fifo_depth, 8);
        assert_eq!(c.spmat_width_bits, 64);
        assert_eq!(c.entries_per_fetch(), 8);
        assert_eq!(c.clock_hz, 800e6);
        assert!(c.ptr_banked && c.accumulator_bypass && c.lnzd_tree);
    }

    #[test]
    fn lnzd_depth_is_log4() {
        let c = SimConfig::default();
        assert_eq!(c.lnzd_depth(1), 0);
        assert_eq!(c.lnzd_depth(4), 1);
        assert_eq!(c.lnzd_depth(16), 2);
        assert_eq!(c.lnzd_depth(64), 3);
        assert_eq!(c.lnzd_depth(65), 4);
        assert_eq!(c.lnzd_depth(256), 4);
    }

    #[test]
    fn lnzd_depth_zero_for_oracle() {
        let c = SimConfig {
            lnzd_tree: false,
            ..SimConfig::default()
        };
        assert_eq!(c.lnzd_depth(256), 0);
    }

    #[test]
    fn cycles_to_us_at_800mhz() {
        let c = SimConfig::default();
        assert!((c.cycles_to_us(800) - 1.0).abs() < 1e-12);
        assert!((c.cycles_to_us(24_000) - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_unaligned_width() {
        let _ = SimConfig::with_spmat_width(12);
    }
}
