//! Cycle-accurate simulator for the EIE accelerator (paper §IV–§V).
//!
//! The paper's primary evaluation vehicle is "a custom cycle-accurate C++
//! simulator … aimed to model the RTL behavior of synchronous circuits"
//! where "each hardware module is abstracted as an object that implements
//! two abstract methods: propagate and update" (§V). This crate rebuilds
//! that simulator in Rust:
//!
//! * a [`Clocked`] two-phase (propagate/update) clocking discipline,
//! * the per-PE pipeline of Fig. 4(b): activation queue (FIFO with
//!   broadcast backpressure), pointer-read unit (even/odd banked SRAM),
//!   sparse-matrix read unit (64-bit wide SRAM rows), arithmetic unit
//!   (codebook decode, 16-bit fixed-point MAC, accumulator bypass), and
//!   the destination-activation registers,
//! * the central control unit broadcasting non-zero activations found by
//!   the leading non-zero detection (LNZD) quadtree,
//! * activity counters for every structure, feeding the `eie-energy`
//!   models,
//! * a bit-exact [`functional`] reference used to verify the cycle model
//!   (the role the golden Caffe model plays for the paper's RTL).
//!
//! # Example
//!
//! ```
//! use eie_compress::{compress, CompressConfig};
//! use eie_nn::zoo::Benchmark;
//! use eie_sim::{simulate, SimConfig};
//!
//! let layer = Benchmark::Alex7.generate_scaled(1, 32); // 128×128 @ 9%
//! let enc = compress(&layer.weights, CompressConfig::with_pes(4));
//! let acts = layer.sample_activations(7);
//! let run = simulate(&enc, &acts, &SimConfig::default());
//! assert_eq!(run.outputs_f32().len(), 128);
//! assert!(run.stats.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod config;
pub mod functional;
mod lnzd;
mod pe;
mod stats;
mod system;
mod timeline;

pub use clock::{run_until, Clocked};
pub use config::SimConfig;
pub use lnzd::LnzdTree;
pub use pe::ProcessingElement;
pub use stats::{PeStats, SimStats};
pub use system::{
    broadcast_schedule, simulate, simulate_batch, simulate_fixed, simulate_network, LayerRun,
    NetworkRun,
};
pub use timeline::{simulate_with_timeline, Timeline};
