//! The processing element: the pipeline of paper Fig. 4(b).
//!
//! Data path per cycle (throughput 1 encoded entry / cycle):
//!
//! ```text
//!  Act Queue → Pointer Read (even/odd banks) → Sparse-Matrix Read (64b)
//!            → Arithmetic (codebook decode, 16b MAC, bypass) → Act Regs
//! ```
//!
//! The pointer-read unit works one column ahead of the arithmetic unit:
//! while the ALU drains the current column's entries, the pointers of the
//! next queued column are fetched, so pointer reads are hidden behind
//! arithmetic except when columns are empty (then the PE can retire at
//! most one empty column per cycle — the load-balance ceiling that makes
//! NT-We scale poorly, §VI-C).

use std::collections::VecDeque;

use eie_compress::{PeSlice, CODEBOOK_SIZE};
use eie_fixed::{Accum32, Q8p8};

use crate::{PeStats, SimConfig};

/// A fetched column waiting to be issued to the arithmetic unit: the
/// output register of the pointer-read unit.
#[derive(Debug, Clone, Copy)]
struct FetchedColumn {
    act: Q8p8,
    start: u32,
    end: u32,
}

/// The column currently draining through the arithmetic unit.
#[derive(Debug, Clone, Copy)]
struct ActiveColumn {
    act: Q8p8,
    /// Absolute index of the next entry to issue.
    next: u32,
    /// One past the last entry of the column.
    end: u32,
    /// First entry of the column (SRAM row-fetch alignment).
    span_start: u32,
    /// Local-row cursor (running sum of the z array, §III-C).
    cursor: u32,
}

/// One EIE processing element.
///
/// Owns its slice's accumulators and all per-PE pipeline state; stepped
/// once per cycle by the system model. All decisions in a step derive from
/// the state at the start of the cycle (register semantics).
#[derive(Debug)]
pub struct ProcessingElement {
    codebook: [Q8p8; CODEBOOK_SIZE],
    fifo: VecDeque<(u32, Q8p8)>,
    /// Pointer-read output register.
    fetched: Option<FetchedColumn>,
    /// In-flight unbanked pointer read: (column, cycles remaining).
    ptr_in_flight: Option<(FetchedColumn, u8)>,
    alu: Option<ActiveColumn>,
    accum: Vec<Accum32>,
    /// Accumulator targeted by the previous MAC (bypass/hazard detection).
    last_row: Option<u32>,
    /// A read-after-write hazard stalls the next issue (bypass disabled).
    hazard_pending: bool,
    /// Activity counters.
    pub stats: PeStats,
}

impl ProcessingElement {
    /// Creates a PE with cleared accumulators ("initialized to zero before
    /// each layer computation", §III-C).
    pub fn new(local_rows: usize, codebook: [Q8p8; CODEBOOK_SIZE]) -> Self {
        Self {
            codebook,
            fifo: VecDeque::new(),
            fetched: None,
            ptr_in_flight: None,
            alu: None,
            accum: vec![Accum32::zero(); local_rows],
            last_row: None,
            hazard_pending: false,
            stats: PeStats::default(),
        }
    }

    /// Current queue occupancy.
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }

    /// True if a broadcast this cycle must stall ("the broadcast is
    /// disabled if any PE has a full queue", §IV).
    pub fn fifo_full(&self, depth: usize) -> bool {
        self.fifo.len() >= depth
    }

    /// Receives a broadcast non-zero activation into the queue.
    /// Called by the CCU in the commit phase.
    pub fn push_activation(&mut self, col: u32, act: Q8p8) {
        self.fifo.push_back((col, act));
        self.stats.queue_pushes += 1;
        self.stats.max_fifo_occupancy = self.stats.max_fifo_occupancy.max(self.fifo.len());
    }

    /// True when the whole pipeline is drained.
    pub fn idle(&self) -> bool {
        self.fifo.is_empty()
            && self.fetched.is_none()
            && self.ptr_in_flight.is_none()
            && self.alu_done()
            && !self.hazard_pending
    }

    fn alu_done(&self) -> bool {
        match self.alu {
            None => true,
            Some(a) => a.next >= a.end,
        }
    }

    /// Advances the PE by one cycle. `active` marks cycles that count
    /// toward starvation (the layer is still in flight system-wide).
    pub fn step(&mut self, slice: &PeSlice, cfg: &SimConfig, active: bool) {
        // ---- Arithmetic unit ------------------------------------------
        let mut promoted_fetched = false;
        if self.hazard_pending {
            // Read-after-write hazard (bypass disabled): one dead cycle.
            self.hazard_pending = false;
            self.stats.hazard_stall_cycles += 1;
        } else if !self.alu_done() {
            self.issue_entry(slice, cfg);
        } else if let Some(f) = self.fetched.take() {
            promoted_fetched = true;
            if f.start < f.end {
                self.alu = Some(ActiveColumn {
                    act: f.act,
                    next: f.start,
                    end: f.end,
                    span_start: f.start,
                    cursor: 0,
                });
                self.issue_entry(slice, cfg);
            } else {
                // Empty column: retired without arithmetic, ALU idles.
                self.alu = None;
                if active {
                    self.stats.starved_cycles += 1;
                }
            }
        } else if active {
            self.stats.starved_cycles += 1;
        }

        // ---- Pointer-read unit (one column of lookahead) --------------
        if let Some((col, remaining)) = self.ptr_in_flight.take() {
            // Second cycle of an unbanked double read.
            if remaining > 1 {
                self.ptr_in_flight = Some((col, remaining - 1));
            } else {
                self.fetched = Some(col);
            }
        } else if (self.fetched.is_none() || promoted_fetched) && !self.fifo.is_empty() {
            let (col, act) = self.fifo.pop_front().expect("checked non-empty");
            self.stats.queue_pops += 1;
            let (start, end) = slice.col_span(col as usize);
            self.stats.ptr_bank_reads += 2; // p_j and p_{j+1}
            let fetched = FetchedColumn {
                act,
                start: start as u32,
                end: end as u32,
            };
            if cfg.ptr_banked {
                self.fetched = Some(fetched);
            } else {
                // Single-banked pointer SRAM serializes the two reads.
                self.ptr_in_flight = Some((fetched, 1));
            }
        }
    }

    /// Issues one encoded entry into the MAC datapath.
    fn issue_entry(&mut self, slice: &PeSlice, cfg: &SimConfig) {
        let job = self.alu.as_mut().expect("issue requires an active column");
        let entry = slice.entries()[job.next as usize];
        let row = job.cursor + entry.zrun as u32;

        // Sparse-matrix SRAM row fetch: entries are packed width/8 per row.
        let epf = cfg.entries_per_fetch() as u32;
        if job.next == job.span_start || job.next.is_multiple_of(epf) {
            self.stats.spmat_row_reads += 1;
        }

        // Codebook decode + MAC (padding zeros decode to 0 and are wasted
        // work: they occupy the datapath exactly like real entries).
        let weight = self.codebook[entry.code as usize];
        let same_accumulator = self.last_row == Some(row);
        if same_accumulator {
            if cfg.accumulator_bypass {
                self.stats.bypass_hits += 1;
            } else {
                // The *next* issue must wait for the write to land.
                self.hazard_pending = true;
            }
        } else {
            self.stats.dest_reads += 1;
        }
        self.accum[row as usize].mac(weight, job.act);
        self.stats.dest_writes += 1;
        self.stats.busy_cycles += 1;
        if entry.is_padding() {
            self.stats.padding_macs += 1;
        } else {
            self.stats.real_macs += 1;
        }

        self.last_row = Some(row);
        job.cursor = row + 1;
        job.next += 1;
        if job.next >= job.end {
            self.alu = None;
        }
    }

    /// Reads back the output activations at the end of the layer,
    /// optionally applying ReLU (the hardware's writeback non-linearity).
    pub fn finalize_outputs(&mut self, relu: bool) -> Vec<Q8p8> {
        self.accum
            .iter()
            .map(|acc| {
                self.stats.output_writes += 1;
                let v = acc.to_fix16::<8>();
                if relu {
                    v.relu()
                } else {
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{encode_with_codebook, Codebook, CompressConfig};
    use eie_nn::CsrMatrix;

    fn one_pe_layer(
        triplets: &[(usize, usize, f32)],
        rows: usize,
        cols: usize,
    ) -> eie_compress::EncodedLayer {
        let m = CsrMatrix::from_triplets(rows, cols, triplets);
        encode_with_codebook(
            &m,
            Codebook::from_centroids(&[1.0, 2.0, -1.0]),
            CompressConfig::with_pes(1),
        )
    }

    fn drive(pe: &mut ProcessingElement, slice: &PeSlice, cfg: &SimConfig, cap: usize) -> usize {
        let mut cycles = 0;
        while !pe.idle() && cycles < cap {
            pe.step(slice, cfg, true);
            cycles += 1;
        }
        assert!(cycles < cap, "PE did not drain");
        cycles
    }

    #[test]
    fn single_column_single_entry() {
        let layer = one_pe_layer(&[(2, 0, 1.0)], 4, 1);
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(4, cb);
        pe.push_activation(0, Q8p8::from_f32(2.0));
        let cfg = SimConfig::default();
        let cycles = drive(&mut pe, layer.slice(0), &cfg, 100);
        // 1 cycle pointer read + 1 cycle MAC.
        assert_eq!(cycles, 2);
        assert_eq!(pe.stats.real_macs, 1);
        assert_eq!(pe.stats.queue_pops, 1);
        assert_eq!(pe.stats.ptr_bank_reads, 2);
        let out = pe.finalize_outputs(false);
        assert_eq!(out[2].to_f32(), 2.0); // 1.0 * 2.0
        assert_eq!(out[0], Q8p8::ZERO);
    }

    #[test]
    fn pipeline_overlaps_pointer_reads() {
        // Two queued columns of 3 entries each: pointer read of the second
        // column hides behind the first column's MACs.
        let layer = one_pe_layer(
            &[
                (0, 0, 1.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (0, 1, 2.0),
                (1, 1, 2.0),
                (2, 1, 2.0),
            ],
            3,
            2,
        );
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(3, cb);
        pe.push_activation(0, Q8p8::ONE);
        pe.push_activation(1, Q8p8::ONE);
        let cfg = SimConfig::default();
        let cycles = drive(&mut pe, layer.slice(0), &cfg, 100);
        // 1 (ptr col0) + 3 MACs + 3 MACs; col1's pointer read overlapped.
        assert_eq!(cycles, 7);
        assert_eq!(pe.stats.real_macs, 6);
    }

    #[test]
    fn empty_columns_retire_one_per_cycle() {
        let layer = one_pe_layer(&[(0, 3, 1.0)], 2, 4);
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(2, cb);
        for j in 0..4 {
            pe.push_activation(j, Q8p8::ONE);
        }
        let cfg = SimConfig::default();
        let cycles = drive(&mut pe, layer.slice(0), &cfg, 100);
        // Columns 0..3 are empty; they drain at 1/cycle through the
        // pointer unit. Final column costs 1 ptr + 1 MAC.
        assert!(cycles >= 5, "got {cycles}");
        assert_eq!(pe.stats.real_macs, 1);
        assert!(pe.stats.starved_cycles > 0);
    }

    #[test]
    fn unbanked_pointer_reads_cost_an_extra_cycle() {
        let layer = one_pe_layer(&[(0, 0, 1.0)], 1, 1);
        let cb = layer.codebook().to_fix16::<8>();
        let banked_cycles = {
            let mut pe = ProcessingElement::new(1, cb);
            pe.push_activation(0, Q8p8::ONE);
            drive(&mut pe, layer.slice(0), &SimConfig::default(), 100)
        };
        let unbanked_cycles = {
            let mut pe = ProcessingElement::new(1, cb);
            pe.push_activation(0, Q8p8::ONE);
            let cfg = SimConfig {
                ptr_banked: false,
                ..SimConfig::default()
            };
            drive(&mut pe, layer.slice(0), &cfg, 100)
        };
        assert_eq!(unbanked_cycles, banked_cycles + 1);
    }

    #[test]
    fn bypass_counts_adjacent_same_row() {
        // Row 0 is the only entry of both columns → back-to-back MACs to
        // the same accumulator.
        let layer = one_pe_layer(&[(0, 0, 1.0), (0, 1, 2.0)], 1, 2);
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(1, cb);
        pe.push_activation(0, Q8p8::ONE);
        pe.push_activation(1, Q8p8::ONE);
        let cfg = SimConfig::default();
        let c_bypass = drive(&mut pe, layer.slice(0), &cfg, 100);
        assert_eq!(pe.stats.bypass_hits, 1);
        assert_eq!(pe.stats.hazard_stall_cycles, 0);

        let mut pe2 = ProcessingElement::new(1, cb);
        pe2.push_activation(0, Q8p8::ONE);
        pe2.push_activation(1, Q8p8::ONE);
        let cfg2 = SimConfig {
            accumulator_bypass: false,
            ..SimConfig::default()
        };
        let c_hazard = drive(&mut pe2, layer.slice(0), &cfg2, 100);
        assert_eq!(pe2.stats.hazard_stall_cycles, 1);
        assert_eq!(c_hazard, c_bypass + 1);
        // Both compute the same value.
        assert_eq!(pe.finalize_outputs(false), pe2.finalize_outputs(false));
    }

    #[test]
    fn spmat_row_reads_respect_width() {
        // 10 entries in one column: at 64-bit width (8 entries/row) that
        // is 2 row fetches (alignment starts at entry 0).
        let triplets: Vec<(usize, usize, f32)> = (0..10).map(|r| (r, 0usize, 1.0f32)).collect();
        let layer = one_pe_layer(&triplets, 10, 1);
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(10, cb);
        pe.push_activation(0, Q8p8::ONE);
        drive(&mut pe, layer.slice(0), &SimConfig::default(), 100);
        assert_eq!(pe.stats.spmat_row_reads, 2);

        // At 32-bit width (4 entries/row): 3 fetches.
        let mut pe2 = ProcessingElement::new(10, cb);
        pe2.push_activation(0, Q8p8::ONE);
        drive(
            &mut pe2,
            layer.slice(0),
            &SimConfig::with_spmat_width(32),
            100,
        );
        assert_eq!(pe2.stats.spmat_row_reads, 3);
    }

    #[test]
    fn relu_applies_on_writeback() {
        let layer = one_pe_layer(&[(0, 0, -1.0), (1, 0, 1.0)], 2, 1);
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(2, cb);
        pe.push_activation(0, Q8p8::from_f32(3.0));
        drive(&mut pe, layer.slice(0), &SimConfig::default(), 100);
        let out = pe.finalize_outputs(true);
        assert_eq!(out[0], Q8p8::ZERO); // -3 clamped
        assert_eq!(out[1].to_f32(), 3.0);
        assert_eq!(pe.stats.output_writes, 2);
    }

    #[test]
    fn fifo_full_reflects_depth() {
        let layer = one_pe_layer(&[(0, 0, 1.0)], 1, 1);
        let cb = layer.codebook().to_fix16::<8>();
        let mut pe = ProcessingElement::new(1, cb);
        assert!(!pe.fifo_full(2));
        pe.push_activation(0, Q8p8::ONE);
        pe.push_activation(0, Q8p8::ONE);
        assert!(pe.fifo_full(2));
        assert_eq!(pe.stats.max_fifo_occupancy, 2);
        let _ = layer;
    }
}
