//! Functional (un-timed) execution: the simulator's golden model.
//!
//! Computes exactly what the cycle-accurate model computes — same
//! fixed-point formats, same accumulation order (columns in broadcast
//! order, entries in slice order) — without modelling time. The paper
//! verifies its RTL against the cycle simulator and the cycle simulator
//! against a golden Caffe model; here the functional model plays that
//! golden role, and tests assert **bit-exact** agreement.

use eie_compress::EncodedLayer;
use eie_fixed::{Accum32, Q8p8};

/// Executes a layer functionally on quantized activations.
///
/// Zero activations are skipped (dynamic sparsity); every encoded entry of
/// a live column — padding included — is multiplied and accumulated in the
/// same order the hardware issues them, so saturation behaviour matches
/// the cycle model bit-for-bit.
///
/// # Panics
///
/// Panics if `acts.len() != layer.cols()`.
///
/// # Example
///
/// ```
/// use eie_compress::{compress, CompressConfig};
/// use eie_fixed::Q8p8;
/// use eie_nn::zoo::Benchmark;
/// use eie_sim::functional;
///
/// let layer = Benchmark::Vgg7.generate_scaled(1, 64);
/// let enc = compress(&layer.weights, CompressConfig::with_pes(2));
/// let acts: Vec<Q8p8> = layer
///     .sample_activations(1)
///     .iter()
///     .map(|&a| Q8p8::from_f32(a))
///     .collect();
/// let y = functional::execute(&enc, &acts, false);
/// assert_eq!(y.len(), enc.rows());
/// ```
pub fn execute(layer: &EncodedLayer, acts: &[Q8p8], relu: bool) -> Vec<Q8p8> {
    assert_eq!(acts.len(), layer.cols(), "activation length mismatch");
    let n = layer.num_pes();
    let codebook = layer.codebook().to_fix16::<8>();

    // Per-PE accumulators, local-row indexed (mirrors the hardware).
    let mut accum: Vec<Vec<Accum32>> = layer
        .slices()
        .iter()
        .map(|s| vec![Accum32::zero(); s.local_rows()])
        .collect();

    for (j, &aj) in acts.iter().enumerate() {
        if aj.is_zero() {
            continue;
        }
        for (pe, slice) in layer.slices().iter().enumerate() {
            let mut cursor = 0usize;
            for e in slice.col_entries(j) {
                let row = cursor + e.zrun as usize;
                accum[pe][row].mac(codebook[e.code as usize], aj);
                cursor = row + 1;
            }
        }
    }

    let mut outputs = vec![Q8p8::ZERO; layer.rows()];
    for (pe, accs) in accum.into_iter().enumerate() {
        for (local, acc) in accs.into_iter().enumerate() {
            let v = acc.to_fix16::<8>();
            outputs[local * n + pe] = if relu { v.relu() } else { v };
        }
    }
    outputs
}

/// Executes a batch of activation vectors functionally, one output
/// vector per item.
///
/// Each item is an independent [`execute`] — the golden model stays
/// bit-exact against the cycle simulator item by item, batched or not.
///
/// # Panics
///
/// Panics if any item's length differs from `layer.cols()`.
pub fn execute_batch(layer: &EncodedLayer, batch: &[Vec<Q8p8>], relu: bool) -> Vec<Vec<Q8p8>> {
    batch
        .iter()
        .map(|acts| execute(layer, acts, relu))
        .collect()
}

/// The number of multiply-accumulates (padding included) the hardware
/// performs for this layer/input pair — the "workload" of Table IV's
/// theoretical-time calculation.
///
/// # Panics
///
/// Panics if `acts.len() != layer.cols()`.
pub fn workload_macs(layer: &EncodedLayer, acts: &[Q8p8]) -> u64 {
    assert_eq!(acts.len(), layer.cols(), "activation length mismatch");
    let mut macs = 0u64;
    for (j, a) in acts.iter().enumerate() {
        if a.is_zero() {
            continue;
        }
        for slice in layer.slices() {
            macs += slice.col_entries(j).len() as u64;
        }
    }
    macs
}

#[cfg(test)]
mod tests {
    use super::*;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;

    fn quantize(acts: &[f32]) -> Vec<Q8p8> {
        acts.iter().map(|&a| Q8p8::from_f32(a)).collect()
    }

    #[test]
    fn matches_f32_reference_within_quantization() {
        let layer = Benchmark::Alex6.generate_scaled(1, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let acts = layer.sample_activations(3);
        let fixed = execute(&enc, &quantize(&acts), false);
        // Compare against f32 on the *quantized* activations, so only
        // fixed-point rounding differs.
        let acts_q: Vec<f32> = quantize(&acts).iter().map(|a| a.to_f32()).collect();
        let reference = enc.spmv_f32(&acts_q);
        for (got, want) in fixed.iter().zip(&reference) {
            assert!(
                (got.to_f32() - want).abs() < 0.25,
                "{} vs {}",
                got.to_f32(),
                want
            );
        }
    }

    #[test]
    fn relu_zeroes_negative_rows() {
        let layer = Benchmark::Vgg7.generate_scaled(2, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let acts = quantize(&layer.sample_activations(4));
        let raw = execute(&enc, &acts, false);
        let relu = execute(&enc, &acts, true);
        for (r, c) in raw.iter().zip(&relu) {
            if r.to_f32() < 0.0 {
                assert!(c.is_zero());
            } else {
                assert_eq!(r, c);
            }
        }
    }

    #[test]
    fn execute_batch_matches_per_item_execution() {
        let layer = Benchmark::Alex8.generate_scaled(2, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let batch: Vec<Vec<Q8p8>> = (0..4)
            .map(|i| quantize(&layer.sample_activations(i)))
            .collect();
        let outs = execute_batch(&enc, &batch, true);
        assert_eq!(outs.len(), 4);
        for (item, out) in batch.iter().zip(&outs) {
            assert_eq!(out, &execute(&enc, item, true));
        }
    }

    #[test]
    fn workload_counts_only_live_columns() {
        let layer = Benchmark::Alex7.generate_scaled(1, 64);
        let enc = compress(&layer.weights, CompressConfig::with_pes(2));
        let mut acts = vec![Q8p8::ZERO; enc.cols()];
        assert_eq!(workload_macs(&enc, &acts), 0);
        acts[3] = Q8p8::ONE;
        let expected: u64 = enc
            .slices()
            .iter()
            .map(|s| s.col_entries(3).len() as u64)
            .sum();
        assert_eq!(workload_macs(&enc, &acts), expected);
    }

    #[test]
    fn independent_of_pe_count() {
        let layer = Benchmark::NtWe.generate_scaled(5, 16);
        let acts = quantize(&layer.sample_activations(6));
        let mut reference: Option<Vec<Q8p8>> = None;
        for pes in [1usize, 2, 4, 8, 16] {
            let enc = compress(&layer.weights, CompressConfig::with_pes(pes));
            let out = execute(&enc, &acts, false);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "PE count {pes} changed the result"),
            }
        }
    }
}
