//! Utilization timelines: the simulator as an inspection instrument.
//!
//! The paper's simulator "is used for design space exploration [and] also
//! serves as a checker for RTL verification" (§V). Aggregate counters
//! answer *how much* was lost to stalls; a timeline answers *when*: warm-up
//! transients, batch-boundary drains, end-of-layer tail imbalance, and the
//! FIFO's smoothing of per-column load spikes all become visible.
//!
//! [`simulate_with_timeline`] runs the ordinary cycle model while sampling
//! the PE array every `window` cycles.

use eie_compress::EncodedLayer;

use crate::system::{LayerRun, TimelineProbe};
use crate::SimConfig;

/// Per-window samples of one layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Sampling window in cycles.
    pub window: u64,
    /// Mean ALU busy fraction across PEs, per window.
    pub busy: Vec<f64>,
    /// Mean activation-queue occupancy across PEs (entries), per window.
    pub queue_occupancy: Vec<f64>,
    /// Broadcasts issued per window (0..=window).
    pub broadcasts: Vec<u64>,
}

impl Timeline {
    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// True if nothing was recorded (zero-cycle run).
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Renders a busy-fraction sparkline (one char per window).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        self.busy
            .iter()
            .map(|&b| {
                let idx = (b.clamp(0.0, 1.0) * 8.0).round() as usize;
                LEVELS[idx]
            })
            .collect()
    }

    /// The mean busy fraction over all windows.
    pub fn mean_busy(&self) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / self.busy.len() as f64
    }
}

/// Simulates a layer while sampling utilization every `window` cycles.
///
/// Produces exactly the same [`LayerRun`] as [`simulate`](crate::simulate)
/// (tested bit-exact) plus the timeline.
///
/// # Panics
///
/// Panics if `window == 0`, on activation-length mismatch, or if the run
/// exceeds `cfg.max_cycles`.
pub fn simulate_with_timeline(
    layer: &EncodedLayer,
    acts: &[f32],
    cfg: &SimConfig,
    window: u64,
) -> (LayerRun, Timeline) {
    assert!(window > 0, "window must be non-zero");
    let mut probe = TimelineRecorder {
        window,
        timeline: Timeline {
            window,
            busy: Vec::new(),
            queue_occupancy: Vec::new(),
            broadcasts: Vec::new(),
        },
        last_busy: 0,
        last_broadcasts: 0,
    };
    let acts_q: Vec<eie_fixed::Q8p8> = acts.iter().map(|&a| eie_fixed::Q8p8::from_f32(a)).collect();
    let run = crate::system::simulate_with_probe(layer, &acts_q, cfg, false, &mut probe);
    probe.flush_partial();
    (run, probe.timeline)
}

/// Internal sampling state.
struct TimelineRecorder {
    window: u64,
    timeline: Timeline,
    last_busy: u64,
    last_broadcasts: u64,
    // partial-window bookkeeping is handled by sample(); flush_partial
    // emits the final incomplete window.
}

impl TimelineRecorder {
    fn flush_partial(&mut self) {
        // Nothing extra: sample() is called on every cycle boundary and
        // emits on exact window edges; the final partial window (if any)
        // was emitted by the probe's `finish` call with its actual width.
    }
}

impl TimelineProbe for TimelineRecorder {
    fn sample(
        &mut self,
        cycle: u64,
        busy_total: u64,
        queue_total: usize,
        broadcasts: u64,
        pes: usize,
    ) {
        if !cycle.is_multiple_of(self.window) {
            return;
        }
        let dbusy = busy_total - self.last_busy;
        self.last_busy = busy_total;
        let dbroadcast = broadcasts - self.last_broadcasts;
        self.last_broadcasts = broadcasts;
        self.timeline
            .busy
            .push(dbusy as f64 / (self.window * pes as u64) as f64);
        self.timeline
            .queue_occupancy
            .push(queue_total as f64 / pes as f64);
        self.timeline.broadcasts.push(dbroadcast);
    }

    fn finish(
        &mut self,
        cycle: u64,
        busy_total: u64,
        _queue_total: usize,
        broadcasts: u64,
        pes: usize,
    ) {
        let rem = cycle % self.window;
        if rem == 0 {
            return;
        }
        let dbusy = busy_total - self.last_busy;
        let dbroadcast = broadcasts - self.last_broadcasts;
        self.timeline
            .busy
            .push(dbusy as f64 / (rem * pes as u64) as f64);
        self.timeline.queue_occupancy.push(0.0);
        self.timeline.broadcasts.push(dbroadcast);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use eie_compress::{compress, CompressConfig};
    use eie_nn::zoo::Benchmark;

    fn case() -> (EncodedLayer, Vec<f32>) {
        let layer = Benchmark::Alex7.generate_scaled(1, 32);
        let enc = compress(&layer.weights, CompressConfig::with_pes(4));
        let acts = layer.sample_activations(3);
        (enc, acts)
    }

    #[test]
    fn traced_run_is_bit_exact_with_plain_run() {
        let (enc, acts) = case();
        let cfg = SimConfig::default();
        let plain = simulate(&enc, &acts, &cfg);
        let (traced, timeline) = simulate_with_timeline(&enc, &acts, &cfg, 64);
        assert_eq!(plain.outputs, traced.outputs);
        assert_eq!(plain.stats, traced.stats);
        assert!(!timeline.is_empty());
    }

    #[test]
    fn windows_cover_the_whole_run() {
        let (enc, acts) = case();
        let cfg = SimConfig::default();
        let (run, timeline) = simulate_with_timeline(&enc, &acts, &cfg, 50);
        let expected = run.stats.total_cycles.div_ceil(50);
        assert_eq!(timeline.len() as u64, expected);
        // Total busy cycles reconstruct from the windows.
        let full_windows = run.stats.total_cycles / 50;
        let rem = run.stats.total_cycles % 50;
        let pes = run.stats.num_pes() as f64;
        let mut busy = 0.0;
        for (i, b) in timeline.busy.iter().enumerate() {
            let width = if (i as u64) < full_windows { 50 } else { rem };
            busy += b * width as f64 * pes;
        }
        let actual: u64 = run.stats.pe.iter().map(|p| p.busy_cycles).sum();
        assert!((busy - actual as f64).abs() < 1.0, "{busy} vs {actual}");
    }

    #[test]
    fn busy_fractions_are_valid() {
        let (enc, acts) = case();
        let (_, timeline) = simulate_with_timeline(&enc, &acts, &SimConfig::default(), 32);
        for &b in &timeline.busy {
            assert!((0.0..=1.0 + 1e-9).contains(&b), "busy {b}");
        }
        assert!(timeline.mean_busy() > 0.0);
    }

    #[test]
    fn sparkline_matches_window_count() {
        let (enc, acts) = case();
        let (_, timeline) = simulate_with_timeline(&enc, &acts, &SimConfig::default(), 100);
        assert_eq!(timeline.sparkline().chars().count(), timeline.len());
    }

    #[test]
    fn broadcast_windows_sum_to_total() {
        let (enc, acts) = case();
        let (run, timeline) = simulate_with_timeline(&enc, &acts, &SimConfig::default(), 40);
        let sum: u64 = timeline.broadcasts.iter().sum();
        assert_eq!(sum, run.stats.broadcasts);
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn rejects_zero_window() {
        let (enc, acts) = case();
        let _ = simulate_with_timeline(&enc, &acts, &SimConfig::default(), 0);
    }
}
