//! The wire protocol of the network serving front-end: length-prefixed
//! binary frames, hand-rolled like every codec in this workspace (the
//! build is offline; no serde, no HTTP stack).
//!
//! # Frame layout (all integers little-endian)
//!
//! ```text
//! frame := body_len u32 | body               (body_len ≤ MAX_BODY)
//! body  := magic "EIEW" | version u8 | kind u8 | payload
//! ```
//!
//! Request payloads:
//!
//! | kind | name     | payload                                        |
//! |------|----------|------------------------------------------------|
//! | 0x01 | INFER v1 | `name_len u16 \| name utf-8 \| n u32 \| f32 × n` |
//! | 0x01 | INFER v2 | `name_len u16 \| name utf-8 \| deadline_us u64 \| attempt u8 \| n u32 \| f32 × n` |
//! | 0x02 | STATS    | empty                                          |
//! | 0x03 | SHUTDOWN | empty                                          |
//!
//! Every frame is stamped with the **lowest** version able to express
//! it: an INFER with no deadline and attempt 0 still goes out as v1, so
//! current clients interoperate with v1-only servers until they opt
//! into the new fields. Readers accept 1..=[`PROTOCOL_VERSION`].
//!
//! Response payloads:
//!
//! | kind | name       | payload                                              |
//! |------|------------|------------------------------------------------------|
//! | 0x81 | OUTPUT     | `queue_us f64 \| latency_us f64 \| coalesced u32 \| worker u32 \| n u32 \| i16 × n` (raw Q8.8) |
//! | 0x82 | STATS      | [`StatsReport`] fields in declaration order (tail is append-only: old decoders ignore fields they don't know, new decoders zero-fill fields an old server didn't send) |
//! | 0x83 | OVERLOADED | `depth u32` (the queue bound that shed the request)  |
//! | 0x84 | ERROR      | `code u8 \| msg_len u16 \| msg utf-8`                |
//! | 0x85 | OK         | empty                                                |
//!
//! Output activations travel as **raw `Q8p8` bits** (`i16`), so the
//! network boundary cannot perturb the bit-exactness invariant: the
//! client reassembles exactly the words the worker wrote.
//!
//! Decoding is strict and total: every malformed input — truncation at
//! any byte, an oversized length prefix, bad magic, an unknown kind,
//! trailing bytes, invalid UTF-8, non-finite activations — returns a
//! typed [`FrameError`]; nothing panics on untrusted bytes. The
//! protocol property test sweeps all of these.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes heading every frame body ("EIE Wire").
pub const FRAME_MAGIC: [u8; 4] = *b"EIEW";

/// The newest protocol version this build speaks. Version 2 added the
/// optional per-request deadline and retry-attempt fields to INFER.
pub const PROTOCOL_VERSION: u8 = 2;

/// The oldest protocol version this build still decodes.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame body. Large enough for a 1M-activation INFER
/// (4 MiB of `f32`) with room to spare; small enough that a corrupt or
/// hostile length prefix cannot make the reader allocate unboundedly.
pub const MAX_BODY: usize = 16 << 20;

const KIND_INFER: u8 = 0x01;
const KIND_STATS_REQ: u8 = 0x02;
const KIND_SHUTDOWN: u8 = 0x03;
const KIND_OUTPUT: u8 = 0x81;
const KIND_STATS_RSP: u8 = 0x82;
const KIND_OVERLOADED: u8 = 0x83;
const KIND_ERROR: u8 = 0x84;
const KIND_OK: u8 = 0x85;

/// A request frame, client → server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one input vector through the named model.
    Infer {
        /// Registry name of the model to route to.
        model: String,
        /// Input activations (quantized to Q8.8 server-side, exactly as
        /// an in-process [`ModelServer::submit`](crate::ModelServer::submit)
        /// would).
        input: Vec<f32>,
        /// Remaining time budget in µs at send time; `0` means no
        /// deadline. The server anchors it at frame receipt and answers
        /// `DEADLINE_EXCEEDED` instead of executing once it lapses.
        deadline_us: u64,
        /// Retry attempt number (0 = first try), so the server can
        /// count upstream retries. Saturates at 255.
        attempt: u8,
    },
    /// Ask for the server's live statistics.
    Stats,
    /// Ask the server to drain and exit (answered with
    /// [`Response::Ok`] before the listener closes).
    Shutdown,
}

/// A response frame, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed inference.
    Output(OutputReport),
    /// The model's bounded queue was full: the request was shed by
    /// admission control and never queued. The client owns the retry
    /// policy.
    Overloaded {
        /// The configured queue depth that was hit.
        depth: u32,
    },
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Live server statistics.
    Stats(StatsReport),
    /// Acknowledgement with no payload (shutdown).
    Ok,
}

/// The payload of [`Response::Output`]: the served result plus the same
/// per-request timing a local [`RequestResult`](crate::RequestResult)
/// carries.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputReport {
    /// Output activations as raw Q8.8 bit patterns — bit-identical to
    /// the serving worker's writeback.
    pub outputs: Vec<i16>,
    /// Time the request spent queued server-side, µs.
    pub queue_us: f64,
    /// Submission-to-completion time server-side, µs.
    pub latency_us: f64,
    /// How many requests rode in the same micro-batch (≥ 1).
    pub coalesced: u32,
    /// Which worker executed it.
    pub worker: u32,
}

/// The payload of [`Response::Stats`]: reservoir percentiles, queue
/// depth and registry occupancy in one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsReport {
    /// Requests served to completion, summed over resident models.
    pub requests: u64,
    /// Micro-batches executed, summed over resident models.
    pub batches: u64,
    /// Largest micro-batch observed on any model.
    pub max_coalesced: u32,
    /// Requests queued but unclaimed right now, summed over models.
    pub queue_depth: u32,
    /// Models the registry knows about.
    pub models_registered: u32,
    /// Models currently resident (loaded, workers running).
    pub models_resident: u32,
    /// Artifact bytes of the resident models.
    pub resident_bytes: u64,
    /// The registry's residency budget (`u64::MAX` = unbounded).
    pub budget_bytes: u64,
    /// Artifact loads since startup (cold starts + reloads).
    pub loads: u64,
    /// Models evicted since startup.
    pub evictions: u64,
    /// Median end-to-end request latency, µs (reservoir-sampled).
    pub p50_us: f64,
    /// 95th-percentile request latency, µs.
    pub p95_us: f64,
    /// 99th-percentile request latency, µs.
    pub p99_us: f64,
    /// Mean server-side queue time, µs.
    pub mean_queue_us: f64,
    /// Aggregate throughput since startup, frames/s.
    pub frames_per_second: f64,
    // -- Fault-tolerance tail (appended in PR 10; older servers omit
    // -- these bytes and older clients ignore them).
    /// Requests admitted past input validation, summed over models.
    /// Invariant: `accepted = requests + shed + expired + failed`.
    pub accepted: u64,
    /// Requests shed by admission control (queue full or degraded).
    pub shed: u64,
    /// Requests whose deadline lapsed before execution.
    pub expired: u64,
    /// Requests failed typed by a worker panic.
    pub failed: u64,
    /// Requests that arrived marked as a retry (attempt > 0).
    pub retries_upstream: u64,
    /// Worker quarantine-and-respawn cycles since startup.
    pub worker_restarts: u64,
    /// Servers currently degraded to shed-load (restart budget spent).
    pub degraded: u32,
    /// Connections closed for not reading their responses in time.
    pub slow_client_evictions: u64,
}

/// Machine-readable failure class of a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request named a model the registry does not know.
    UnknownModel,
    /// The input length does not match the model's input dimension.
    BadInput,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The model is registered but its artifact failed to load.
    LoadFailed,
    /// The connection sent bytes the server could not parse (the
    /// server answers with this, then closes the stream — framing
    /// cannot be trusted after a malformed frame).
    Malformed,
    /// The request's deadline lapsed before a worker executed it.
    DeadlineExceeded,
    /// The worker executing the request panicked; the request was not
    /// served. Inference is pure, so the request is safe to retry.
    WorkerFailed,
    /// The model's server spent its restart budget and now sheds all
    /// load until it is evicted or the process restarts.
    Degraded,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::UnknownModel => 1,
            ErrorCode::BadInput => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::LoadFailed => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::DeadlineExceeded => 6,
            ErrorCode::WorkerFailed => 7,
            ErrorCode::Degraded => 8,
        }
    }

    fn from_wire(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::UnknownModel,
            2 => ErrorCode::BadInput,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::LoadFailed,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::DeadlineExceeded,
            7 => ErrorCode::WorkerFailed,
            8 => ErrorCode::Degraded,
            _ => return None,
        })
    }

    /// Whether a retry of the same request can reasonably succeed.
    /// Inference is pure and idempotent, so transient execution
    /// failures qualify; typed model/request errors never do.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::WorkerFailed)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::UnknownModel => write!(f, "unknown model"),
            ErrorCode::BadInput => write!(f, "bad input"),
            ErrorCode::ShuttingDown => write!(f, "shutting down"),
            ErrorCode::LoadFailed => write!(f, "model load failed"),
            ErrorCode::Malformed => write!(f, "malformed frame"),
            ErrorCode::DeadlineExceeded => write!(f, "deadline exceeded"),
            ErrorCode::WorkerFailed => write!(f, "worker failed"),
            ErrorCode::Degraded => write!(f, "server degraded"),
        }
    }
}

/// Failure to read or decode a frame. Every malformed input maps to a
/// typed variant; decoding never panics.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The frame body does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The frame was written by a protocol version this build does not
    /// speak.
    UnsupportedVersion {
        /// Version found in the frame.
        found: u8,
        /// Version this build speaks.
        supported: u8,
    },
    /// The frame kind is not a known request/response type.
    UnknownKind(u8),
    /// The body ended before the declared payload.
    Truncated {
        /// Byte offset (within the body) at which data ran out.
        offset: usize,
        /// Which payload section was being read.
        section: &'static str,
    },
    /// The length prefix exceeds [`MAX_BODY`].
    Oversized {
        /// The declared body length.
        len: usize,
        /// The protocol bound.
        max: usize,
    },
    /// A payload field holds an impossible value (invalid UTF-8,
    /// non-finite activation, unknown error code, trailing bytes…).
    BadPayload {
        /// Which field was invalid.
        field: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::BadMagic => write!(f, "not an EIE wire frame (bad magic)"),
            FrameError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported protocol version {found} (this build speaks {supported})"
            ),
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind:#04x}"),
            FrameError::Truncated { offset, section } => {
                write!(
                    f,
                    "frame truncated at byte {offset} while reading {section}"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::BadPayload { field } => write!(f, "invalid frame field: {field}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A little-endian cursor over one frame body, with section attribution
/// for truncation errors (the wire counterpart of the readers in the
/// artifact and layer-image codecs).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            section: "magic",
        }
    }

    fn enter(&mut self, section: &'static str) {
        self.section = section;
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.pos + n > self.bytes.len() {
            return Err(FrameError::Truncated {
                offset: self.pos,
                section: self.section,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8)")))
    }

    fn i16(&mut self) -> Result<i16, FrameError> {
        let b = self.take(2)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    fn f32(&mut self) -> Result<f32, FrameError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("take(8)")))
    }

    /// The strict tail check: a valid frame's payload is consumed
    /// exactly.
    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::BadPayload {
                field: "trailing bytes",
            });
        }
        Ok(())
    }

    /// Reads a `u64` from the append-only stats tail: a frame from an
    /// older writer simply ends sooner, decoding as zero. A *partial*
    /// field is still truncation — appended fields are all-or-nothing.
    fn tail_u64(&mut self) -> Result<u64, FrameError> {
        if self.pos == self.bytes.len() {
            return Ok(0);
        }
        self.u64()
    }

    /// `tail_u64` for a `u32` field.
    fn tail_u32(&mut self) -> Result<u32, FrameError> {
        if self.pos == self.bytes.len() {
            return Ok(0);
        }
        self.u32()
    }

    /// Discards bytes a newer writer appended past the fields this
    /// build knows (the append-only forward-compatibility half).
    fn skip_tail(&mut self) {
        self.pos = self.bytes.len();
    }
}

/// Header at the base version: every frame whose shape is unchanged
/// since v1 keeps the v1 stamp so older peers still decode it.
fn body_header(kind: u8) -> Vec<u8> {
    body_header_v(MIN_PROTOCOL_VERSION, kind)
}

/// Frames are stamped with the lowest version able to express them, so
/// most writers pass an explicit version here.
fn body_header_v(version: u8, kind: u8) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&FRAME_MAGIC);
    body.push(version);
    body.push(kind);
    body
}

/// Wraps a finished body in its length prefix: the bytes that go on the
/// wire.
fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY, "frame body exceeds MAX_BODY");
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Validates magic + version, returning the version, kind and payload
/// reader.
fn open_body(body: &[u8]) -> Result<(u8, u8, Reader<'_>), FrameError> {
    let mut r = Reader::new(body);
    if r.take(4)? != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    r.enter("header");
    let version = r.u8()?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(FrameError::UnsupportedVersion {
            found: version,
            supported: PROTOCOL_VERSION,
        });
    }
    let kind = r.u8()?;
    Ok((version, kind, r))
}

impl Request {
    /// An INFER request with no deadline on its first attempt — the
    /// common case, encoded as a v1 frame.
    pub fn infer(model: impl Into<String>, input: Vec<f32>) -> Request {
        Request::Infer {
            model: model.into(),
            input,
            deadline_us: 0,
            attempt: 0,
        }
    }

    /// Serializes the request into a complete wire frame (length prefix
    /// included).
    pub fn to_frame(&self) -> Vec<u8> {
        match self {
            Request::Infer {
                model,
                input,
                deadline_us,
                attempt,
            } => {
                // Lowest version that can express the request: the new
                // fields only force v2 when actually set.
                let v2 = *deadline_us != 0 || *attempt != 0;
                let mut body = body_header_v(if v2 { 2 } else { 1 }, KIND_INFER);
                assert!(
                    model.len() <= u16::MAX as usize,
                    "model name exceeds the u16 length field"
                );
                body.extend_from_slice(&(model.len() as u16).to_le_bytes());
                body.extend_from_slice(model.as_bytes());
                if v2 {
                    body.extend_from_slice(&deadline_us.to_le_bytes());
                    body.push(*attempt);
                }
                body.extend_from_slice(&(input.len() as u32).to_le_bytes());
                for &v in input {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                frame(body)
            }
            Request::Stats => frame(body_header(KIND_STATS_REQ)),
            Request::Shutdown => frame(body_header(KIND_SHUTDOWN)),
        }
    }

    /// Decodes a frame body (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FrameError`] on any malformed input; never
    /// panics.
    pub fn from_body(body: &[u8]) -> Result<Request, FrameError> {
        let (version, kind, mut r) = open_body(body)?;
        let request = match kind {
            KIND_INFER => {
                r.enter("model name");
                let name_len = r.u16()? as usize;
                let model = std::str::from_utf8(r.take(name_len)?)
                    .map_err(|_| FrameError::BadPayload {
                        field: "model name",
                    })?
                    .to_owned();
                let (deadline_us, attempt) = if version >= 2 {
                    r.enter("deadline");
                    (r.u64()?, r.u8()?)
                } else {
                    (0, 0)
                };
                r.enter("input");
                let n = r.u32()? as usize;
                // n is bounded by the already-enforced MAX_BODY, but cap
                // the pre-allocation to what the body could actually hold.
                let mut input = Vec::with_capacity(n.min(r.bytes.len() / 4 + 1));
                for _ in 0..n {
                    let v = r.f32()?;
                    if !v.is_finite() {
                        return Err(FrameError::BadPayload {
                            field: "input activation",
                        });
                    }
                    input.push(v);
                }
                Request::Infer {
                    model,
                    input,
                    deadline_us,
                    attempt,
                }
            }
            KIND_STATS_REQ => Request::Stats,
            KIND_SHUTDOWN => Request::Shutdown,
            other => return Err(FrameError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Serializes the response into a complete wire frame (length
    /// prefix included).
    pub fn to_frame(&self) -> Vec<u8> {
        match self {
            Response::Output(o) => {
                let mut body = body_header(KIND_OUTPUT);
                body.extend_from_slice(&o.queue_us.to_le_bytes());
                body.extend_from_slice(&o.latency_us.to_le_bytes());
                body.extend_from_slice(&o.coalesced.to_le_bytes());
                body.extend_from_slice(&o.worker.to_le_bytes());
                body.extend_from_slice(&(o.outputs.len() as u32).to_le_bytes());
                for &v in &o.outputs {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                frame(body)
            }
            Response::Overloaded { depth } => {
                let mut body = body_header(KIND_OVERLOADED);
                body.extend_from_slice(&depth.to_le_bytes());
                frame(body)
            }
            Response::Error { code, message } => {
                let mut body = body_header(KIND_ERROR);
                body.push(code.to_wire());
                assert!(
                    message.len() <= u16::MAX as usize,
                    "error message exceeds the u16 length field"
                );
                body.extend_from_slice(&(message.len() as u16).to_le_bytes());
                body.extend_from_slice(message.as_bytes());
                frame(body)
            }
            Response::Stats(s) => {
                let mut body = body_header(KIND_STATS_RSP);
                body.extend_from_slice(&s.requests.to_le_bytes());
                body.extend_from_slice(&s.batches.to_le_bytes());
                body.extend_from_slice(&s.max_coalesced.to_le_bytes());
                body.extend_from_slice(&s.queue_depth.to_le_bytes());
                body.extend_from_slice(&s.models_registered.to_le_bytes());
                body.extend_from_slice(&s.models_resident.to_le_bytes());
                body.extend_from_slice(&s.resident_bytes.to_le_bytes());
                body.extend_from_slice(&s.budget_bytes.to_le_bytes());
                body.extend_from_slice(&s.loads.to_le_bytes());
                body.extend_from_slice(&s.evictions.to_le_bytes());
                body.extend_from_slice(&s.p50_us.to_le_bytes());
                body.extend_from_slice(&s.p95_us.to_le_bytes());
                body.extend_from_slice(&s.p99_us.to_le_bytes());
                body.extend_from_slice(&s.mean_queue_us.to_le_bytes());
                body.extend_from_slice(&s.frames_per_second.to_le_bytes());
                body.extend_from_slice(&s.accepted.to_le_bytes());
                body.extend_from_slice(&s.shed.to_le_bytes());
                body.extend_from_slice(&s.expired.to_le_bytes());
                body.extend_from_slice(&s.failed.to_le_bytes());
                body.extend_from_slice(&s.retries_upstream.to_le_bytes());
                body.extend_from_slice(&s.worker_restarts.to_le_bytes());
                body.extend_from_slice(&s.degraded.to_le_bytes());
                body.extend_from_slice(&s.slow_client_evictions.to_le_bytes());
                frame(body)
            }
            Response::Ok => frame(body_header(KIND_OK)),
        }
    }

    /// Decodes a frame body (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FrameError`] on any malformed input; never
    /// panics.
    pub fn from_body(body: &[u8]) -> Result<Response, FrameError> {
        let (_version, kind, mut r) = open_body(body)?;
        let response = match kind {
            KIND_OUTPUT => {
                r.enter("output header");
                let queue_us = r.f64()?;
                let latency_us = r.f64()?;
                let coalesced = r.u32()?;
                let worker = r.u32()?;
                r.enter("outputs");
                let n = r.u32()? as usize;
                let mut outputs = Vec::with_capacity(n.min(r.bytes.len() / 2 + 1));
                for _ in 0..n {
                    outputs.push(r.i16()?);
                }
                Response::Output(OutputReport {
                    outputs,
                    queue_us,
                    latency_us,
                    coalesced,
                    worker,
                })
            }
            KIND_OVERLOADED => {
                r.enter("overloaded");
                Response::Overloaded { depth: r.u32()? }
            }
            KIND_ERROR => {
                r.enter("error");
                let code = ErrorCode::from_wire(r.u8()?).ok_or(FrameError::BadPayload {
                    field: "error code",
                })?;
                let msg_len = r.u16()? as usize;
                let message = std::str::from_utf8(r.take(msg_len)?)
                    .map_err(|_| FrameError::BadPayload {
                        field: "error message",
                    })?
                    .to_owned();
                Response::Error { code, message }
            }
            KIND_STATS_RSP => {
                r.enter("stats");
                let report = StatsReport {
                    requests: r.u64()?,
                    batches: r.u64()?,
                    max_coalesced: r.u32()?,
                    queue_depth: r.u32()?,
                    models_registered: r.u32()?,
                    models_resident: r.u32()?,
                    resident_bytes: r.u64()?,
                    budget_bytes: r.u64()?,
                    loads: r.u64()?,
                    evictions: r.u64()?,
                    p50_us: r.f64()?,
                    p95_us: r.f64()?,
                    p99_us: r.f64()?,
                    mean_queue_us: r.f64()?,
                    frames_per_second: r.f64()?,
                    // The append-only tail: zero when an older server
                    // stops short, extra fields from a newer server are
                    // skipped below.
                    accepted: r.tail_u64()?,
                    shed: r.tail_u64()?,
                    expired: r.tail_u64()?,
                    failed: r.tail_u64()?,
                    retries_upstream: r.tail_u64()?,
                    worker_restarts: r.tail_u64()?,
                    degraded: r.tail_u32()?,
                    slow_client_evictions: r.tail_u64()?,
                };
                r.skip_tail();
                Response::Stats(report)
            }
            KIND_OK => Response::Ok,
            other => return Err(FrameError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(response)
    }
}

/// Reads one frame body from a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames). A stream that ends *inside* a frame — mid-prefix or
/// mid-body — is a [`FrameError::Truncated`]; a length prefix above
/// [`MAX_BODY`] is rejected before any allocation.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure, or the typed framing errors
/// above.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated {
                    offset: got,
                    section: "length prefix",
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_BODY {
        return Err(FrameError::Oversized { len, max: MAX_BODY });
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated {
                offset: 4,
                section: "frame body",
            }
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(body))
}

/// Writes one already-encoded frame (from [`Request::to_frame`] /
/// [`Response::to_frame`]) to a stream.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), FrameError> {
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_prefix(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix disagrees with body");
        &frame[4..]
    }

    #[test]
    fn request_roundtrips() {
        for request in [
            Request::infer("alex7", vec![0.5, -1.25, 0.0]),
            Request::infer("", vec![]),
            Request::Infer {
                model: "alex7".into(),
                input: vec![0.5],
                deadline_us: 2_000_000,
                attempt: 3,
            },
            Request::Infer {
                model: "alex7".into(),
                input: vec![0.5],
                deadline_us: 0,
                attempt: 1,
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            let wire = request.to_frame();
            assert_eq!(Request::from_body(strip_prefix(&wire)).unwrap(), request);
        }
    }

    #[test]
    fn plain_infer_still_encodes_as_version_1() {
        // A no-deadline first-attempt INFER must stay decodable by a
        // v1-only peer: the frame is stamped v1 and carries the exact
        // v1 payload shape.
        let wire = Request::infer("fc6", vec![1.0, 2.0]).to_frame();
        let body = strip_prefix(&wire);
        assert_eq!(body[4], 1, "version byte");
        // Hand-decode as a v1 reader would.
        let name_len = u16::from_le_bytes([body[6], body[7]]) as usize;
        assert_eq!(&body[8..8 + name_len], b"fc6");
        let n = u32::from_le_bytes(body[11..15].try_into().unwrap());
        assert_eq!(n, 2);

        // And a deadline forces the v2 stamp.
        let wire = Request::Infer {
            model: "fc6".into(),
            input: vec![1.0],
            deadline_us: 500,
            attempt: 0,
        }
        .to_frame();
        assert_eq!(strip_prefix(&wire)[4], 2, "version byte");
    }

    #[test]
    fn stats_tail_is_append_only_both_directions() {
        let full = Response::Stats(StatsReport {
            requests: 7,
            accepted: 9,
            shed: 1,
            expired: 1,
            worker_restarts: 2,
            degraded: 1,
            slow_client_evictions: 3,
            ..Default::default()
        });
        let wire = full.to_frame();
        let body = strip_prefix(&wire);

        // Older server: stops after the 15 mandatory fields (104
        // payload bytes + 6 header bytes). New fields decode as zero.
        let old = Response::from_body(&body[..6 + 104]).unwrap();
        let Response::Stats(s) = old else {
            panic!("expected stats")
        };
        assert_eq!(s.requests, 7);
        assert_eq!((s.accepted, s.worker_restarts, s.degraded), (0, 0, 0));

        // Newer server: appends fields this build doesn't know — they
        // are ignored, the known tail still decodes.
        let mut extended = body.to_vec();
        extended.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        let new = Response::from_body(&extended).unwrap();
        let Response::Stats(s) = new else {
            panic!("expected stats")
        };
        assert_eq!((s.accepted, s.shed, s.slow_client_evictions), (9, 1, 3));
        // A cut *inside* a known appended field is a typed truncation,
        // not a silent zero (fields are all-or-nothing).
        assert!(matches!(
            Response::from_body(&body[..6 + 104 + 43]),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn response_roundtrips() {
        for response in [
            Response::Output(OutputReport {
                outputs: vec![1, -2, i16::MAX, i16::MIN],
                queue_us: 12.5,
                latency_us: 99.0,
                coalesced: 3,
                worker: 1,
            }),
            Response::Overloaded { depth: 64 },
            Response::Error {
                code: ErrorCode::UnknownModel,
                message: "no model \"x\"".into(),
            },
            Response::Stats(StatsReport {
                requests: 10,
                batches: 4,
                p99_us: 123.0,
                budget_bytes: u64::MAX,
                ..Default::default()
            }),
            Response::Ok,
        ] {
            let wire = response.to_frame();
            assert_eq!(Response::from_body(strip_prefix(&wire)).unwrap(), response);
        }
    }

    #[test]
    fn read_frame_handles_clean_eof_and_oversized_prefix() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));

        let mut oversized: &[u8] = &(MAX_BODY as u32 + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut oversized),
            Err(FrameError::Oversized { .. })
        ));

        let wire = Request::Stats.to_frame();
        let mut cut: &[u8] = &wire[..wire.len() - 1];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Truncated {
                section: "frame body",
                ..
            })
        ));
        let mut mid_prefix: &[u8] = &wire[..2];
        assert!(matches!(
            read_frame(&mut mid_prefix),
            Err(FrameError::Truncated {
                section: "length prefix",
                ..
            })
        ));
    }

    #[test]
    fn stream_roundtrip_reassembles_multiple_frames() {
        let a = Request::infer("fc6", vec![1.0; 7]);
        let b = Request::Stats;
        let mut wire = Vec::new();
        write_frame(&mut wire, &a.to_frame()).unwrap();
        write_frame(&mut wire, &b.to_frame()).unwrap();
        let mut stream: &[u8] = &wire;
        let first = read_frame(&mut stream).unwrap().unwrap();
        let second = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(Request::from_body(&first).unwrap(), a);
        assert_eq!(Request::from_body(&second).unwrap(), b);
        assert!(matches!(read_frame(&mut stream), Ok(None)));
    }

    #[test]
    fn error_display_names_the_problem() {
        assert!(FrameError::BadMagic.to_string().contains("magic"));
        assert!(FrameError::UnknownKind(0x7F).to_string().contains("0x7f"));
        assert!(FrameError::Oversized {
            len: MAX_BODY + 1,
            max: MAX_BODY
        }
        .to_string()
        .contains("exceeds"));
        let e = FrameError::Truncated {
            offset: 6,
            section: "input",
        };
        assert!(e.to_string().contains("input"));
    }
}
