//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a schedule of failures keyed to *logical* event
//! counters — the Nth micro-batch dispatch, the Nth accepted
//! connection — rather than wall-clock time, so a chaos run with a
//! given plan and a single worker replays exactly. The plan is
//! compiled into the crate unconditionally but is completely inert
//! unless one is installed
//! ([`ModelServer::start_with_faults`](crate::ModelServer::start_with_faults)
//! or
//! [`ModelRegistry::with_fault_plan`](crate::ModelRegistry::with_fault_plan));
//! the healthy hot path pays one `Option` check per dispatch.
//!
//! Three injection surfaces:
//!
//! - **dispatch faults** — a worker about to execute a claimed
//!   micro-batch asks [`FaultPlan::next_dispatch`] what to do: stall
//!   (hold the batch, simulating a wedged queue/backend), panic
//!   (exercising quarantine), or both, plus an optional latency added
//!   to *every* dispatch;
//! - **connection faults** — the accept path asks
//!   [`FaultPlan::next_connection_panics`] whether this handler should
//!   die, exercising the `NetServer::stop` join-recovery path;
//! - **byte faults** — [`FaultyStream`] wraps any `Read + Write` stream
//!   and corrupts or truncates the written byte stream at exact
//!   offsets, exercising the protocol's typed-error totality from the
//!   peer's side.
//!
//! Plans come from the builder API, from [`FaultPlan::seeded`] (a
//! xorshift-derived random schedule for property tests), or from
//! [`FaultPlan::parse`] (the `EIE_FAULTS` env format used by the CLI
//! and the CI chaos smoke).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What a worker must do at one dispatch point, in order: sleep
/// `stall`, then `panic` (inside the quarantine boundary) if set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchFault {
    /// Hold the claimed batch this long before executing.
    pub stall: Option<Duration>,
    /// Panic instead of executing (the batch fails typed and the
    /// worker respawns).
    pub panic: bool,
}

impl DispatchFault {
    /// True when the fault does nothing — the schedule had no entry for
    /// this dispatch.
    pub fn is_noop(&self) -> bool {
        self.stall.is_none() && !self.panic
    }
}

/// A deterministic schedule of injected failures. See the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    dispatch_faults: BTreeMap<u64, DispatchFault>,
    /// Added to every dispatch, on top of any per-dispatch stall.
    latency: Option<Duration>,
    handler_panics: BTreeSet<u64>,
    dispatch_seq: AtomicU64,
    conn_seq: AtomicU64,
}

impl FaultPlan {
    /// An empty plan: installs cleanly, injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic at the `n`th dispatch (0-based, counted across all
    /// workers of the server the plan is installed on).
    pub fn panic_on_dispatch(mut self, n: u64) -> Self {
        self.dispatch_faults.entry(n).or_default().panic = true;
        self
    }

    /// Stall the `n`th dispatch for `hold` before executing.
    pub fn stall_dispatch(mut self, n: u64, hold: Duration) -> Self {
        self.dispatch_faults.entry(n).or_default().stall = Some(hold);
        self
    }

    /// Add `latency` to every dispatch.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Panic the handler of the `n`th accepted connection (0-based).
    pub fn panic_on_connection(mut self, n: u64) -> Self {
        self.handler_panics.insert(n);
        self
    }

    /// A random-but-reproducible schedule over the first `horizon`
    /// dispatches: each dispatch independently panics with probability
    /// `panic_per_mille`/1000 and stalls (up to `max_stall`) with
    /// probability `stall_per_mille`/1000, drawn from a xorshift64*
    /// stream seeded with `seed`.
    pub fn seeded(
        seed: u64,
        horizon: u64,
        panic_per_mille: u32,
        stall_per_mille: u32,
        max_stall: Duration,
    ) -> Self {
        // Scramble before use: adjacent seeds must not collapse into
        // the same stream, and the state must never be zero.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut plan = FaultPlan::new();
        for n in 0..horizon {
            if next() % 1000 < panic_per_mille as u64 {
                plan = plan.panic_on_dispatch(n);
            }
            if next() % 1000 < stall_per_mille as u64 {
                let frac = (next() % 1000) as f64 / 1000.0;
                let hold = Duration::from_nanos((max_stall.as_nanos() as f64 * frac) as u64);
                plan = plan.stall_dispatch(n, hold);
            }
        }
        plan
    }

    /// Parses the `EIE_FAULTS` schedule format: comma-separated tokens
    /// `panic@N` | `stall@N:US` | `latency:US` | `conn-panic@N`
    /// (durations in µs). Example: `panic@2,panic@5,stall@3:1500`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first bad token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let bad = || format!("bad fault token {token:?}");
            if let Some(n) = token.strip_prefix("panic@") {
                plan = plan.panic_on_dispatch(n.parse().map_err(|_| bad())?);
            } else if let Some(rest) = token.strip_prefix("stall@") {
                let (n, us) = rest.split_once(':').ok_or_else(bad)?;
                plan = plan.stall_dispatch(
                    n.parse().map_err(|_| bad())?,
                    Duration::from_micros(us.parse().map_err(|_| bad())?),
                );
            } else if let Some(us) = token.strip_prefix("latency:") {
                plan = plan.with_latency(Duration::from_micros(us.parse().map_err(|_| bad())?));
            } else if let Some(n) = token.strip_prefix("conn-panic@") {
                plan = plan.panic_on_connection(n.parse().map_err(|_| bad())?);
            } else {
                return Err(bad());
            }
        }
        Ok(plan)
    }

    /// Claims the next dispatch sequence number and returns what (if
    /// anything) to inject there. Called once per claimed micro-batch.
    pub fn next_dispatch(&self) -> DispatchFault {
        let seq = self.dispatch_seq.fetch_add(1, Ordering::Relaxed);
        let mut fault = self.dispatch_faults.get(&seq).copied().unwrap_or_default();
        if let Some(extra) = self.latency {
            fault.stall = Some(fault.stall.unwrap_or_default() + extra);
        }
        fault
    }

    /// Claims the next connection sequence number and returns whether
    /// its handler should panic. Called once per accepted connection.
    pub fn next_connection_panics(&self) -> bool {
        let seq = self.conn_seq.fetch_add(1, Ordering::Relaxed);
        self.handler_panics.contains(&seq)
    }

    /// Dispatches claimed so far (monotone; for tests asserting "no
    /// backend dispatch happened").
    pub fn dispatches(&self) -> u64 {
        self.dispatch_seq.load(Ordering::Relaxed)
    }

    /// How many dispatch panics the schedule holds in total.
    pub fn scheduled_panics(&self) -> usize {
        self.dispatch_faults.values().filter(|f| f.panic).count()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for (n, fault) in &self.dispatch_faults {
            if fault.panic {
                write!(f, "{sep}panic@{n}")?;
                sep = ",";
            }
            if let Some(hold) = fault.stall {
                write!(f, "{sep}stall@{n}:{}", hold.as_micros())?;
                sep = ",";
            }
        }
        if let Some(latency) = self.latency {
            write!(f, "{sep}latency:{}", latency.as_micros())?;
            sep = ",";
        }
        for n in &self.handler_panics {
            write!(f, "{sep}conn-panic@{n}")?;
            sep = ",";
        }
        if sep.is_empty() {
            write!(f, "(no faults)")?;
        }
        Ok(())
    }
}

/// A byte-level fault injector for tests: wraps a stream and mangles
/// the *written* side — reads pass through untouched. Used to prove
/// the server answers corrupt or truncated frames with typed errors
/// instead of hanging or panicking.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    written: u64,
    /// `(offset, mask)`: XOR the byte at absolute write offset.
    corrupt: Vec<(u64, u8)>,
    /// Swallow every byte past this absolute write offset (the peer
    /// sees a frame that simply stops).
    truncate_after: Option<u64>,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            written: 0,
            corrupt: Vec::new(),
            truncate_after: None,
        }
    }

    /// XOR the byte at absolute write `offset` with `mask` (non-zero,
    /// or the fault is a no-op).
    pub fn corrupt_byte(mut self, offset: u64, mask: u8) -> Self {
        self.corrupt.push((offset, mask));
        self
    }

    /// Silently drop every byte written at or past `offset`.
    pub fn truncate_after(mut self, offset: u64) -> Self {
        self.truncate_after = Some(offset);
        self
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.written;
        // Report the whole chunk written even when truncation swallows
        // a suffix — the writer must not notice, the *peer* does.
        self.written += buf.len() as u64;
        let keep = match self.truncate_after {
            Some(cut) if cut <= start => 0,
            Some(cut) => ((cut - start) as usize).min(buf.len()),
            None => buf.len(),
        };
        if keep > 0 {
            let mut chunk = buf[..keep].to_vec();
            for &(offset, mask) in &self.corrupt {
                if (start..start + keep as u64).contains(&offset) {
                    chunk[(offset - start) as usize] ^= mask;
                }
            }
            self.inner.write_all(&chunk)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_schedule_fires_in_sequence() {
        let plan = FaultPlan::new()
            .panic_on_dispatch(1)
            .stall_dispatch(1, Duration::from_micros(5))
            .stall_dispatch(2, Duration::from_micros(7));
        assert_eq!(plan.next_dispatch(), DispatchFault::default());
        assert_eq!(
            plan.next_dispatch(),
            DispatchFault {
                stall: Some(Duration::from_micros(5)),
                panic: true,
            }
        );
        assert_eq!(
            plan.next_dispatch(),
            DispatchFault {
                stall: Some(Duration::from_micros(7)),
                panic: false,
            }
        );
        assert!(plan.next_dispatch().is_noop());
        assert_eq!(plan.dispatches(), 4);
        assert_eq!(plan.scheduled_panics(), 1);
    }

    #[test]
    fn latency_applies_to_every_dispatch() {
        let plan = FaultPlan::new()
            .with_latency(Duration::from_micros(10))
            .stall_dispatch(0, Duration::from_micros(5));
        assert_eq!(plan.next_dispatch().stall, Some(Duration::from_micros(15)));
        assert_eq!(plan.next_dispatch().stall, Some(Duration::from_micros(10)));
    }

    #[test]
    fn connection_schedule_fires_once_per_accept() {
        let plan = FaultPlan::new().panic_on_connection(1);
        assert!(!plan.next_connection_panics());
        assert!(plan.next_connection_panics());
        assert!(!plan.next_connection_panics());
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let plan = FaultPlan::parse("panic@2,stall@3:1500,latency:250,conn-panic@0").unwrap();
        assert_eq!(plan.scheduled_panics(), 1);
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan.to_string(), reparsed.to_string());
        assert_eq!(FaultPlan::new().to_string(), "(no faults)");

        for bad in ["panic@", "stall@3", "latency:x", "wat", "panic@-1"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // Order and whitespace are forgiven.
        assert!(FaultPlan::parse(" panic@1 , latency:10 ").is_ok());
        assert!(FaultPlan::parse("").unwrap().to_string() == "(no faults)");
    }

    #[test]
    fn seeded_plans_replay_and_respect_rates() {
        let a = FaultPlan::seeded(42, 1000, 100, 50, Duration::from_millis(1));
        let b = FaultPlan::seeded(42, 1000, 100, 50, Duration::from_millis(1));
        assert_eq!(a.to_string(), b.to_string(), "same seed, same schedule");
        let c = FaultPlan::seeded(43, 1000, 100, 50, Duration::from_millis(1));
        assert_ne!(a.to_string(), c.to_string(), "different seed differs");
        // ~10% of 1000 — loose bounds, the stream is deterministic.
        let panics = a.scheduled_panics();
        assert!((40..=250).contains(&panics), "panic count {panics}");
        assert!(FaultPlan::seeded(7, 100, 0, 0, Duration::ZERO)
            .to_string()
            .contains("no faults"));
    }

    #[test]
    fn faulty_stream_corrupts_and_truncates_exactly() {
        let mut sink = Vec::new();
        {
            let mut s = FaultyStream::new(&mut sink)
                .corrupt_byte(2, 0xFF)
                .truncate_after(5);
            // Split writes to cross the fault offsets.
            s.write_all(&[0, 1, 2]).unwrap();
            s.write_all(&[3, 4, 5, 6]).unwrap();
            s.flush().unwrap();
        }
        assert_eq!(sink, vec![0, 1, 2 ^ 0xFF, 3, 4]);

        let mut passthrough = FaultyStream::new(&b"abc"[..]);
        let mut buf = [0u8; 3];
        passthrough.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }
}
