//! The multi-model registry: many `.eie` artifacts behind one serving
//! front-end, resident on demand, evicted cold.
//!
//! The deployment story compression pays for (SNIPPETS.md's "1M daily
//! inferences") is *many* compressed models sharing a box, not one.
//! The registry is that layer:
//!
//! * **Registration is cheap** — a name→artifact mapping; nothing loads
//!   until the first request routes to it.
//! * **Residency is a [`ModelServer`]** — first [`acquire`] of a name
//!   loads the artifact, starts the model's worker pool and bounded
//!   queue, and caches the `Arc`. The model's plan cache lives inside
//!   its `CompiledModel`, so every worker (and every later re-load of
//!   the same `Arc`) shares the same pre-decoded plans.
//! * **Eviction is LRU by artifact bytes** — when loading a model would
//!   push the resident total past the byte budget, the registry shuts
//!   down least-recently-used resident models first. A model with
//!   requests in flight (an outstanding [`acquire`] lease — detected by
//!   its `Arc` strong count) is **pinned**: it is never evicted, and
//!   in-flight requests are never severed. The budget is therefore a
//!   bound on *cold* residency: a burst that pins everything may
//!   temporarily exceed it, and the model being admitted always is.
//!
//! [`acquire`]: ModelRegistry::acquire

use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use eie_core::{CompiledModel, ModelArtifactError};

use crate::fault::FaultPlan;
use crate::server::{ModelServer, ServerConfig, ServerStats};

/// Where a registered model's artifact bytes come from.
#[derive(Debug, Clone)]
enum ModelSource {
    /// A `.eie` file on disk, re-read on every (re)load.
    File(PathBuf),
    /// An in-memory `.eie` image (a model registered directly); lets
    /// tests and embedded callers exercise eviction + re-load without a
    /// filesystem.
    Bytes(Arc<[u8]>),
}

/// One registered model.
#[derive(Debug)]
struct Entry {
    name: String,
    source: ModelSource,
    resident: Option<Resident>,
    /// Tick of the most recent acquire — the LRU key.
    last_used: u64,
}

/// A resident model: its live server and the artifact bytes it charges
/// against the budget.
#[derive(Debug)]
struct Resident {
    server: Arc<ModelServer>,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Counters {
    loads: u64,
    evictions: u64,
    hits: u64,
}

#[derive(Debug)]
struct Inner {
    entries: Vec<Entry>,
    tick: u64,
    counters: Counters,
    /// Final statistics of evicted servers, folded in as they retire so
    /// lifetime tallies survive residency churn.
    retired: ServerStats,
}

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No model is registered under the requested name.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
    /// A name was registered twice.
    DuplicateName {
        /// The already-taken name.
        name: String,
    },
    /// The model is registered but its artifact failed to load or
    /// validate.
    Load {
        /// The model whose artifact is bad.
        name: String,
        /// The underlying artifact error.
        source: ModelArtifactError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownModel { name } => {
                write!(f, "no model registered as {name:?}")
            }
            RegistryError::DuplicateName { name } => {
                write!(f, "model {name:?} is already registered")
            }
            RegistryError::Load { name, source } => {
                write!(f, "model {name:?} failed to load: {source}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Load { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A point-in-time view of registry occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Models the registry knows about.
    pub registered: usize,
    /// Models currently resident (server running).
    pub resident: usize,
    /// Artifact bytes of the resident models.
    pub resident_bytes: usize,
    /// The residency budget ([`usize::MAX`] = unbounded).
    pub budget_bytes: usize,
    /// Artifact loads since startup (cold starts and re-loads after
    /// eviction both count).
    pub loads: u64,
    /// Models evicted since startup.
    pub evictions: u64,
    /// Acquires answered from residency (no load).
    pub hits: u64,
}

impl fmt::Display for RegistryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} models resident ({} bytes",
            self.resident, self.registered, self.resident_bytes
        )?;
        if self.budget_bytes != usize::MAX {
            write!(f, " of {} budget", self.budget_bytes)?;
        }
        write!(
            f,
            "), {} loads / {} evictions / {} hits",
            self.loads, self.evictions, self.hits
        )
    }
}

/// A registry of named models sharing one serving policy and one
/// residency budget. The module docs above cover the eviction and
/// pinning semantics.
///
/// # Example
///
/// ```
/// use eie_core::nn::zoo::random_sparse;
/// use eie_core::{CompiledModel, EieConfig};
/// use eie_serve::{ModelRegistry, ServerConfig};
///
/// let w = random_sparse(32, 24, 0.2, 1);
/// let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w);
/// let registry = ModelRegistry::new(ServerConfig::default());
/// registry.register_model("toy", &model).unwrap();
///
/// let server = registry.acquire("toy").unwrap();
/// let result = server.submit(&vec![0.5; 24]).unwrap().wait().unwrap();
/// assert_eq!(result.outputs.len(), 32);
/// assert_eq!(registry.stats().resident, 1);
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    server_config: ServerConfig,
    budget_bytes: usize,
    /// Deterministic fault schedule every loaded server runs under
    /// (tests and the `EIE_FAULTS` CLI gate); `None` in production.
    fault_plan: Option<Arc<FaultPlan>>,
    inner: Mutex<Inner>,
}

impl ModelRegistry {
    /// Creates an empty registry with an unbounded residency budget.
    /// Every model loaded through it serves under `server_config`.
    pub fn new(server_config: ServerConfig) -> Self {
        Self {
            server_config,
            budget_bytes: usize::MAX,
            fault_plan: None,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
                counters: Counters::default(),
                retired: ServerStats::default(),
            }),
        }
    }

    /// Bounds resident artifact bytes (LRU eviction pressure point).
    ///
    /// # Panics
    ///
    /// Panics if `budget_bytes == 0`.
    pub fn with_budget_bytes(mut self, budget_bytes: usize) -> Self {
        assert!(budget_bytes > 0, "budget must be non-zero");
        self.budget_bytes = budget_bytes;
        self
    }

    /// Installs a deterministic [`FaultPlan`]: every model loaded from
    /// here on dispatches under its schedule, and the network front-end
    /// injects its connection faults. Inert by construction in
    /// production — nothing installs a plan outside tests and the
    /// `EIE_FAULTS` CLI gate.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// The serving policy each resident model runs under.
    pub fn server_config(&self) -> &ServerConfig {
        &self.server_config
    }

    /// Registers a `.eie` file under `name` without loading it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateName`] if the name is taken. The file
    /// is not read here: a missing or corrupt artifact surfaces as
    /// [`RegistryError::Load`] on first acquire.
    pub fn register_file(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), RegistryError> {
        self.register(name.into(), ModelSource::File(path.into()))
    }

    /// Registers an in-memory model under `name`, storing its serialized
    /// `.eie` image so eviction and re-load behave exactly as for a
    /// file-backed model.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateName`] if the name is taken.
    pub fn register_model(
        &self,
        name: impl Into<String>,
        model: &CompiledModel,
    ) -> Result<(), RegistryError> {
        self.register(name.into(), ModelSource::Bytes(model.to_bytes().into()))
    }

    fn register(&self, name: String, source: ModelSource) -> Result<(), RegistryError> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if inner.entries.iter().any(|e| e.name == name) {
            return Err(RegistryError::DuplicateName { name });
        }
        inner.entries.push(Entry {
            name,
            source,
            resident: None,
            last_used: 0,
        });
        Ok(())
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .entries
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Resolves `name` to its live server, loading the artifact (and
    /// evicting LRU cold models past the byte budget) if it is not
    /// resident. The returned `Arc` is a **lease**: while any clone is
    /// held, the model is pinned and cannot be evicted.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered name,
    /// [`RegistryError::Load`] when the artifact cannot be read or
    /// validated.
    pub fn acquire(&self, name: &str) -> Result<Arc<ModelServer>, RegistryError> {
        // Servers evicted below are shut down *after* the lock releases:
        // the shutdown joins the model's workers, and that drain must
        // not stall unrelated acquires.
        let mut evicted: Vec<Arc<ModelServer>> = Vec::new();
        let mut guard = self.inner.lock().expect("registry poisoned");
        let inner = &mut *guard;
        inner.tick += 1;
        let tick = inner.tick;

        let idx = inner
            .entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| RegistryError::UnknownModel {
                name: name.to_owned(),
            })?;
        if let Some(resident) = &inner.entries[idx].resident {
            let server = Arc::clone(&resident.server);
            inner.entries[idx].last_used = tick;
            inner.counters.hits += 1;
            return Ok(server);
        }

        // Cold: load and validate the artifact. Loading under the lock
        // serializes cold starts — deliberate, so two requests racing to
        // the same cold model cannot double-load it.
        let model = match &inner.entries[idx].source {
            ModelSource::File(path) => CompiledModel::load(path),
            ModelSource::Bytes(bytes) => CompiledModel::from_bytes(bytes),
        }
        .map_err(|source| RegistryError::Load {
            name: name.to_owned(),
            source,
        })?;
        let bytes = model.artifact_bytes();

        // Make room: evict unpinned residents — degraded servers first
        // (they shed everything anyway, so their residency buys
        // nothing), then least recently used — until the newcomer fits
        // (or nothing evictable is left — pinned models are never
        // severed, so the budget is soft under a burst that pins
        // everything).
        loop {
            let resident_bytes: usize = inner
                .entries
                .iter()
                .filter_map(|e| e.resident.as_ref())
                .map(|r| r.bytes)
                .sum();
            if resident_bytes.saturating_add(bytes) <= self.budget_bytes {
                break;
            }
            let Some(victim) = inner
                .entries
                .iter_mut()
                .filter(|e| {
                    e.resident
                        .as_ref()
                        .is_some_and(|r| Arc::strong_count(&r.server) == 1)
                })
                .min_by_key(|e| {
                    let degraded = e.resident.as_ref().is_some_and(|r| r.server.is_degraded());
                    (!degraded, e.last_used)
                })
            else {
                break;
            };
            let resident = victim.resident.take().expect("victim is resident");
            evicted.push(resident.server);
            inner.counters.evictions += 1;
        }

        let server = Arc::new(ModelServer::start_with_faults(
            model,
            self.server_config,
            self.fault_plan.clone(),
        ));
        inner.entries[idx].resident = Some(Resident {
            server: Arc::clone(&server),
            bytes,
        });
        inner.entries[idx].last_used = tick;
        inner.counters.loads += 1;
        drop(guard);

        if !evicted.is_empty() {
            // Eviction only ever picks servers whose last lease is the
            // registry's own Arc, so the unwrap-and-drain is a real
            // graceful shutdown. Its final tallies are folded into
            // `retired` so lifetime statistics survive residency churn.
            let mut retired = ServerStats::default();
            for victim in evicted {
                match Arc::try_unwrap(victim) {
                    Ok(victim) => retired.merge(&victim.shutdown()),
                    // A racer cloned the Arc between selection and here —
                    // impossible today (selection requires strong_count
                    // == 1 under the lock), kept non-fatal regardless.
                    Err(victim) => retired.merge(&victim.stats_snapshot()),
                }
            }
            self.inner
                .lock()
                .expect("registry poisoned")
                .retired
                .merge(&retired);
        }
        Ok(server)
    }

    /// True when `name` is resident right now (primarily for tests and
    /// occupancy reporting; residency can change the moment the lock
    /// releases).
    pub fn is_resident(&self, name: &str) -> bool {
        self.inner
            .lock()
            .expect("registry poisoned")
            .entries
            .iter()
            .any(|e| e.name == name && e.resident.is_some())
    }

    /// Occupancy and lifetime counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry poisoned");
        RegistryStats {
            registered: inner.entries.len(),
            resident: inner
                .entries
                .iter()
                .filter(|e| e.resident.is_some())
                .count(),
            resident_bytes: inner
                .entries
                .iter()
                .filter_map(|e| e.resident.as_ref())
                .map(|r| r.bytes)
                .sum(),
            budget_bytes: self.budget_bytes,
            loads: inner.counters.loads,
            evictions: inner.counters.evictions,
            hits: inner.counters.hits,
        }
    }

    /// Live serving statistics — evicted models' final tallies plus a
    /// snapshot of every resident model — and the summed queue depth:
    /// the payload of a STATS response.
    pub fn serving_snapshot(&self) -> (ServerStats, usize) {
        let (mut stats, servers): (ServerStats, Vec<Arc<ModelServer>>) = {
            let inner = self.inner.lock().expect("registry poisoned");
            (
                inner.retired.clone(),
                inner
                    .entries
                    .iter()
                    .filter_map(|e| e.resident.as_ref())
                    .map(|r| Arc::clone(&r.server))
                    .collect(),
            )
        };
        // Snapshots are taken outside the registry lock so a slow stats
        // read cannot stall routing.
        let mut queued = 0;
        for server in &servers {
            stats.merge(&server.stats_snapshot());
            queued += server.pending();
        }
        (stats, queued)
    }

    /// Drains every resident model (graceful: queued requests are
    /// answered) and returns the merged lifetime statistics — evicted
    /// models included. Models stay registered; a later acquire
    /// re-loads them, and the lifetime tallies start over.
    pub fn drain(&self) -> ServerStats {
        let mut dropped: Vec<Arc<ModelServer>> = Vec::new();
        let mut stats;
        {
            let mut inner = self.inner.lock().expect("registry poisoned");
            stats = std::mem::take(&mut inner.retired);
            for entry in &mut inner.entries {
                if let Some(resident) = entry.resident.take() {
                    dropped.push(resident.server);
                }
            }
        }
        for server in dropped {
            match Arc::try_unwrap(server) {
                // No outstanding lease: a real graceful shutdown, whose
                // returned tallies include the drained tail.
                Ok(server) => stats.merge(&server.shutdown()),
                // Leased elsewhere: the leaseholder keeps the model
                // alive until it drops its Arc (Drop then closes and
                // joins). Take the best snapshot available now.
                Err(server) => stats.merge(&server.stats_snapshot()),
            }
        }
        stats
    }
}

impl Drop for ModelRegistry {
    /// Dropping the registry drains every resident model so worker
    /// pools never leak (same guarantee as [`ModelServer`]'s own Drop).
    fn drop(&mut self) {
        let _ = self.drain();
    }
}
