//! The model server: one `.eie` artifact, N workers, one request queue.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eie_core::fixed::Q8p8;
use eie_core::{
    percentile, run_stack_planned, BackendKind, CompiledModel, ModelArtifactError, PipelinedStack,
    PlannedLayer, Topology,
};

use crate::fault::FaultPlan;
use crate::queue::{MicroBatchQueue, PushError};

/// Serving policy: which backend executes, how many workers run it, and
/// how requests coalesce into micro-batches.
///
/// A non-consuming builder in the house style of
/// [`EieConfig`](eie_core::EieConfig):
///
/// ```
/// use eie_serve::ServerConfig;
/// use eie_core::BackendKind;
///
/// let cfg = ServerConfig::default()
///     .with_backend(BackendKind::NativeCpu(1))
///     .with_workers(2)
///     .with_max_batch(16)
///     .with_max_wait_us(150)
///     .with_queue_depth(64);
/// assert_eq!(cfg.max_batch, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Backend each worker instantiates (default: single-threaded
    /// `NativeCpu` — the worker pool, not the kernel, provides the
    /// parallelism; `NativeCpu(0)` inside several workers would
    /// oversubscribe the cores).
    pub backend: BackendKind,
    /// Worker threads, one [`Backend`](eie_core::Backend) each.
    pub workers: usize,
    /// Most requests one micro-batch may coalesce.
    pub max_batch: usize,
    /// How long a worker holds a short batch open for stragglers, µs.
    /// `0` disables the wait: every pop takes only what is queued.
    pub max_wait_us: u64,
    /// Bound on queued requests; at this depth
    /// [`ModelServer::submit`] blocks and [`ModelServer::try_submit`]
    /// sheds load.
    pub queue_depth: usize,
    /// Execution layout inside each worker
    /// ([`ServerConfig::with_topology`]): a non-single topology routes
    /// micro-batches through the sharded/pipelined executor
    /// ([`PipelinedStack`]) instead of the single-engine stack loop.
    /// Requires a [`BackendKind::NativeCpu`] backend.
    pub topology: Topology,
    /// Worker quarantine-and-respawn cycles the server will pay for
    /// before degrading to shed-load (see the module docs on the fault
    /// model). Counted across all workers.
    pub restart_budget: u32,
    /// Base pause before a quarantined worker resumes claiming work,
    /// µs; doubles per restart (capped at 64×) so a crash-looping
    /// model cannot spin the pool.
    pub restart_backoff_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            backend: BackendKind::NativeCpu(1),
            workers: 2,
            max_batch: 8,
            max_wait_us: 200,
            queue_depth: 256,
            topology: Topology::single(),
            restart_budget: 8,
            restart_backoff_us: 500,
        }
    }
}

impl ServerConfig {
    /// Sets the backend each worker runs.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "server needs at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the micro-batch size cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be non-zero");
        self.max_batch = max_batch;
        self
    }

    /// Sets the straggler-collection window, µs (`0` = no wait).
    pub fn with_max_wait_us(mut self, max_wait_us: u64) -> Self {
        self.max_wait_us = max_wait_us;
        self
    }

    /// Sets the bounded queue depth (the backpressure point).
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0`.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue_depth must be non-zero");
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the per-worker execution topology: each worker runs its
    /// micro-batches through a sharded/pipelined [`PipelinedStack`]
    /// instead of the single-engine stack loop. Outputs stay bit-exact
    /// (the executor shares the kernels and the chaining semantics);
    /// only the parallel layout changes. [`ModelServer::start`] panics
    /// if a non-single topology is paired with a backend other than
    /// [`BackendKind::NativeCpu`].
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the worker restart budget (`0` = the first panic degrades
    /// the server).
    pub fn with_restart_budget(mut self, restart_budget: u32) -> Self {
        self.restart_budget = restart_budget;
        self
    }

    /// Sets the base restart backoff, µs.
    pub fn with_restart_backoff_us(mut self, restart_backoff_us: u64) -> Self {
        self.restart_backoff_us = restart_backoff_us;
        self
    }
}

impl fmt::Display for ServerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {}, batch ≤{}, wait ≤{} µs, queue ≤{}",
            self.workers, self.backend, self.max_batch, self.max_wait_us, self.queue_depth
        )?;
        if self.topology != Topology::single() {
            write!(f, ", topology {}", self.topology)?;
        }
        Ok(())
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity ([`ModelServer::try_submit`]
    /// only; [`ModelServer::submit`] blocks instead).
    QueueFull {
        /// The configured queue depth that was hit.
        depth: usize,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// The input vector does not match the model's input dimension.
    BadInputLength {
        /// Submitted length.
        got: usize,
        /// The model's input dimension.
        want: usize,
    },
    /// The request's deadline had already lapsed at admission; it was
    /// never queued and no backend slot was spent.
    DeadlineExceeded,
    /// The server spent its restart budget and sheds all load until
    /// evicted or restarted.
    Degraded {
        /// Worker restarts that were paid before degrading.
        restarts: u64,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "request queue full ({depth} pending)")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::BadInputLength { got, want } => {
                write!(f, "input length {got} != model input dimension {want}")
            }
            SubmitError::DeadlineExceeded => {
                write!(f, "deadline expired before admission")
            }
            SubmitError::Degraded { restarts } => {
                write!(
                    f,
                    "server degraded after {restarts} worker restarts; shedding load"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* request failed: the typed answer
/// [`InferenceResponse::wait`] returns instead of a result. Every
/// accepted request gets exactly one of a result or one of these —
/// worker panics and lapsed deadlines no longer propagate as panics at
/// the dispatch site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The worker executing this request's micro-batch panicked. The
    /// worker was quarantined and respawned; inference is pure, so the
    /// request is safe to retry.
    WorkerFailed {
        /// The panic payload, for diagnostics.
        detail: String,
    },
    /// The request's deadline lapsed while it was queued or held in a
    /// coalescing window; it was dropped before burning a backend slot.
    DeadlineExceeded,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::WorkerFailed { detail } => {
                write!(f, "serving worker panicked: {detail}")
            }
            RequestError::DeadlineExceeded => write!(f, "deadline expired before execution"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A failure the server survived and reports after the fact, carried
/// in [`ServerStats::errors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Connection handler threads panicked; their connections dropped,
    /// everything else kept serving.
    HandlerPanicked {
        /// How many handlers died this way.
        connections: usize,
    },
    /// Worker threads were lost for good (the thread itself died — not
    /// a quarantined-and-respawned panic, which is counted in
    /// [`ServerStats::worker_restarts`] instead).
    WorkerLost {
        /// How many workers died this way.
        workers: usize,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::HandlerPanicked { connections } => {
                write!(f, "{connections} connection handler(s) panicked")
            }
            ServerError::WorkerLost { workers } => {
                write!(f, "{workers} worker thread(s) lost")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Per-request serving options beyond the input itself.
///
/// ```
/// use std::time::{Duration, Instant};
/// use eie_serve::SubmitOptions;
///
/// let opts = SubmitOptions::default()
///     .with_deadline(Instant::now() + Duration::from_millis(50));
/// assert!(opts.deadline.is_some());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Answer `DEADLINE_EXCEEDED` instead of executing once this
    /// instant passes. Checked at admission, at coalesce time, and
    /// right before dispatch.
    pub deadline: Option<Instant>,
    /// Retry attempt number (0 = first try); attempts > 0 count into
    /// [`ServerStats::retries_upstream`].
    pub attempt: u32,
}

impl SubmitOptions {
    /// Sets the absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Marks the submission as retry attempt `attempt`.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }
}

/// The completed result of one served request.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Output activations, Q8.8 — bit-identical to a per-request
    /// functional run, however the request was micro-batched.
    pub outputs: Vec<Q8p8>,
    /// Time from submission to the worker claiming the micro-batch, µs.
    pub queue_us: f64,
    /// End-to-end time from submission to completion, µs.
    pub latency_us: f64,
    /// How many requests rode in the same micro-batch (≥ 1).
    pub coalesced: usize,
    /// Which worker executed it.
    pub worker: usize,
}

impl RequestResult {
    /// Output activations converted to `f32`.
    pub fn outputs_f32(&self) -> Vec<f32> {
        self.outputs.iter().map(|v| v.to_f32()).collect()
    }
}

/// A handle to an in-flight request, returned by
/// [`ModelServer::submit`]. Redeem it with
/// [`InferenceResponse::wait`]; every accepted request is answered —
/// with a result or a typed [`RequestError`] — including during a
/// graceful shutdown drain and across worker panics.
#[derive(Debug)]
pub struct InferenceResponse {
    rx: mpsc::Receiver<Result<RequestResult, RequestError>>,
}

impl InferenceResponse {
    /// Blocks until the request completes, successfully or with a
    /// typed failure.
    ///
    /// # Errors
    ///
    /// [`RequestError::WorkerFailed`] if the executing worker
    /// panicked (the worker is quarantined and respawned; the request
    /// is safe to retry), [`RequestError::DeadlineExceeded`] if the
    /// deadline lapsed before execution.
    pub fn wait(self) -> Result<RequestResult, RequestError> {
        self.rx.recv().unwrap_or_else(|_| {
            // The sending side was dropped without an answer — only
            // possible if a worker thread itself died (not a caught
            // panic). Surface it typed rather than panicking here.
            Err(RequestError::WorkerFailed {
                detail: "worker thread died before answering".into(),
            })
        })
    }

    /// Returns the outcome if the request already completed.
    pub fn try_wait(&self) -> Option<Result<RequestResult, RequestError>> {
        self.rx.try_recv().ok()
    }
}

/// One queued request.
#[derive(Debug)]
struct Request {
    input: Vec<Q8p8>,
    submitted: Instant,
    deadline: Option<Instant>,
    tx: mpsc::Sender<Result<RequestResult, RequestError>>,
}

/// Fault-tolerance tallies shared by the admission path, every worker,
/// and the stats snapshot. Plain relaxed atomics: each is a statistic,
/// not a synchronization point — except `degraded`, which admission
/// reads to shed load.
#[derive(Debug, Default)]
struct FaultCounters {
    accepted: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    retries_upstream: AtomicU64,
    restarts: AtomicU64,
    degraded: AtomicBool,
}

/// Per-worker reservoir capacity. Two reservoirs of `f64` per worker
/// bound the metrics memory at ~256 KiB/worker however long the server
/// runs; 16 Ki samples keep the p99 estimate tight (±~0.1% rank error).
const RESERVOIR_CAP: usize = 16_384;

/// A fixed-capacity uniform sample of a latency stream (Algorithm R):
/// the first `RESERVOIR_CAP` values are kept verbatim, after which each
/// new value replaces a random slot with probability `cap/seen` — so
/// percentiles stay statistically valid at constant memory over an
/// unbounded run.
#[derive(Debug, Clone)]
struct Reservoir {
    samples: Vec<f64>,
    seen: u64,
    rng: u64,
}

impl Reservoir {
    fn new(seed: u64) -> Self {
        Self {
            samples: Vec::new(),
            // SplitMix64-style seeding keeps per-worker streams distinct.
            seen: 0,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        xorshift64star(&mut self.rng)
    }

    fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(value);
        } else {
            let slot = self.next_u64() % self.seen;
            if (slot as usize) < RESERVOIR_CAP {
                self.samples[slot as usize] = value;
            }
        }
    }
}

/// xorshift64*: cheap, no external dependency, quality is ample for
/// reservoir slot selection and merge-time source selection.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Merges two uniform samples of two streams into one uniform sample of
/// the combined stream: `pool` (a sample of `pool_seen` observations)
/// absorbs `incoming` (a sample of `incoming_seen`).
///
/// While everything fits in [`RESERVOIR_CAP`] the union is kept exactly
/// (a sub-capacity sample *is* its stream). Past capacity, each output
/// slot draws its source hypergeometrically — from `pool` with
/// probability proportional to the *remaining* unsampled weight of
/// `pool_seen`, else from `incoming` — so each source contributes in
/// proportion to its observed count, not its sample count. Reservoir
/// samples are exchangeable, so consuming each source sequentially is
/// itself uniform; the RNG is seeded from the two counts, keeping any
/// given merge deterministic.
fn merge_sample_pools(pool: &mut Vec<f64>, pool_seen: u64, incoming: &[f64], incoming_seen: u64) {
    if incoming.is_empty() {
        return;
    }
    if pool.is_empty() || pool.len() + incoming.len() <= RESERVOIR_CAP {
        pool.extend_from_slice(incoming);
        return;
    }
    let mut rng = pool_seen
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(incoming_seen)
        | 1;
    let target = RESERVOIR_CAP.min(pool.len() + incoming.len());
    let source = std::mem::take(pool);
    let (mut ia, mut ib) = (0usize, 0usize);
    // Remaining stream weights behind each sample (≥ sample length —
    // `seen` counts the whole stream the sample summarizes).
    let mut wa = pool_seen.max(source.len() as u64);
    let mut wb = incoming_seen.max(incoming.len() as u64);
    pool.reserve(target);
    for _ in 0..target {
        let take_a = if ia >= source.len() {
            false
        } else if ib >= incoming.len() {
            true
        } else {
            xorshift64star(&mut rng) % (wa + wb) < wa
        };
        if take_a {
            pool.push(source[ia]);
            ia += 1;
            wa = wa.saturating_sub(1).max((source.len() - ia) as u64);
        } else {
            pool.push(incoming[ib]);
            ib += 1;
            wb = wb.saturating_sub(1).max((incoming.len() - ib) as u64);
        }
    }
}

/// Per-worker tallies, published through a shared `Mutex` so a live
/// snapshot ([`ModelServer::stats_snapshot`]) and the final merge
/// ([`ModelServer::shutdown`]) read the same numbers. The lock is taken
/// once per micro-batch, not per request, so it costs the hot path one
/// uncontended lock per batch.
#[derive(Debug)]
struct WorkerStats {
    requests: u64,
    batches: u64,
    max_coalesced: usize,
    latencies_us: Reservoir,
    queue_us: Reservoir,
}

impl WorkerStats {
    fn new(worker: usize) -> Self {
        Self {
            requests: 0,
            batches: 0,
            max_coalesced: 0,
            latencies_us: Reservoir::new(worker as u64 + 1),
            queue_us: Reservoir::new((worker as u64 + 1) << 32),
        }
    }
}

/// Aggregate serving statistics, returned by [`ModelServer::shutdown`]
/// and sampled live by [`ModelServer::stats_snapshot`].
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests served to completion (exact count).
    pub requests: u64,
    /// Micro-batches executed (exact count).
    pub batches: u64,
    /// Largest micro-batch observed.
    pub max_coalesced: usize,
    /// Sampled per-request end-to-end latencies, µs. Exact below
    /// 16 Ki requests total; a uniform reservoir sample beyond, so the
    /// percentile accessors stay valid at constant memory over
    /// unbounded runs. Per-worker reservoirs merge **weighted by each
    /// worker's observed request count** (not per-sample), so the
    /// merged pool is a uniform sample of the server's whole traffic
    /// and p50/p95/p99 stay unbiased across workers with unequal
    /// traffic shares.
    pub latencies_us: Vec<f64>,
    /// Sampled per-request queue times, µs (same reservoir policy and
    /// traffic-weighted merge).
    pub queue_us: Vec<f64>,
    /// Server lifetime from start to the end of the shutdown drain, s.
    pub wall_s: f64,
    /// Requests admitted past input validation. Accounting invariant
    /// (pinned by the chaos property test):
    /// `accepted = requests + shed + expired + failed`.
    pub accepted: u64,
    /// Requests shed by admission control (queue full, or degraded).
    pub shed: u64,
    /// Requests answered [`RequestError::DeadlineExceeded`] at
    /// admission, coalesce, or dispatch time.
    pub expired: u64,
    /// Requests answered [`RequestError::WorkerFailed`] after a worker
    /// panic.
    pub failed: u64,
    /// Requests that arrived marked as retries (attempt > 0).
    pub retries_upstream: u64,
    /// Worker quarantine-and-respawn cycles.
    pub worker_restarts: u64,
    /// Servers currently degraded to shed-load (0 or 1 for a single
    /// [`ModelServer`]; sums across models under
    /// [`ServerStats::merge`]).
    pub degraded: u64,
    /// Connections evicted for not reading responses within the write
    /// grace period (filled in by the network front-end).
    pub slow_client_evictions: u64,
    /// Failures the server survived and reports after the fact.
    pub errors: Vec<ServerError>,
}

impl ServerStats {
    /// Folds one worker's tallies in. **Merge semantics:** sample pools
    /// merge weighted by each side's observed request count
    /// ([`merge_sample_pools`]), so a worker that served 99% of the
    /// traffic contributes ~99% of the merged pool however its
    /// reservoir was bounded — percentiles are over *traffic*, not over
    /// per-worker samples. Pinned by a unit test.
    fn absorb(&mut self, w: &WorkerStats) {
        let pool_seen = self.requests;
        self.requests += w.requests;
        self.batches += w.batches;
        self.max_coalesced = self.max_coalesced.max(w.max_coalesced);
        merge_sample_pools(
            &mut self.latencies_us,
            pool_seen,
            &w.latencies_us.samples,
            w.latencies_us.seen,
        );
        merge_sample_pools(
            &mut self.queue_us,
            pool_seen,
            &w.queue_us.samples,
            w.queue_us.seen,
        );
    }

    /// Folds another aggregate in — how a multi-model front-end rolls
    /// per-model statistics into one report. Counters add; the sample
    /// pools merge weighted by each aggregate's request count (the same
    /// traffic-share semantics as the worker merge); `wall_s` keeps the
    /// longer lifetime (the models served concurrently, so lifetimes
    /// overlap rather than add).
    pub fn merge(&mut self, other: &ServerStats) {
        let pool_seen = self.requests;
        self.requests += other.requests;
        self.batches += other.batches;
        self.max_coalesced = self.max_coalesced.max(other.max_coalesced);
        merge_sample_pools(
            &mut self.latencies_us,
            pool_seen,
            &other.latencies_us,
            other.requests,
        );
        merge_sample_pools(
            &mut self.queue_us,
            pool_seen,
            &other.queue_us,
            other.requests,
        );
        self.wall_s = self.wall_s.max(other.wall_s);
        self.accepted += other.accepted;
        self.shed += other.shed;
        self.expired += other.expired;
        self.failed += other.failed;
        self.retries_upstream += other.retries_upstream;
        self.worker_restarts += other.worker_restarts;
        self.degraded += other.degraded;
        self.slow_client_evictions += other.slow_client_evictions;
        self.errors.extend(other.errors.iter().cloned());
    }

    /// Mean requests per executed micro-batch (`0.0` before any batch).
    pub fn mean_coalesced(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.requests as f64 / self.batches as f64
    }

    /// The `p`-th percentile of end-to-end request latency, µs
    /// (nearest-rank; `0.0` with no completed requests).
    pub fn percentile_latency_us(&self, p: f64) -> f64 {
        percentile(&self.latencies_us, p)
    }

    /// Median request latency, µs.
    pub fn p50(&self) -> f64 {
        self.percentile_latency_us(50.0)
    }

    /// 95th-percentile request latency, µs.
    pub fn p95(&self) -> f64 {
        self.percentile_latency_us(95.0)
    }

    /// 99th-percentile request latency, µs.
    pub fn p99(&self) -> f64 {
        self.percentile_latency_us(99.0)
    }

    /// Mean queue time, µs (`0.0` with no completed requests).
    pub fn mean_queue_us(&self) -> f64 {
        if self.queue_us.is_empty() {
            return 0.0;
        }
        self.queue_us.iter().sum::<f64>() / self.queue_us.len() as f64
    }

    /// Aggregate throughput over the server's lifetime, frames/s.
    pub fn frames_per_second(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.wall_s
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests in {} batches (mean {:.1}/batch), {:.0} frames/s, \
             p50 {:.1} µs / p95 {:.1} µs / p99 {:.1} µs, queue {:.1} µs mean",
            self.requests,
            self.batches,
            self.mean_coalesced(),
            self.frames_per_second(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.mean_queue_us()
        )?;
        // The fault tail only appears once something actually failed,
        // so healthy runs keep the familiar one-line shape.
        if self.shed + self.expired + self.failed + self.worker_restarts + self.degraded > 0 {
            write!(
                f,
                "; faults: {} shed, {} expired, {} failed, {} restarts{}",
                self.shed,
                self.expired,
                self.failed,
                self.worker_restarts,
                if self.degraded > 0 { ", DEGRADED" } else { "" }
            )?;
        }
        for e in &self.errors {
            write!(f, "; {e}")?;
        }
        Ok(())
    }
}

/// A live serving instance of one compiled model: a bounded request
/// queue feeding `workers` threads, each owning one instantiated
/// [`Backend`](eie_core::Backend).
///
/// Requests submitted concurrently are coalesced into micro-batches
/// (bounded by [`ServerConfig::max_batch`] and
/// [`ServerConfig::max_wait_us`]) purely for throughput: outputs are
/// **bit-identical** to a per-request run of the functional golden
/// model, because every execution path shares [`run_stack_planned`]'s
/// chaining loop and quantization — pre-decoded execution plans change
/// where a backend reads its weights from, never the accumulation
/// order.
///
/// # Example
///
/// ```
/// use eie_core::nn::zoo::random_sparse;
/// use eie_core::{BackendKind, CompiledModel, EieConfig};
/// use eie_serve::{ModelServer, ServerConfig};
///
/// let w = random_sparse(32, 24, 0.2, 1);
/// let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w);
/// let golden = model.infer(BackendKind::Functional).submit_one(&vec![0.5; 24]);
///
/// let server = ModelServer::start(model, ServerConfig::default());
/// let response = server.submit(&vec![0.5; 24]).unwrap();
/// let result = response.wait().unwrap();
/// assert_eq!(result.outputs, golden.outputs(0));
/// let stats = server.shutdown();
/// assert_eq!(stats.requests, 1);
/// ```
#[derive(Debug)]
pub struct ModelServer {
    model: Arc<CompiledModel>,
    queue: Arc<MicroBatchQueue<Request>>,
    workers: Vec<JoinHandle<()>>,
    /// One shared tally per worker, written once per micro-batch; read
    /// by [`ModelServer::stats_snapshot`] and [`ModelServer::shutdown`].
    worker_stats: Vec<Arc<Mutex<WorkerStats>>>,
    counters: Arc<FaultCounters>,
    /// Workers found dead at shutdown (thread death, not a caught
    /// panic); surfaced as [`ServerError::WorkerLost`].
    lost_workers: Mutex<usize>,
    config: ServerConfig,
    started: Instant,
}

impl ModelServer {
    /// Starts the server: spawns the worker pool and begins accepting
    /// requests immediately.
    ///
    /// # Panics
    ///
    /// Panics if the policy is degenerate (`workers`, `max_batch` or
    /// `queue_depth` of zero — the `with_*` builders enforce the same
    /// bounds, but [`ServerConfig`]'s fields are public) or a worker
    /// thread cannot be spawned.
    pub fn start(model: CompiledModel, config: ServerConfig) -> Self {
        Self::start_with_faults(model, config, None)
    }

    /// [`ModelServer::start`] with a [`FaultPlan`] installed: every
    /// dispatch consults the plan for injected panics, stalls and
    /// latency. The chaos harness's entry point; `None` is exactly
    /// `start`.
    pub fn start_with_faults(
        model: CompiledModel,
        config: ServerConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be non-zero");
        assert!(config.queue_depth > 0, "queue_depth must be non-zero");
        assert!(
            config.topology == Topology::single()
                || matches!(config.backend, BackendKind::NativeCpu(_)),
            "a topology requires the native-cpu backend, not {}",
            config.backend
        );
        let model = Arc::new(model);
        let queue = Arc::new(MicroBatchQueue::new(config.queue_depth));
        let counters = Arc::new(FaultCounters::default());
        let worker_stats: Vec<Arc<Mutex<WorkerStats>>> = (0..config.workers)
            .map(|worker| Arc::new(Mutex::new(WorkerStats::new(worker))))
            .collect();
        let workers = (0..config.workers)
            .map(|worker| {
                let model = Arc::clone(&model);
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&worker_stats[worker]);
                let counters = Arc::clone(&counters);
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("eie-serve-{worker}"))
                    .spawn(move || {
                        worker_loop(worker, &model, config, &queue, &stats, &counters, faults)
                    })
                    .expect("spawn serving worker")
            })
            .collect();
        Self {
            model,
            queue,
            workers,
            worker_stats,
            counters,
            lost_workers: Mutex::new(0),
            config,
            started: Instant::now(),
        }
    }

    /// Loads a versioned `.eie` artifact and starts serving it — the
    /// deployment path: compress once, serve anywhere.
    pub fn load(path: impl AsRef<Path>, config: ServerConfig) -> Result<Self, ModelArtifactError> {
        Ok(Self::start(CompiledModel::load(path)?, config))
    }

    /// The model being served.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// The serving policy.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Requests queued but not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submits one input vector, blocking while the bounded queue is
    /// full (backpressure). Returns a handle redeemable for the result.
    pub fn submit(&self, input: &[f32]) -> Result<InferenceResponse, SubmitError> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// [`ModelServer::submit`] with per-request [`SubmitOptions`]
    /// (deadline, attempt number).
    pub fn submit_with(
        &self,
        input: &[f32],
        opts: SubmitOptions,
    ) -> Result<InferenceResponse, SubmitError> {
        let (request, rx) = self.admit(input, opts)?;
        match self.queue.push(request) {
            Ok(()) => {
                self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(InferenceResponse { rx })
            }
            Err(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submits one input vector without blocking: fails fast with
    /// [`SubmitError::QueueFull`] when the queue is at capacity — the
    /// shed-load path for callers with their own retry policy.
    pub fn try_submit(&self, input: &[f32]) -> Result<InferenceResponse, SubmitError> {
        self.try_submit_with(input, SubmitOptions::default())
    }

    /// [`ModelServer::try_submit`] with per-request [`SubmitOptions`].
    pub fn try_submit_with(
        &self,
        input: &[f32],
        opts: SubmitOptions,
    ) -> Result<InferenceResponse, SubmitError> {
        let (request, rx) = self.admit(input, opts)?;
        match self.queue.try_push(request) {
            Ok(()) => {
                self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(InferenceResponse { rx })
            }
            Err(PushError::Full) => {
                self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull {
                    depth: self.config.queue_depth,
                })
            }
            Err(PushError::Closed) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Whether the server spent its restart budget and now sheds all
    /// load.
    pub fn is_degraded(&self) -> bool {
        self.counters.degraded.load(Ordering::Relaxed)
    }

    /// Validates and quantizes an input into a queued request, and runs
    /// the admission-time fault checks (deadline, degraded). The
    /// quantization here is the same `Q8p8` conversion
    /// [`InferenceJob::submit`](eie_core::InferenceJob::submit) applies,
    /// so served outputs stay bit-exact with direct jobs.
    ///
    /// Accounting: `accepted` counts submissions that passed input
    /// validation and were *dispositioned* — queued, shed, or expired —
    /// so `accepted = requests + shed + expired + failed` holds at
    /// drain. Rejections a caller must fix (bad length) and
    /// shutdown-window races are outside the equation.
    #[allow(clippy::type_complexity)]
    fn admit(
        &self,
        input: &[f32],
        opts: SubmitOptions,
    ) -> Result<(Request, mpsc::Receiver<Result<RequestResult, RequestError>>), SubmitError> {
        if input.len() != self.model.input_dim() {
            return Err(SubmitError::BadInputLength {
                got: input.len(),
                want: self.model.input_dim(),
            });
        }
        if opts.attempt > 0 {
            self.counters
                .retries_upstream
                .fetch_add(1, Ordering::Relaxed);
        }
        if self.is_degraded() {
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Degraded {
                restarts: self.counters.restarts.load(Ordering::Relaxed),
            });
        }
        if let Some(deadline) = opts.deadline {
            if Instant::now() >= deadline {
                self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::DeadlineExceeded);
            }
        }
        let (tx, rx) = mpsc::channel();
        Ok((
            Request {
                input: Q8p8::from_f32_slice(input),
                submitted: Instant::now(),
                deadline: opts.deadline,
                tx,
            },
            rx,
        ))
    }

    /// A live view of the aggregate serving statistics: every worker's
    /// published tallies merged over the server's lifetime *so far*,
    /// without stopping anything — the number behind a serving
    /// front-end's STATS endpoint. Requests inside a micro-batch a
    /// worker is still executing are not yet counted.
    pub fn stats_snapshot(&self) -> ServerStats {
        let mut stats = ServerStats::default();
        for worker in &self.worker_stats {
            stats.absorb(&worker.lock().expect("worker stats poisoned"));
        }
        stats.wall_s = self.started.elapsed().as_secs_f64();
        stats.accepted = self.counters.accepted.load(Ordering::Relaxed);
        stats.shed = self.counters.shed.load(Ordering::Relaxed);
        stats.expired = self.counters.expired.load(Ordering::Relaxed);
        stats.failed = self.counters.failed.load(Ordering::Relaxed);
        stats.retries_upstream = self.counters.retries_upstream.load(Ordering::Relaxed);
        stats.worker_restarts = self.counters.restarts.load(Ordering::Relaxed);
        stats.degraded = u64::from(self.counters.degraded.load(Ordering::Relaxed));
        let lost = *self
            .lost_workers
            .lock()
            .expect("lost-worker tally poisoned");
        if lost > 0 {
            stats.errors.push(ServerError::WorkerLost { workers: lost });
        }
        stats
    }

    /// Gracefully shuts down: stops accepting requests, lets the
    /// workers drain everything already queued (every accepted request
    /// is answered — with a result or a typed [`RequestError`]), joins
    /// them, and returns the aggregate statistics. A worker thread
    /// found dead (its panics are normally caught and quarantined, so
    /// this means the thread itself was killed) is reported as
    /// [`ServerError::WorkerLost`] in [`ServerStats::errors`] instead
    /// of propagating the panic to the caller.
    pub fn shutdown(mut self) -> ServerStats {
        self.queue.close();
        // Take the handles so the Drop impl (which runs when `self` goes
        // out of scope here) finds nothing left to join.
        for handle in std::mem::take(&mut self.workers) {
            if handle.join().is_err() {
                *self
                    .lost_workers
                    .lock()
                    .expect("lost-worker tally poisoned") += 1;
            }
        }
        self.stats_snapshot()
    }
}

impl Drop for ModelServer {
    /// Dropping a server without [`ModelServer::shutdown`] (an early
    /// return, a `?`, a panic unwinding past it) must not leak the
    /// worker pool: close the queue, let the workers drain, and join
    /// them — discarding the statistics. Worker panics are swallowed
    /// here (joining is best-effort during unwind); `shutdown` is the
    /// path that surfaces them.
    fn drop(&mut self) {
        self.queue.close();
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One worker: build its executor (a backend instance, or — under a
/// non-single [`ServerConfig::topology`] — a [`PipelinedStack`] with
/// per-stage engines), resolve the model's planned layers (plans are
/// built into the model's shared cache at worker startup, so every
/// worker scans the same pre-decoded arrays), then claim → execute →
/// answer micro-batches until the queue closes and drains. Both
/// executors share the kernels and the chaining semantics, so served
/// outputs are bit-identical either way.
///
/// # Quarantine
///
/// Execution runs inside `catch_unwind`: a panic (a backend bug, or an
/// injected [`FaultPlan`] fault) fails only the claimed batch — each of
/// its requests is answered with a typed
/// [`RequestError::WorkerFailed`] — and the worker *respawns*: the
/// `'respawn` loop tears the executor down, waits out an exponential
/// backoff, rebuilds it, and resumes claiming work. Restarts draw on
/// the server-wide [`ServerConfig::restart_budget`]; once spent, the
/// server flips to degraded and admission sheds everything, but the
/// workers keep draining so every accepted request is still answered.
///
/// # Deadlines
///
/// A claimed batch is filtered twice — when claimed (covers time spent
/// queued and in the coalescing window) and again right before dispatch
/// (covers injected stalls and restart backoff): requests whose
/// deadline lapsed are answered [`RequestError::DeadlineExceeded`]
/// without a backend slot.
fn worker_loop(
    worker: usize,
    model: &CompiledModel,
    config: ServerConfig,
    queue: &MicroBatchQueue<Request>,
    shared: &Mutex<WorkerStats>,
    counters: &FaultCounters,
    faults: Option<Arc<FaultPlan>>,
) {
    let max_wait = Duration::from_micros(config.max_wait_us);
    let pipelined = config.topology != Topology::single();
    let mut consecutive_restarts = 0u32;
    'respawn: loop {
        let backend = (!pipelined).then(|| config.backend.instantiate(model.config()));
        let layers: Vec<PlannedLayer<'_>> =
            if pipelined || backend.as_deref().is_some_and(|b| b.wants_plans()) {
                model.planned_layers()
            } else {
                model.layers().iter().map(PlannedLayer::unplanned).collect()
            };
        let stack = pipelined.then(|| {
            let threads = match config.backend {
                BackendKind::NativeCpu(t) => t,
                other => unreachable!("ModelServer::start rejected topology × {other}"),
            };
            PipelinedStack::new(&layers, &config.topology, threads)
        });
        while let Some(mut batch) = queue.pop_batch(config.max_batch, max_wait) {
            if batch.is_empty() {
                continue;
            }
            let fault = faults
                .as_ref()
                .map(|f| f.next_dispatch())
                .unwrap_or_default();
            if let Some(hold) = fault.stall {
                std::thread::sleep(hold);
            }
            // Deadline filter at dispatch time (pop_batch already spent
            // the coalescing window, the stall may have spent more).
            let now = Instant::now();
            batch.retain(|r| match r.deadline {
                Some(deadline) if now >= deadline => {
                    counters.expired.fetch_add(1, Ordering::Relaxed);
                    let _ = r.tx.send(Err(RequestError::DeadlineExceeded));
                    false
                }
                _ => true,
            });
            if batch.is_empty() {
                continue;
            }
            let claimed = Instant::now();
            let inputs: Vec<Vec<Q8p8>> = batch
                .iter_mut()
                .map(|r| std::mem::take(&mut r.input))
                .collect();
            let executed = panic::catch_unwind(AssertUnwindSafe(|| {
                if fault.panic {
                    panic!("injected worker panic");
                }
                let outputs: Vec<Vec<Q8p8>> = match (&stack, &backend) {
                    (Some(stack), _) => stack.run(&inputs).outputs,
                    (None, Some(backend)) => run_stack_planned(backend.as_ref(), &layers, &inputs)
                        .into_iter()
                        .map(|run| run.outputs)
                        .collect(),
                    (None, None) => unreachable!("worker has neither executor"),
                };
                outputs
            }));
            let outputs = match executed {
                Ok(outputs) => {
                    consecutive_restarts = 0;
                    outputs
                }
                Err(payload) => {
                    // Quarantine: fail only this batch, typed; then
                    // respawn the executor after a bounded backoff.
                    let detail = panic_detail(payload);
                    for request in batch {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        let _ = request.tx.send(Err(RequestError::WorkerFailed {
                            detail: detail.clone(),
                        }));
                    }
                    let restarts = counters.restarts.fetch_add(1, Ordering::Relaxed) + 1;
                    if restarts > u64::from(config.restart_budget) {
                        counters.degraded.store(true, Ordering::Relaxed);
                    }
                    let shift = consecutive_restarts.min(6);
                    consecutive_restarts += 1;
                    std::thread::sleep(Duration::from_micros(config.restart_backoff_us << shift));
                    continue 'respawn;
                }
            };
            let done = Instant::now();
            let coalesced = batch.len();
            let mut stats = shared.lock().expect("worker stats poisoned");
            stats.batches += 1;
            stats.max_coalesced = stats.max_coalesced.max(coalesced);
            for (request, outputs) in batch.into_iter().zip(outputs) {
                let queue_us = claimed.duration_since(request.submitted).as_secs_f64() * 1e6;
                let latency_us = done.duration_since(request.submitted).as_secs_f64() * 1e6;
                stats.requests += 1;
                stats.queue_us.push(queue_us);
                stats.latencies_us.push(latency_us);
                // A dropped receiver (caller gave up) is not an error.
                let _ = request.tx.send(Ok(RequestResult {
                    outputs,
                    queue_us,
                    latency_us,
                    coalesced,
                    worker,
                }));
            }
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_weights_samples_by_traffic_share() {
        // Asserts the weighted reservoir merge (the old equal-weight
        // concatenation is gone): worker A saw 4× the reservoir
        // capacity of requests (its reservoir holds CAP samples of
        // value 1000); worker B saw only 10 requests (10 samples of
        // value 0). B is ~0.015% of traffic, so a traffic-weighted
        // merge admits at most a handful of B's zeros into the bounded
        // pool — the old concatenation kept all 10 regardless of
        // traffic, biasing every low percentile toward the idle worker.
        let mut a = WorkerStats::new(0);
        for _ in 0..(4 * RESERVOIR_CAP as u64) {
            a.requests += 1;
            a.latencies_us.push(1000.0);
            a.queue_us.push(1000.0);
        }
        let mut b = WorkerStats::new(1);
        for _ in 0..10 {
            b.requests += 1;
            b.latencies_us.push(0.0);
            b.queue_us.push(0.0);
        }
        let mut merged = ServerStats::default();
        merged.absorb(&a);
        merged.absorb(&b);
        // Exact request counts survive the merge…
        assert_eq!(merged.requests, 4 * RESERVOIR_CAP as u64 + 10);
        // …and the merged pool stays bounded at reservoir capacity (a
        // uniform sample of the union, not a concatenation).
        assert_eq!(merged.latencies_us.len(), RESERVOIR_CAP);
        // B's expected share of the pool is CAP × (10 / 65546) ≈ 2.5
        // samples. Strictly fewer than the 10 the biased merge kept;
        // a loose deterministic bound (the merge RNG is seeded from
        // the observation counts) guards the proportionality.
        let zeros = merged.latencies_us.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros < 10, "traffic weighting must down-sample B: {zeros}");
        // The percentile view is over traffic: the idle worker no
        // longer defines the distribution's low tail…
        assert_eq!(merged.p50(), 1000.0);
        assert_eq!(merged.percentile_latency_us(0.05), 1000.0);
        // …while sub-capacity merges stay exact (nothing to weight).
        let mut small = ServerStats::default();
        let mut c = WorkerStats::new(2);
        for _ in 0..4 {
            c.requests += 1;
            c.latencies_us.push(7.0);
            c.queue_us.push(1.0);
        }
        small.absorb(&c);
        small.absorb(&b);
        assert_eq!(small.latencies_us.len(), 14);
        assert_eq!(small.percentile_latency_us(1.0), 0.0);
    }

    #[test]
    fn aggregate_merge_is_also_traffic_weighted_and_bounded() {
        // The public ServerStats::merge (multi-model roll-up) applies
        // the same weighted semantics: two over-capacity aggregates
        // merge into one capacity-bounded pool with contributions
        // proportional to their request counts.
        let mut hot = ServerStats {
            requests: 9 * RESERVOIR_CAP as u64,
            latencies_us: vec![500.0; RESERVOIR_CAP],
            ..ServerStats::default()
        };
        let cold = ServerStats {
            requests: RESERVOIR_CAP as u64,
            latencies_us: vec![5.0; RESERVOIR_CAP],
            wall_s: 2.0,
            ..ServerStats::default()
        };
        hot.merge(&cold);
        assert_eq!(hot.requests, 10 * RESERVOIR_CAP as u64);
        assert_eq!(hot.latencies_us.len(), RESERVOIR_CAP);
        assert_eq!(hot.wall_s, 2.0);
        let cold_share =
            hot.latencies_us.iter().filter(|&&v| v == 5.0).count() as f64 / RESERVOIR_CAP as f64;
        // Cold served 10% of the traffic; its pool share must sit near
        // that, nowhere near the 50% an equal-weight merge would give.
        assert!(
            (0.05..0.2).contains(&cold_share),
            "cold share {cold_share} should be ≈0.1"
        );
        // p50 lands on the hot aggregate's latency.
        assert_eq!(hot.p50(), 500.0);
    }

    #[test]
    fn reservoir_is_exact_below_capacity_and_bounded_above() {
        let mut r = Reservoir::new(7);
        for i in 0..RESERVOIR_CAP {
            r.push(i as f64);
        }
        assert_eq!(r.samples.len(), RESERVOIR_CAP);
        // Exact while under capacity: insertion order preserved.
        assert_eq!(r.samples[0], 0.0);
        assert_eq!(r.samples[RESERVOIR_CAP - 1], (RESERVOIR_CAP - 1) as f64);
        // Past capacity: memory stays bounded, the count keeps going,
        // and replacement actually happens over a long stream.
        for i in 0..(4 * RESERVOIR_CAP) {
            r.push((RESERVOIR_CAP + i) as f64);
        }
        assert_eq!(r.samples.len(), RESERVOIR_CAP);
        assert_eq!(r.seen, 5 * RESERVOIR_CAP as u64);
        assert!(
            r.samples.iter().any(|&v| v >= RESERVOIR_CAP as f64),
            "no late sample ever replaced an early one"
        );
    }
}
