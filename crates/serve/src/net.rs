//! The TCP front-end: a [`ModelRegistry`] behind a listener speaking
//! the [`protocol`](crate::protocol) frames, plus the matching blocking
//! [`Client`].
//!
//! Built on `std::net` only (the workspace is offline — no async
//! runtime, no HTTP stack). One thread accepts; each connection gets a
//! handler thread running a strict request→response loop, so a
//! connection has at most one request in flight and responses can never
//! interleave. Concurrency comes from opening more connections — they
//! all route into the same per-model bounded queues, where micro-batch
//! coalescing happens exactly as for in-process callers.
//!
//! Three behaviors are deliberate:
//!
//! * **Overload is an answer, not a stall.** Inference uses the
//!   shed-load [`try_submit`](crate::ModelServer::try_submit) path: a
//!   full queue answers [`Response::Overloaded`] immediately and the
//!   client owns the retry policy. A networked caller can always
//!   distinguish "the box is busy" from "the box is gone".
//! * **Malformed bytes end the connection, typed.** The server answers
//!   [`ErrorCode::Malformed`] and closes — after a framing error the
//!   stream position cannot be trusted, so resynchronizing would be a
//!   guess. Other errors (unknown model, wrong input length) are
//!   per-request and leave the connection open.
//! * **Shutdown drains.** A SHUTDOWN frame (or
//!   [`NetServer::request_shutdown`]) stops the accept loop, lets every
//!   handler finish its in-flight request, then drains each resident
//!   model's queue — every accepted request is answered before the
//!   process lets go.

use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, OutputReport, Request, Response, StatsReport,
};
use crate::registry::{ModelRegistry, RegistryError};
use crate::server::{ServerStats, SubmitError};

use eie_core::fixed::Q8p8;

/// How often a blocked handler wakes to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// A fired-once shutdown latch: pollable without blocking (handlers)
/// and waitable without spinning ([`NetServer::wait_for_shutdown`]).
#[derive(Debug, Default)]
struct ShutdownSignal {
    fired: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownSignal {
    fn fire(&self) {
        self.fired.store(true, Ordering::SeqCst);
        let mut fired = self.lock.lock().expect("shutdown signal poisoned");
        *fired = true;
        self.cv.notify_all();
    }

    fn is_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn wait(&self) {
        let mut fired = self.lock.lock().expect("shutdown signal poisoned");
        while !*fired {
            fired = self.cv.wait(fired).expect("shutdown signal poisoned");
        }
    }
}

/// Shared context every accept/handler thread carries.
#[derive(Debug)]
struct Ctx {
    registry: Arc<ModelRegistry>,
    shutdown: Arc<ShutdownSignal>,
    addr: SocketAddr,
}

impl Ctx {
    /// Fires the shutdown signal and pokes the (possibly blocked)
    /// accept loop awake with a throwaway self-connection.
    fn begin_shutdown(&self) {
        self.shutdown.fire();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A `Read` adapter that turns the socket's periodic read timeout into
/// "keep waiting, unless shutdown fired". [`read_frame`] can then block
/// across quiet stretches without ever losing partially-read frame
/// state, and still notices a drain promptly.
struct ShutdownAwareStream<'a> {
    stream: &'a TcpStream,
    shutdown: &'a ShutdownSignal,
}

impl Read for ShutdownAwareStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.is_fired() {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// A running network serving node: TCP listener + accept loop +
/// per-connection handlers, all routing through one [`ModelRegistry`].
///
/// # Example
///
/// ```
/// use eie_core::nn::zoo::random_sparse;
/// use eie_core::{CompiledModel, EieConfig};
/// use eie_serve::protocol::Response;
/// use eie_serve::{Client, ModelRegistry, NetServer, ServerConfig};
///
/// let w = random_sparse(16, 12, 0.25, 7);
/// let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w);
/// let registry = ModelRegistry::new(ServerConfig::default().with_max_wait_us(500));
/// registry.register_model("toy", &model).unwrap();
///
/// let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
/// let mut client = Client::connect(server.local_addr()).unwrap();
/// match client.infer("toy", &vec![0.5; 12]).unwrap() {
///     Response::Output(out) => assert_eq!(out.outputs.len(), 16),
///     other => panic!("expected an output, got {other:?}"),
/// }
/// client.shutdown_server().unwrap();
/// let stats = server.stop();
/// assert_eq!(stats.requests, 1);
/// ```
#[derive(Debug)]
pub struct NetServer {
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections for `registry`'s models.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs, registry: ModelRegistry) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let ctx = Arc::new(Ctx {
            registry: Arc::new(registry),
            shutdown: Arc::new(ShutdownSignal::default()),
            addr: listener.local_addr()?,
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = thread::Builder::new()
            .name("eie-net-accept".into())
            .spawn(move || accept_loop(listener, &accept_ctx))
            .expect("spawn accept thread");
        Ok(Self {
            ctx,
            accept: Some(accept),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The registry this node serves from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.ctx.registry
    }

    /// True once shutdown has been requested (by a SHUTDOWN frame or
    /// [`request_shutdown`](Self::request_shutdown)).
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutdown.is_fired()
    }

    /// Initiates shutdown without blocking: stops accepting, lets
    /// handlers drain. Idempotent. Follow with [`stop`](Self::stop) to
    /// join and collect final statistics.
    pub fn request_shutdown(&self) {
        self.ctx.begin_shutdown();
    }

    /// Blocks until shutdown is requested — the serve-forever body of
    /// `eie serve --listen`.
    pub fn wait_for_shutdown(&self) {
        self.ctx.shutdown.wait();
    }

    /// Shuts down (idempotent), joins the accept loop and every
    /// connection handler, drains every resident model, and returns the
    /// merged lifetime [`ServerStats`].
    pub fn stop(mut self) -> ServerStats {
        self.ctx.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        self.ctx.registry.drain()
    }
}

impl Drop for NetServer {
    /// Dropping without [`stop`](Self::stop) still shuts down cleanly;
    /// only the final statistics are lost.
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.ctx.begin_shutdown();
            accept.join().expect("accept thread panicked");
        }
    }
}

fn accept_loop(listener: TcpListener, ctx: &Arc<Ctx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.is_fired() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx = Arc::clone(ctx);
        let handler = thread::Builder::new()
            .name("eie-net-conn".into())
            .spawn(move || handle_connection(&stream, &ctx))
            .expect("spawn connection handler");
        handlers.push(handler);
        // Reap finished handlers so a long-lived node doesn't accumulate
        // one parked JoinHandle per connection ever served.
        handlers.retain(|h| !h.is_finished());
    }
    for handler in handlers {
        handler.join().expect("connection handler panicked");
    }
}

/// One connection's request→response loop. Returning closes the stream.
fn handle_connection(stream: &TcpStream, ctx: &Ctx) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut reader = ShutdownAwareStream {
        stream,
        shutdown: &ctx.shutdown,
    };
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            // Peer closed between frames, or shutdown fired while idle.
            Ok(None) | Err(FrameError::Io(_)) => return,
            // Framing is broken: answer typed, then close (the stream
            // position cannot be trusted past a malformed frame).
            Err(e) => {
                let _ = respond(
                    stream,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let request = match Request::from_body(&body) {
            Ok(request) => request,
            Err(e) => {
                let _ = respond(
                    stream,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        match request {
            Request::Infer { model, input } => {
                let response = serve_infer(ctx, &model, &input);
                if respond(stream, &response).is_err() {
                    return;
                }
            }
            Request::Stats => {
                let response = Response::Stats(stats_report(&ctx.registry));
                if respond(stream, &response).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = respond(stream, &Response::Ok);
                ctx.begin_shutdown();
                return;
            }
        }
    }
}

fn respond(mut stream: &TcpStream, response: &Response) -> Result<(), FrameError> {
    write_frame(&mut stream, &response.to_frame())
}

/// Routes one INFER through the registry: acquire (load-on-miss) →
/// shed-load submit → wait → raw-bits output. Every failure mode maps
/// to a typed response; nothing here closes the connection.
fn serve_infer(ctx: &Ctx, model: &str, input: &[f32]) -> Response {
    if ctx.shutdown.is_fired() {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        };
    }
    let server = match ctx.registry.acquire(model) {
        Ok(server) => server,
        Err(e @ RegistryError::UnknownModel { .. }) => {
            return Response::Error {
                code: ErrorCode::UnknownModel,
                message: e.to_string(),
            }
        }
        Err(e) => {
            return Response::Error {
                code: ErrorCode::LoadFailed,
                message: e.to_string(),
            }
        }
    };
    match server.try_submit(input) {
        Ok(pending) => {
            let result = pending.wait();
            Response::Output(OutputReport {
                outputs: result.outputs.iter().map(|q| q.raw()).collect(),
                queue_us: result.queue_us,
                latency_us: result.latency_us,
                coalesced: result.coalesced as u32,
                worker: result.worker as u32,
            })
        }
        Err(SubmitError::QueueFull { depth }) => Response::Overloaded {
            depth: depth as u32,
        },
        Err(e @ SubmitError::ShuttingDown) => Response::Error {
            code: ErrorCode::ShuttingDown,
            message: e.to_string(),
        },
        Err(e @ SubmitError::BadInputLength { .. }) => Response::Error {
            code: ErrorCode::BadInput,
            message: e.to_string(),
        },
    }
}

/// Builds the STATS payload: live serving percentiles merged across
/// resident models + registry occupancy, one lock-free-for-routing
/// snapshot.
fn stats_report(registry: &ModelRegistry) -> StatsReport {
    let (serving, queued) = registry.serving_snapshot();
    let occupancy = registry.stats();
    StatsReport {
        requests: serving.requests,
        batches: serving.batches,
        max_coalesced: serving.max_coalesced as u32,
        queue_depth: queued as u32,
        models_registered: occupancy.registered as u32,
        models_resident: occupancy.resident as u32,
        resident_bytes: occupancy.resident_bytes as u64,
        budget_bytes: if occupancy.budget_bytes == usize::MAX {
            u64::MAX
        } else {
            occupancy.budget_bytes as u64
        },
        loads: occupancy.loads,
        evictions: occupancy.evictions,
        p50_us: serving.p50(),
        p95_us: serving.p95(),
        p99_us: serving.p99(),
        mean_queue_us: serving.mean_queue_us(),
        frames_per_second: serving.frames_per_second(),
    }
}

/// Why a [`Client`] call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The server closed the connection before answering.
    Disconnected,
    /// The server answered with a response kind the typed helper did
    /// not expect (e.g. an error frame where [`Client::stats`] wanted
    /// statistics).
    Unexpected {
        /// What the helper was waiting for.
        expected: &'static str,
        /// The response actually received.
        got: Box<Response>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client transport failed: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-request"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, server answered {got:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a [`NetServer`]: one request in flight at a
/// time, matching the server's per-connection loop. Open more clients
/// for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving node.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Serving frames are small and latency-bound.
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Frame`] on transport/framing failure,
    /// [`ClientError::Disconnected`] if the server closed instead of
    /// answering.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_frame())?;
        let body = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        Ok(Response::from_body(&body)?)
    }

    /// Runs one input through the named model. The returned
    /// [`Response`] is the full typed answer — output, overloaded, or
    /// error — so callers own the retry policy.
    ///
    /// # Errors
    ///
    /// Transport-level failures only (see [`Client::request`]);
    /// server-side refusals arrive as `Ok(Response::...)`.
    pub fn infer(&mut self, model: &str, input: &[f32]) -> Result<Response, ClientError> {
        self.request(&Request::Infer {
            model: model.into(),
            input: input.to_vec(),
        })
    }

    /// Convenience: [`infer`](Self::infer), converting the raw Q8.8
    /// output words back to typed activations. Non-output answers
    /// surface as [`ClientError::Unexpected`].
    ///
    /// # Errors
    ///
    /// Transport failures, plus [`ClientError::Unexpected`] for
    /// overload or error responses.
    pub fn infer_outputs(&mut self, model: &str, input: &[f32]) -> Result<Vec<Q8p8>, ClientError> {
        match self.infer(model, input)? {
            Response::Output(out) => {
                Ok(out.outputs.iter().map(|&raw| Q8p8::from_raw(raw)).collect())
            }
            other => Err(ClientError::Unexpected {
                expected: "an inference output",
                got: Box::new(other),
            }),
        }
    }

    /// Fetches the server's live statistics.
    ///
    /// # Errors
    ///
    /// Transport failures, plus [`ClientError::Unexpected`] if the
    /// server answered anything but a statistics frame.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(ClientError::Unexpected {
                expected: "a statistics report",
                got: Box::new(other),
            }),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport failures, plus [`ClientError::Unexpected`] if the
    /// server answered anything but an acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::Unexpected {
                expected: "a shutdown acknowledgement",
                got: Box::new(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use eie_core::nn::zoo::random_sparse;
    use eie_core::{CompiledModel, EieConfig};

    fn toy_registry() -> ModelRegistry {
        let w = random_sparse(16, 12, 0.25, 3);
        let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w);
        let registry = ModelRegistry::new(ServerConfig::default().with_max_wait_us(500));
        registry.register_model("toy", &model).unwrap();
        registry
    }

    #[test]
    fn unknown_model_and_bad_input_keep_the_connection_open() {
        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        match client.infer("nope", &[0.0; 12]).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownModel),
            other => panic!("expected unknown-model error, got {other:?}"),
        }
        match client.infer("toy", &[0.0; 5]).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadInput),
            other => panic!("expected bad-input error, got {other:?}"),
        }
        // Same connection still serves real work afterwards.
        let outputs = client.infer_outputs("toy", &[0.25; 12]).unwrap();
        assert_eq!(outputs.len(), 16);

        let stats = server.stop();
        assert_eq!(stats.requests, 1, "only the valid request was served");
    }

    #[test]
    fn malformed_frame_gets_typed_error_then_close() {
        use std::io::Write;

        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        // A frame whose body claims the right magic but a bogus version.
        let mut body = Vec::from(crate::protocol::FRAME_MAGIC);
        body.push(99);
        body.push(0x01);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        raw.write_all(&wire).unwrap();
        raw.flush().unwrap();

        let reply = read_frame(&mut raw).unwrap().expect("typed error frame");
        match Response::from_body(&reply).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Malformed);
                assert!(message.contains("version"), "message was {message:?}");
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
        // ...and the server closes the stream.
        assert!(matches!(read_frame(&mut raw), Ok(None)));
        server.stop();
    }

    #[test]
    fn stats_reflect_registry_occupancy() {
        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let before = client.stats().unwrap();
        assert_eq!(before.models_registered, 1);
        assert_eq!(before.models_resident, 0, "nothing loads until routed to");
        assert_eq!(before.budget_bytes, u64::MAX);

        client.infer_outputs("toy", &[0.5; 12]).unwrap();
        let after = client.stats().unwrap();
        assert_eq!(after.models_resident, 1);
        assert_eq!(after.requests, 1);
        assert_eq!(after.loads, 1);
        assert!(after.resident_bytes > 0);
        server.stop();
    }

    #[test]
    fn shutdown_frame_stops_the_node() {
        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.infer_outputs("toy", &[1.0; 12]).unwrap();
        client.shutdown_server().unwrap();

        server.wait_for_shutdown();
        assert!(server.is_shutting_down());
        let stats = server.stop();
        assert_eq!(stats.requests, 1);

        // The listener is gone: a fresh connection gets refused or
        // dropped without an answer.
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut late) => assert!(late.stats().is_err()),
        }
    }
}
