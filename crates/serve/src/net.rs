//! The TCP front-end: a [`ModelRegistry`] behind a listener speaking
//! the [`protocol`](crate::protocol) frames, plus the matching blocking
//! [`Client`].
//!
//! Built on `std::net` only (the workspace is offline — no async
//! runtime, no HTTP stack). One thread accepts; each connection gets a
//! handler thread running a strict request→response loop, so a
//! connection has at most one request in flight and responses can never
//! interleave. Concurrency comes from opening more connections — they
//! all route into the same per-model bounded queues, where micro-batch
//! coalescing happens exactly as for in-process callers.
//!
//! Three behaviors are deliberate:
//!
//! * **Overload is an answer, not a stall.** Inference uses the
//!   shed-load [`try_submit`](crate::ModelServer::try_submit) path: a
//!   full queue answers [`Response::Overloaded`] immediately and the
//!   client owns the retry policy. A networked caller can always
//!   distinguish "the box is busy" from "the box is gone".
//! * **Malformed bytes end the connection, typed.** The server answers
//!   [`ErrorCode::Malformed`] and closes — after a framing error the
//!   stream position cannot be trusted, so resynchronizing would be a
//!   guess. Other errors (unknown model, wrong input length) are
//!   per-request and leave the connection open.
//! * **Shutdown drains.** A SHUTDOWN frame (or
//!   [`NetServer::request_shutdown`]) stops the accept loop, lets every
//!   handler finish its in-flight request, then drains each resident
//!   model's queue — every accepted request is answered before the
//!   process lets go.

use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, OutputReport, Request, Response, StatsReport,
};
use crate::registry::{ModelRegistry, RegistryError};
use crate::server::{RequestError, ServerError, ServerStats, SubmitError, SubmitOptions};

use eie_core::fixed::Q8p8;

/// How often a blocked handler wakes to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Connection-level policy of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPolicy {
    /// How long one response write may sit blocked on a full socket
    /// buffer before the client is judged slow and evicted (connection
    /// closed, [`ServerStats::slow_client_evictions`] counted). A
    /// handler thread is a finite resource; a peer that stops reading
    /// must not pin one forever.
    pub write_grace: Duration,
}

impl Default for NetPolicy {
    fn default() -> Self {
        Self {
            write_grace: Duration::from_secs(2),
        }
    }
}

impl NetPolicy {
    /// Sets the write-path grace period.
    pub fn with_write_grace(mut self, write_grace: Duration) -> Self {
        assert!(!write_grace.is_zero(), "write_grace must be non-zero");
        self.write_grace = write_grace;
        self
    }
}

/// A fired-once shutdown latch: pollable without blocking (handlers)
/// and waitable without spinning ([`NetServer::wait_for_shutdown`]).
#[derive(Debug, Default)]
struct ShutdownSignal {
    fired: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownSignal {
    fn fire(&self) {
        self.fired.store(true, Ordering::SeqCst);
        let mut fired = self.lock.lock().expect("shutdown signal poisoned");
        *fired = true;
        self.cv.notify_all();
    }

    fn is_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn wait(&self) {
        let mut fired = self.lock.lock().expect("shutdown signal poisoned");
        while !*fired {
            fired = self.cv.wait(fired).expect("shutdown signal poisoned");
        }
    }
}

/// Shared context every accept/handler thread carries.
#[derive(Debug)]
struct Ctx {
    registry: Arc<ModelRegistry>,
    shutdown: Arc<ShutdownSignal>,
    addr: SocketAddr,
    policy: NetPolicy,
    /// Connections closed because the peer stopped reading.
    slow_evicted: AtomicU64,
    /// Handler threads that panicked (their join errors are caught in
    /// the accept loop and surfaced as
    /// [`ServerError::HandlerPanicked`]).
    handler_panics: AtomicUsize,
}

impl Ctx {
    /// Fires the shutdown signal and pokes the (possibly blocked)
    /// accept loop awake with a throwaway self-connection.
    fn begin_shutdown(&self) {
        self.shutdown.fire();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A `Read` adapter that turns the socket's periodic read timeout into
/// "keep waiting, unless shutdown fired". [`read_frame`] can then block
/// across quiet stretches without ever losing partially-read frame
/// state, and still notices a drain promptly.
struct ShutdownAwareStream<'a> {
    stream: &'a TcpStream,
    shutdown: &'a ShutdownSignal,
}

impl Read for ShutdownAwareStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.is_fired() {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// A running network serving node: TCP listener + accept loop +
/// per-connection handlers, all routing through one [`ModelRegistry`].
///
/// # Example
///
/// ```
/// use eie_core::nn::zoo::random_sparse;
/// use eie_core::{CompiledModel, EieConfig};
/// use eie_serve::protocol::Response;
/// use eie_serve::{Client, ModelRegistry, NetServer, ServerConfig};
///
/// let w = random_sparse(16, 12, 0.25, 7);
/// let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w);
/// let registry = ModelRegistry::new(ServerConfig::default().with_max_wait_us(500));
/// registry.register_model("toy", &model).unwrap();
///
/// let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
/// let mut client = Client::connect(server.local_addr()).unwrap();
/// match client.infer("toy", &vec![0.5; 12]).unwrap() {
///     Response::Output(out) => assert_eq!(out.outputs.len(), 16),
///     other => panic!("expected an output, got {other:?}"),
/// }
/// client.shutdown_server().unwrap();
/// let stats = server.stop();
/// assert_eq!(stats.requests, 1);
/// ```
#[derive(Debug)]
pub struct NetServer {
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections for `registry`'s models.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs, registry: ModelRegistry) -> io::Result<Self> {
        Self::bind_with_policy(addr, registry, NetPolicy::default())
    }

    /// [`NetServer::bind`] with an explicit connection-level
    /// [`NetPolicy`].
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn bind_with_policy(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        policy: NetPolicy,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let ctx = Arc::new(Ctx {
            registry: Arc::new(registry),
            shutdown: Arc::new(ShutdownSignal::default()),
            addr: listener.local_addr()?,
            policy,
            slow_evicted: AtomicU64::new(0),
            handler_panics: AtomicUsize::new(0),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = thread::Builder::new()
            .name("eie-net-accept".into())
            .spawn(move || accept_loop(listener, &accept_ctx))
            .expect("spawn accept thread");
        Ok(Self {
            ctx,
            accept: Some(accept),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The registry this node serves from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.ctx.registry
    }

    /// True once shutdown has been requested (by a SHUTDOWN frame or
    /// [`request_shutdown`](Self::request_shutdown)).
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutdown.is_fired()
    }

    /// Initiates shutdown without blocking: stops accepting, lets
    /// handlers drain. Idempotent. Follow with [`stop`](Self::stop) to
    /// join and collect final statistics.
    pub fn request_shutdown(&self) {
        self.ctx.begin_shutdown();
    }

    /// Blocks until shutdown is requested — the serve-forever body of
    /// `eie serve --listen`.
    pub fn wait_for_shutdown(&self) {
        self.ctx.shutdown.wait();
    }

    /// Shuts down (idempotent), joins the accept loop and every
    /// connection handler, drains every resident model, and returns the
    /// merged lifetime [`ServerStats`]. A handler (or even the accept
    /// loop) having panicked does not panic here: the join error is
    /// caught, the rest of the node drains cleanly, and the failure is
    /// surfaced typed as [`ServerError::HandlerPanicked`] in
    /// [`ServerStats::errors`].
    pub fn stop(mut self) -> ServerStats {
        self.ctx.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            if accept.join().is_err() {
                self.ctx.handler_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut stats = self.ctx.registry.drain();
        stats.slow_client_evictions = self.ctx.slow_evicted.load(Ordering::Relaxed);
        let panicked = self.ctx.handler_panics.load(Ordering::Relaxed);
        if panicked > 0 {
            stats.errors.push(ServerError::HandlerPanicked {
                connections: panicked,
            });
        }
        stats
    }
}

impl Drop for NetServer {
    /// Dropping without [`stop`](Self::stop) still shuts down cleanly;
    /// only the final statistics are lost. Join failures are swallowed
    /// (there is nowhere left to report them).
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.ctx.begin_shutdown();
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: TcpListener, ctx: &Arc<Ctx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let reap = |handlers: &mut Vec<JoinHandle<()>>, ctx: &Arc<Ctx>, all: bool| {
        // Reap finished handlers so a long-lived node doesn't
        // accumulate one parked JoinHandle per connection ever served —
        // counting the ones that panicked instead of propagating (one
        // broken connection must not take the node down).
        let mut kept = Vec::new();
        for handler in handlers.drain(..) {
            if all || handler.is_finished() {
                if handler.join().is_err() {
                    ctx.handler_panics.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                kept.push(handler);
            }
        }
        *handlers = kept;
    };
    for stream in listener.incoming() {
        if ctx.shutdown.is_fired() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx_conn = Arc::clone(ctx);
        let handler = thread::Builder::new()
            .name("eie-net-conn".into())
            .spawn(move || handle_connection(&stream, &ctx_conn))
            .expect("spawn connection handler");
        handlers.push(handler);
        reap(&mut handlers, ctx, false);
    }
    reap(&mut handlers, ctx, true);
}

/// One connection's request→response loop. Returning closes the stream.
fn handle_connection(stream: &TcpStream, ctx: &Ctx) {
    if let Some(plan) = ctx.registry.fault_plan() {
        if plan.next_connection_panics() {
            panic!("injected connection-handler panic");
        }
    }
    // The write timeout is the slow-client grace: a peer that stops
    // reading long enough to block a response write this long gets
    // evicted instead of pinning this handler thread.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream
            .set_write_timeout(Some(ctx.policy.write_grace))
            .is_err()
    {
        return;
    }
    let mut reader = ShutdownAwareStream {
        stream,
        shutdown: &ctx.shutdown,
    };
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            // Peer closed between frames, or shutdown fired while idle.
            Ok(None) | Err(FrameError::Io(_)) => return,
            // Framing is broken: answer typed, then close (the stream
            // position cannot be trusted past a malformed frame).
            Err(e) => {
                let _ = respond(
                    stream,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let request = match Request::from_body(&body) {
            Ok(request) => request,
            Err(e) => {
                let _ = respond(
                    stream,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        match request {
            Request::Infer {
                model,
                input,
                deadline_us,
                attempt,
            } => {
                // Anchor the relative wire deadline here, at frame
                // receipt, so a cold model load eats into the budget
                // exactly as queueing does.
                let opts = SubmitOptions {
                    deadline: (deadline_us > 0)
                        .then(|| Instant::now() + Duration::from_micros(deadline_us)),
                    attempt: u32::from(attempt),
                };
                let response = serve_infer(ctx, &model, &input, opts);
                if !answer(stream, ctx, &response) {
                    return;
                }
            }
            Request::Stats => {
                let response = Response::Stats(stats_report(ctx));
                if !answer(stream, ctx, &response) {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = respond(stream, &Response::Ok);
                ctx.begin_shutdown();
                return;
            }
        }
    }
}

fn respond(mut stream: &TcpStream, response: &Response) -> Result<(), FrameError> {
    write_frame(&mut stream, &response.to_frame())
}

/// [`respond`], classifying failures: a write that timed out means the
/// peer stopped reading for the whole grace period — the connection is
/// evicted and counted. Returns whether the connection stays usable.
fn answer(stream: &TcpStream, ctx: &Ctx, response: &Response) -> bool {
    match respond(stream, response) {
        Ok(()) => true,
        Err(FrameError::Io(e))
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            ctx.slow_evicted.fetch_add(1, Ordering::Relaxed);
            false
        }
        Err(_) => false,
    }
}

/// Routes one INFER through the registry: acquire (load-on-miss) →
/// shed-load submit → wait → raw-bits output. Every failure mode maps
/// to a typed response; nothing here closes the connection.
fn serve_infer(ctx: &Ctx, model: &str, input: &[f32], opts: SubmitOptions) -> Response {
    if ctx.shutdown.is_fired() {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        };
    }
    let server = match ctx.registry.acquire(model) {
        Ok(server) => server,
        Err(e @ RegistryError::UnknownModel { .. }) => {
            return Response::Error {
                code: ErrorCode::UnknownModel,
                message: e.to_string(),
            }
        }
        Err(e) => {
            return Response::Error {
                code: ErrorCode::LoadFailed,
                message: e.to_string(),
            }
        }
    };
    match server.try_submit_with(input, opts) {
        Ok(pending) => match pending.wait() {
            Ok(result) => Response::Output(OutputReport {
                outputs: result.outputs.iter().map(|q| q.raw()).collect(),
                queue_us: result.queue_us,
                latency_us: result.latency_us,
                coalesced: result.coalesced as u32,
                worker: result.worker as u32,
            }),
            Err(e @ RequestError::DeadlineExceeded) => Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: e.to_string(),
            },
            Err(e @ RequestError::WorkerFailed { .. }) => Response::Error {
                code: ErrorCode::WorkerFailed,
                message: e.to_string(),
            },
        },
        Err(SubmitError::QueueFull { depth }) => Response::Overloaded {
            depth: depth as u32,
        },
        Err(e @ SubmitError::ShuttingDown) => Response::Error {
            code: ErrorCode::ShuttingDown,
            message: e.to_string(),
        },
        Err(e @ SubmitError::BadInputLength { .. }) => Response::Error {
            code: ErrorCode::BadInput,
            message: e.to_string(),
        },
        Err(e @ SubmitError::DeadlineExceeded) => Response::Error {
            code: ErrorCode::DeadlineExceeded,
            message: e.to_string(),
        },
        Err(e @ SubmitError::Degraded { .. }) => Response::Error {
            code: ErrorCode::Degraded,
            message: e.to_string(),
        },
    }
}

/// Builds the STATS payload: live serving percentiles merged across
/// resident models + registry occupancy + the fault-tolerance tail,
/// one lock-free-for-routing snapshot.
fn stats_report(ctx: &Ctx) -> StatsReport {
    let registry = &ctx.registry;
    let (serving, queued) = registry.serving_snapshot();
    let occupancy = registry.stats();
    StatsReport {
        requests: serving.requests,
        batches: serving.batches,
        max_coalesced: serving.max_coalesced as u32,
        queue_depth: queued as u32,
        models_registered: occupancy.registered as u32,
        models_resident: occupancy.resident as u32,
        resident_bytes: occupancy.resident_bytes as u64,
        budget_bytes: if occupancy.budget_bytes == usize::MAX {
            u64::MAX
        } else {
            occupancy.budget_bytes as u64
        },
        loads: occupancy.loads,
        evictions: occupancy.evictions,
        p50_us: serving.p50(),
        p95_us: serving.p95(),
        p99_us: serving.p99(),
        mean_queue_us: serving.mean_queue_us(),
        frames_per_second: serving.frames_per_second(),
        accepted: serving.accepted,
        shed: serving.shed,
        expired: serving.expired,
        failed: serving.failed,
        retries_upstream: serving.retries_upstream,
        worker_restarts: serving.worker_restarts,
        degraded: serving.degraded as u32,
        slow_client_evictions: ctx.slow_evicted.load(Ordering::Relaxed),
    }
}

/// Why a [`Client`] call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The server closed the connection before answering.
    Disconnected,
    /// The server answered with a response kind the typed helper did
    /// not expect (e.g. an error frame where [`Client::stats`] wanted
    /// statistics).
    Unexpected {
        /// What the helper was waiting for.
        expected: &'static str,
        /// The response actually received.
        got: Box<Response>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client transport failed: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-request"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, server answered {got:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Connect/read/write timeouts of a [`Client`]. `None` means block
/// indefinitely (the pre-fault-tolerance behavior, and the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTimeouts {
    /// Bound on establishing the TCP connection.
    pub connect: Option<Duration>,
    /// Bound on each blocking read (a response that takes longer
    /// surfaces as a timed-out [`ClientError::Frame`]).
    pub read: Option<Duration>,
    /// Bound on each blocking write.
    pub write: Option<Duration>,
}

impl ClientTimeouts {
    /// One bound for connect, read and write alike.
    pub fn all(timeout: Duration) -> Self {
        Self {
            connect: Some(timeout),
            read: Some(timeout),
            write: Some(timeout),
        }
    }
}

/// A typed retry policy: how many attempts a [`Client::infer_retrying`]
/// call may spend, and how it backs off between them. Backoff is
/// exponential with **bounded deterministic jitter** — the delay for
/// attempt `n` is `base · 2ⁿ` scaled by a factor in `[0.5, 1.0]` drawn
/// from a seeded xorshift stream, capped at `max_backoff` — so two runs
/// with the same seed retry on an identical schedule (the chaos suite
/// depends on that), while a fleet of clients with different seeds
/// still decorrelates.
///
/// Only **idempotent-safe** failures are retried: connect refused,
/// timeouts, disconnects, OVERLOADED, and WORKER_FAILED (inference is
/// pure, so re-running it is safe). Typed model errors — unknown model,
/// bad input, malformed, deadline exceeded, degraded, shutting down —
/// never retry: the retry would deterministically fail again or mask a
/// caller bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff.
    pub max_backoff: Duration,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// No retries: exactly one attempt.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Sets the attempt budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "a call is at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the base backoff.
    pub fn with_base_backoff(mut self, base_backoff: Duration) -> Self {
        self.base_backoff = base_backoff;
        self
    }

    /// Sets the backoff cap.
    pub fn with_max_backoff(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// Sets the jitter seed.
    pub fn with_jitter_seed(mut self, jitter_seed: u64) -> Self {
        self.jitter_seed = jitter_seed;
        self
    }

    /// The delay before retry number `retry` (0-based), advancing the
    /// caller-held jitter state.
    fn backoff(&self, retry: u32, jitter: &mut u64) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << retry.min(16));
        // xorshift64* step; map to a factor in [0.5, 1.0].
        let mut x = *jitter;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *jitter = x;
        let unit = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let scaled = exp.mul_f64(0.5 + 0.5 * unit);
        scaled.min(self.max_backoff)
    }
}

/// What one [`Client::infer_retrying`] call spent and absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Retries made (`attempts - 1`).
    pub retries: u32,
    /// OVERLOADED answers absorbed by retrying.
    pub overloaded: u32,
    /// WORKER_FAILED answers absorbed by retrying.
    pub worker_failed: u32,
    /// Transport failures (refused / timeout / disconnect) absorbed by
    /// reconnecting and retrying.
    pub transport_retries: u32,
    /// Total backoff slept.
    pub backoff: Duration,
    /// Whether the final answer was a success that needed ≥ 1 retry.
    pub recovered: bool,
}

/// A blocking connection to a [`NetServer`]: one request in flight at a
/// time, matching the server's per-connection loop. Open more clients
/// for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The resolved peer, kept for reconnect-on-retry.
    addr: SocketAddr,
    timeouts: ClientTimeouts,
    retry: RetryPolicy,
    /// Jitter state, advanced per backoff.
    jitter: u64,
}

impl Client {
    /// Connects to a serving node with no timeouts and no retries.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientTimeouts::default())
    }

    /// Connects with explicit [`ClientTimeouts`]. Compose with
    /// [`Client::with_retry_policy`] for the full resilience stack.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from resolving or connecting (every resolved
    /// candidate address is tried before giving up).
    pub fn connect_with(addr: impl ToSocketAddrs, timeouts: ClientTimeouts) -> io::Result<Self> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match Self::open(candidate, timeouts) {
                Ok(stream) => {
                    let retry = RetryPolicy::none();
                    return Ok(Self {
                        stream,
                        addr: candidate,
                        timeouts,
                        jitter: retry.jitter_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                        retry,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn open(addr: SocketAddr, timeouts: ClientTimeouts) -> io::Result<TcpStream> {
        let stream = match timeouts.connect {
            Some(bound) => TcpStream::connect_timeout(&addr, bound)?,
            None => TcpStream::connect(addr)?,
        };
        // Serving frames are small and latency-bound.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        Ok(stream)
    }

    /// Installs the [`RetryPolicy`] used by
    /// [`Client::infer_retrying`].
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.jitter = retry.jitter_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        self.retry = retry;
        self
    }

    /// Drops the current stream and dials the same peer again.
    fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Self::open(self.addr, self.timeouts)?;
        Ok(())
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Frame`] on transport/framing failure,
    /// [`ClientError::Disconnected`] if the server closed instead of
    /// answering.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_frame())?;
        let body = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        Ok(Response::from_body(&body)?)
    }

    /// Runs one input through the named model. The returned
    /// [`Response`] is the full typed answer — output, overloaded, or
    /// error — so callers own the retry policy.
    ///
    /// # Errors
    ///
    /// Transport-level failures only (see [`Client::request`]);
    /// server-side refusals arrive as `Ok(Response::...)`.
    pub fn infer(&mut self, model: &str, input: &[f32]) -> Result<Response, ClientError> {
        self.request(&Request::infer(model, input.to_vec()))
    }

    /// [`Client::infer`] with a deadline (remaining budget; `None` = no
    /// deadline) and an attempt number for the server's upstream-retry
    /// accounting.
    ///
    /// # Errors
    ///
    /// Transport-level failures only.
    pub fn infer_with(
        &mut self,
        model: &str,
        input: &[f32],
        deadline: Option<Duration>,
        attempt: u32,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Infer {
            model: model.into(),
            input: input.to_vec(),
            deadline_us: deadline.map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64),
            attempt: attempt.min(u8::MAX as u32) as u8,
        })
    }

    /// Whether a failed call may be retried on a fresh connection:
    /// refused/reset/timeout transports and mid-frame disconnects
    /// qualify (the server never half-executes — inference is pure and
    /// a request is only served once fully read).
    fn transport_retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Disconnected => true,
            ClientError::Frame(FrameError::Io(e)) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
            ),
            // The stream died mid-frame; the response is unrecoverable
            // but the request is safe to resend.
            ClientError::Frame(FrameError::Truncated { .. }) => true,
            _ => false,
        }
    }

    /// [`Client::infer_with`] under the installed [`RetryPolicy`]:
    /// retries idempotent-safe failures (transport errors — with a
    /// reconnect — OVERLOADED, WORKER_FAILED) with deterministic
    /// exponential backoff, passes the attempt number upstream, and
    /// reports what the call absorbed in [`CallStats`]. Typed model
    /// errors and DEADLINE_EXCEEDED return immediately.
    ///
    /// # Errors
    ///
    /// The last transport failure, once the attempt budget is spent.
    pub fn infer_retrying(
        &mut self,
        model: &str,
        input: &[f32],
        deadline: Option<Duration>,
    ) -> Result<(Response, CallStats), ClientError> {
        let policy = self.retry;
        let mut stats = CallStats::default();
        loop {
            let attempt = stats.attempts;
            stats.attempts += 1;
            let outcome = self.infer_with(model, input, deadline, attempt);
            let retryable = match &outcome {
                Ok(Response::Overloaded { .. }) => {
                    stats.overloaded += 1;
                    true
                }
                Ok(Response::Error { code, .. }) if code.is_retryable() => {
                    stats.worker_failed += 1;
                    true
                }
                Ok(_) => false,
                Err(e) if Self::transport_retryable(e) => {
                    stats.transport_retries += 1;
                    true
                }
                Err(_) => false,
            };
            if !retryable || stats.attempts >= policy.max_attempts {
                stats.recovered = stats.retries > 0 && matches!(outcome, Ok(Response::Output(_)));
                return outcome.map(|response| (response, stats));
            }
            stats.retries += 1;
            let delay = policy.backoff(stats.retries - 1, &mut self.jitter);
            stats.backoff += delay;
            thread::sleep(delay);
            if outcome.is_err() {
                // The old stream is unusable (or the write may have
                // half-landed); resend on a fresh connection. A failed
                // reconnect is itself retryable — loop again until the
                // budget runs out.
                if let Err(e) = self.reconnect() {
                    let error = ClientError::Frame(FrameError::Io(e));
                    if stats.attempts >= policy.max_attempts || !Self::transport_retryable(&error) {
                        return Err(error);
                    }
                }
            }
        }
    }

    /// Convenience: [`infer`](Self::infer), converting the raw Q8.8
    /// output words back to typed activations. Non-output answers
    /// surface as [`ClientError::Unexpected`].
    ///
    /// # Errors
    ///
    /// Transport failures, plus [`ClientError::Unexpected`] for
    /// overload or error responses.
    pub fn infer_outputs(&mut self, model: &str, input: &[f32]) -> Result<Vec<Q8p8>, ClientError> {
        match self.infer(model, input)? {
            Response::Output(out) => {
                Ok(out.outputs.iter().map(|&raw| Q8p8::from_raw(raw)).collect())
            }
            other => Err(ClientError::Unexpected {
                expected: "an inference output",
                got: Box::new(other),
            }),
        }
    }

    /// Fetches the server's live statistics.
    ///
    /// # Errors
    ///
    /// Transport failures, plus [`ClientError::Unexpected`] if the
    /// server answered anything but a statistics frame.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(ClientError::Unexpected {
                expected: "a statistics report",
                got: Box::new(other),
            }),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport failures, plus [`ClientError::Unexpected`] if the
    /// server answered anything but an acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::Unexpected {
                expected: "a shutdown acknowledgement",
                got: Box::new(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use eie_core::nn::zoo::random_sparse;
    use eie_core::{CompiledModel, EieConfig};

    fn toy_registry() -> ModelRegistry {
        let w = random_sparse(16, 12, 0.25, 3);
        let model = CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w);
        let registry = ModelRegistry::new(ServerConfig::default().with_max_wait_us(500));
        registry.register_model("toy", &model).unwrap();
        registry
    }

    #[test]
    fn unknown_model_and_bad_input_keep_the_connection_open() {
        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        match client.infer("nope", &[0.0; 12]).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownModel),
            other => panic!("expected unknown-model error, got {other:?}"),
        }
        match client.infer("toy", &[0.0; 5]).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadInput),
            other => panic!("expected bad-input error, got {other:?}"),
        }
        // Same connection still serves real work afterwards.
        let outputs = client.infer_outputs("toy", &[0.25; 12]).unwrap();
        assert_eq!(outputs.len(), 16);

        let stats = server.stop();
        assert_eq!(stats.requests, 1, "only the valid request was served");
    }

    #[test]
    fn malformed_frame_gets_typed_error_then_close() {
        use std::io::Write;

        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        // A frame whose body claims the right magic but a bogus version.
        let mut body = Vec::from(crate::protocol::FRAME_MAGIC);
        body.push(99);
        body.push(0x01);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        raw.write_all(&wire).unwrap();
        raw.flush().unwrap();

        let reply = read_frame(&mut raw).unwrap().expect("typed error frame");
        match Response::from_body(&reply).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Malformed);
                assert!(message.contains("version"), "message was {message:?}");
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
        // ...and the server closes the stream.
        assert!(matches!(read_frame(&mut raw), Ok(None)));
        server.stop();
    }

    #[test]
    fn stats_reflect_registry_occupancy() {
        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let before = client.stats().unwrap();
        assert_eq!(before.models_registered, 1);
        assert_eq!(before.models_resident, 0, "nothing loads until routed to");
        assert_eq!(before.budget_bytes, u64::MAX);

        client.infer_outputs("toy", &[0.5; 12]).unwrap();
        let after = client.stats().unwrap();
        assert_eq!(after.models_resident, 1);
        assert_eq!(after.requests, 1);
        assert_eq!(after.loads, 1);
        assert!(after.resident_bytes > 0);
        server.stop();
    }

    #[test]
    fn shutdown_frame_stops_the_node() {
        let server = NetServer::bind("127.0.0.1:0", toy_registry()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.infer_outputs("toy", &[1.0; 12]).unwrap();
        client.shutdown_server().unwrap();

        server.wait_for_shutdown();
        assert!(server.is_shutting_down());
        let stats = server.stop();
        assert_eq!(stats.requests, 1);

        // The listener is gone: a fresh connection gets refused or
        // dropped without an answer.
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut late) => assert!(late.stats().is_err()),
        }
    }
}
