//! The bounded micro-batching request queue.
//!
//! One `Mutex<State>` + two condvars implement the whole scheduling
//! policy:
//!
//! * **Backpressure** — the queue holds at most `capacity` requests;
//!   [`MicroBatchQueue::push`] blocks (and
//!   [`MicroBatchQueue::try_push`] fails fast) while it is full, so a
//!   producer can never outrun the workers unboundedly.
//! * **Dynamic micro-batching** — a worker's
//!   [`MicroBatchQueue::pop_batch`] takes whatever is queued up to
//!   `max_batch`; if the batch is short it waits up to `max_wait` for
//!   stragglers before running what it has. Under load batches fill
//!   instantly (no added latency); when idle a lone request waits at
//!   most `max_wait`.
//! * **Graceful shutdown** — [`MicroBatchQueue::close`] stops new
//!   arrivals but lets workers drain every queued request;
//!   `pop_batch` returns `None` only once the queue is closed *and*
//!   empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queue entry: generic over the request payload so the queue logic
/// stays independently testable.
#[derive(Debug)]
pub(crate) struct MicroBatchQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity (only [`MicroBatchQueue::try_push`]
    /// reports this; `push` waits instead).
    Full,
    /// The queue was closed; no new work is accepted.
    Closed,
}

impl<T> MicroBatchQueue<T> {
    /// Creates a queue bounded at `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Number of queued (not yet claimed) requests.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").queue.len()
    }

    /// Enqueues a request, blocking while the queue is full
    /// (backpressure). Fails only once the queue is closed.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.queue.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(PushError::Closed);
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues a request without blocking: fails fast with
    /// [`PushError::Full`] when the queue is at capacity — the
    /// shed-load path of an overloaded server.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.queue.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Claims the next micro-batch: blocks until at least one request is
    /// queued, then coalesces up to `max_batch` requests, waiting at
    /// most `max_wait` for a short batch to fill. Returns `None` once
    /// the queue is closed and fully drained — the worker's exit signal.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<T>> {
        debug_assert!(max_batch > 0);
        let mut state = self.state.lock().expect("queue poisoned");
        // Phase 1: wait for work (or a drained shutdown).
        loop {
            if !state.queue.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
        // Phase 2: coalesce. A full batch, a closed queue, or an elapsed
        // wait each end the collection window.
        if state.queue.len() < max_batch && !state.closed && !max_wait.is_zero() {
            let deadline = Instant::now() + max_wait;
            while state.queue.len() < max_batch && !state.closed {
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timeout) = self
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("queue poisoned");
                state = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = state.queue.len().min(max_batch);
        let batch: Vec<T> = state.queue.drain(..take).collect();
        drop(state);
        self.not_full.notify_all();
        // Another worker may still have work to claim.
        self.not_empty.notify_one();
        Some(batch)
    }

    /// Closes the queue: concurrent and future pushes fail, blocked
    /// pushers wake, and workers drain the remainder then exit.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_WAIT: Duration = Duration::ZERO;

    #[test]
    fn coalesces_up_to_max_batch_in_fifo_order() {
        let q = MicroBatchQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_batch(3, NO_WAIT), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_batch(3, NO_WAIT), Some(vec![3, 4]));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn try_push_sheds_load_at_capacity() {
        let q = MicroBatchQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Draining one slot reopens the queue.
        assert_eq!(q.pop_batch(1, NO_WAIT), Some(vec![1]));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = MicroBatchQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        // Workers still drain queued work after close…
        assert_eq!(q.pop_batch(8, Duration::from_secs(1)), Some(vec![1, 2]));
        // …and only then see the exit signal (no 1 s wait: closed queues
        // never linger in the coalescing window).
        let start = Instant::now();
        assert_eq!(q.pop_batch(8, Duration::from_secs(1)), None);
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn short_batch_waits_for_stragglers() {
        let q = std::sync::Arc::new(MicroBatchQueue::new(8));
        q.push(1).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.push(2).unwrap();
            })
        };
        // The coalescing window is generous enough to catch the
        // straggler pushed 5 ms in.
        let batch = q.pop_batch(2, Duration::from_secs(2)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn blocked_push_wakes_when_space_frees() {
        let q = std::sync::Arc::new(MicroBatchQueue::new(1));
        q.push(1).unwrap();
        let pusher = {
            let q = q.clone();
            std::thread::spawn(move || q.push(2))
        };
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(q.pop_batch(1, NO_WAIT), Some(vec![1]));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1, NO_WAIT), Some(vec![2]));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = MicroBatchQueue::<u32>::new(0);
    }
}
