//! # eie-serve — serving compressed models under live traffic
//!
//! EIE's pitch is real-time inference: batch-1 latency on compressed FC
//! layers (paper §VI-B). This crate is the serving stage around that
//! claim — the piece that turns one compiled artifact plus the
//! [`eie-core`](eie_core) inference surface into a request/response
//! system:
//!
//! ```text
//!                    ┌────────────────────────── ModelServer ─┐
//!  submit(input) ──▶ │ bounded queue ──▶ micro-batcher ──▶ W0 │──▶ InferenceResponse
//!  submit(input) ──▶ │   (backpressure)  (max_batch,      W1 │──▶     .wait()
//!  submit(input) ──▶ │                    max_wait_us)    ... │──▶  RequestResult
//!                    └────────────────────────────────────────┘
//! ```
//!
//! * [`ModelServer`] loads a `.eie` artifact (or adopts a
//!   [`CompiledModel`](eie_core::CompiledModel)) and spawns N worker
//!   threads, each owning one instantiated
//!   [`Backend`](eie_core::Backend).
//! * Requests land in a **bounded queue** ([`ServerConfig::queue_depth`]):
//!   [`ModelServer::submit`] blocks when it is full (backpressure),
//!   [`ModelServer::try_submit`] sheds load instead.
//! * Workers claim **dynamic micro-batches**: whatever is queued up to
//!   [`ServerConfig::max_batch`], holding short batches open at most
//!   [`ServerConfig::max_wait_us`] for stragglers. Under load, batches
//!   fill instantly; idle requests wait at most the window.
//! * Every response carries its own latency and queue time; a graceful
//!   [`ModelServer::shutdown`] drains the queue (every accepted request
//!   is answered) and returns aggregate [`ServerStats`].
//!
//! **Correctness invariant:** micro-batching is a throughput decision,
//! never a numerical one. Workers execute through
//! [`run_stack_planned`](eie_core::run_stack_planned) — the same
//! chaining loop and `Q8p8` quantization behind
//! [`CompiledModel::infer`](eie_core::CompiledModel::infer), fed the
//! model's shared pre-decoded execution plans — so outputs are
//! bit-identical to a per-request functional-golden run no matter how
//! requests were coalesced, which worker ran them, or which backend
//! executed. The crate's property test submits from concurrent threads
//! across all three backends and asserts exactly that.
//!
//! ## Beyond one model, beyond one process
//!
//! Two more layers turn the single-model server into a serving *node*:
//!
//! * [`ModelRegistry`] routes by model name across many `.eie`
//!   artifacts, loading them on first use and evicting
//!   least-recently-used cold models past a byte budget (models with
//!   in-flight leases are pinned — see the [registry](ModelRegistry)
//!   docs).
//! * [`NetServer`] puts a registry on a TCP listener speaking the
//!   length-prefixed [`protocol`] frames, with [`Client`] as the
//!   matching blocking connector. Overload is a first-class response
//!   ([`protocol::Response::Overloaded`]), not a dropped connection.
//!
//! ## Fault model
//!
//! Parts of a serving node fail without taking the node down, and
//! every failure a caller can see is **typed** (DESIGN.md §12):
//!
//! * Requests may carry a **deadline** ([`SubmitOptions`], or the v2
//!   INFER frame); once lapsed they are answered `DEADLINE_EXCEEDED`
//!   at admission, coalesce, or dispatch time instead of burning a
//!   backend slot.
//! * A panicking worker is **quarantined**: only its in-flight batch
//!   fails (typed [`RequestError::WorkerFailed`]), the worker respawns
//!   under a bounded restart budget, and a server that spends the
//!   budget degrades to shed-load (`degraded` in STATS; first victim
//!   for registry eviction).
//! * [`Client`] owns the retry side: connect/read/write timeouts and a
//!   deterministic [`RetryPolicy`] that retries only idempotent-safe
//!   failures (connect refused, OVERLOADED, timeout, worker failure).
//! * The whole surface is driven by a deterministic [`FaultPlan`]
//!   harness ([`fault`]) injecting panics, stalls, latency and
//!   byte-level frame corruption in tests and behind `EIE_FAULTS` in
//!   the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
mod net;
pub mod protocol;
mod queue;
mod registry;
mod server;

pub use fault::{DispatchFault, FaultPlan, FaultyStream};
pub use net::{CallStats, Client, ClientError, ClientTimeouts, NetPolicy, NetServer, RetryPolicy};
pub use registry::{ModelRegistry, RegistryError, RegistryStats};
pub use server::{
    InferenceResponse, ModelServer, RequestError, RequestResult, ServerConfig, ServerError,
    ServerStats, SubmitError, SubmitOptions,
};
