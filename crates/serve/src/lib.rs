//! # eie-serve — serving compressed models under live traffic
//!
//! EIE's pitch is real-time inference: batch-1 latency on compressed FC
//! layers (paper §VI-B). This crate is the serving stage around that
//! claim — the piece that turns one compiled artifact plus the
//! [`eie-core`](eie_core) inference surface into a request/response
//! system:
//!
//! ```text
//!                    ┌────────────────────────── ModelServer ─┐
//!  submit(input) ──▶ │ bounded queue ──▶ micro-batcher ──▶ W0 │──▶ InferenceResponse
//!  submit(input) ──▶ │   (backpressure)  (max_batch,      W1 │──▶     .wait()
//!  submit(input) ──▶ │                    max_wait_us)    ... │──▶  RequestResult
//!                    └────────────────────────────────────────┘
//! ```
//!
//! * [`ModelServer`] loads a `.eie` artifact (or adopts a
//!   [`CompiledModel`](eie_core::CompiledModel)) and spawns N worker
//!   threads, each owning one instantiated
//!   [`Backend`](eie_core::Backend).
//! * Requests land in a **bounded queue** ([`ServerConfig::queue_depth`]):
//!   [`ModelServer::submit`] blocks when it is full (backpressure),
//!   [`ModelServer::try_submit`] sheds load instead.
//! * Workers claim **dynamic micro-batches**: whatever is queued up to
//!   [`ServerConfig::max_batch`], holding short batches open at most
//!   [`ServerConfig::max_wait_us`] for stragglers. Under load, batches
//!   fill instantly; idle requests wait at most the window.
//! * Every response carries its own latency and queue time; a graceful
//!   [`ModelServer::shutdown`] drains the queue (every accepted request
//!   is answered) and returns aggregate [`ServerStats`].
//!
//! **Correctness invariant:** micro-batching is a throughput decision,
//! never a numerical one. Workers execute through
//! [`run_stack_planned`](eie_core::run_stack_planned) — the same
//! chaining loop and `Q8p8` quantization behind
//! [`CompiledModel::infer`](eie_core::CompiledModel::infer), fed the
//! model's shared pre-decoded execution plans — so outputs are
//! bit-identical to a per-request functional-golden run no matter how
//! requests were coalesced, which worker ran them, or which backend
//! executed. The crate's property test submits from concurrent threads
//! across all three backends and asserts exactly that.
//!
//! ## Beyond one model, beyond one process
//!
//! Two more layers turn the single-model server into a serving *node*:
//!
//! * [`ModelRegistry`] routes by model name across many `.eie`
//!   artifacts, loading them on first use and evicting
//!   least-recently-used cold models past a byte budget (models with
//!   in-flight leases are pinned — see the [registry](ModelRegistry)
//!   docs).
//! * [`NetServer`] puts a registry on a TCP listener speaking the
//!   length-prefixed [`protocol`] frames, with [`Client`] as the
//!   matching blocking connector. Overload is a first-class response
//!   ([`protocol::Response::Overloaded`]), not a dropped connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
pub mod protocol;
mod queue;
mod registry;
mod server;

pub use net::{Client, ClientError, NetServer};
pub use registry::{ModelRegistry, RegistryError, RegistryStats};
pub use server::{
    InferenceResponse, ModelServer, RequestResult, ServerConfig, ServerStats, SubmitError,
};
