//! Registry residency tests: LRU-by-bytes eviction order, pinning of
//! in-flight models, and bit-exact reload after eviction. The byte
//! budget is the knob that lets many compressed models share one box —
//! these tests pin exactly what it may and may not evict.

use eie_core::nn::zoo::{random_sparse, sample_activations};
use eie_core::{CompiledModel, EieConfig};
use eie_serve::{ModelRegistry, RegistryError, ServerConfig};

/// A small model whose artifact size is deterministic for a seed.
fn toy_model(rows: usize, cols: usize, seed: u64) -> CompiledModel {
    let w = random_sparse(rows, cols, 0.3, seed);
    CompiledModel::compile_layer(EieConfig::default().with_num_pes(4), &w)
}

fn quick_config() -> ServerConfig {
    ServerConfig::default()
        .with_workers(1)
        .with_max_wait_us(200)
}

/// Three same-shape models behind a budget that fits exactly two:
/// every admission past capacity evicts the least recently *used*
/// model, not the least recently loaded one.
#[test]
fn eviction_follows_lru_order_by_last_use() {
    let a = toy_model(24, 16, 1);
    let b = toy_model(24, 16, 2);
    let c = toy_model(24, 16, 3);
    // Any two models fit; all three never do: total minus half the
    // smallest is above every pairwise sum and below the full sum.
    let sizes = [a.artifact_bytes(), b.artifact_bytes(), c.artifact_bytes()];
    let budget = sizes.iter().sum::<usize>() - sizes.iter().min().unwrap() / 2;
    let registry = ModelRegistry::new(quick_config()).with_budget_bytes(budget);
    registry.register_model("a", &a).unwrap();
    registry.register_model("b", &b).unwrap();
    registry.register_model("c", &c).unwrap();

    // Load a then b; drop both leases so neither is pinned.
    drop(registry.acquire("a").unwrap());
    drop(registry.acquire("b").unwrap());
    assert!(registry.is_resident("a") && registry.is_resident("b"));
    assert_eq!(registry.stats().evictions, 0);

    // c does not fit: a is the least recently used and must go.
    drop(registry.acquire("c").unwrap());
    assert!(!registry.is_resident("a"), "LRU victim was not evicted");
    assert!(registry.is_resident("b") && registry.is_resident("c"));
    assert_eq!(registry.stats().evictions, 1);

    // Touch b (a *use*, not a load) — now c is least recently used, so
    // re-admitting a must evict c, not b.
    drop(registry.acquire("b").unwrap());
    drop(registry.acquire("a").unwrap());
    assert!(!registry.is_resident("c"), "LRU order ignored the b touch");
    assert!(registry.is_resident("a") && registry.is_resident("b"));

    let stats = registry.stats();
    assert_eq!(stats.evictions, 2);
    assert_eq!(stats.loads, 4, "a, b, c cold + a reload");
    assert_eq!(stats.hits, 1, "only the b touch was answered warm");
    assert!(stats.resident_bytes <= stats.budget_bytes);
}

/// A model with an outstanding lease (requests possibly in flight) is
/// pinned: admission pressure may exceed the budget but never severs
/// it.
#[test]
fn pinned_models_are_never_evicted() {
    let a = toy_model(24, 16, 10);
    let bytes = a.artifact_bytes();
    // Budget fits exactly one model.
    let registry = ModelRegistry::new(quick_config()).with_budget_bytes(bytes + bytes / 2);
    registry.register_model("a", &a).unwrap();
    registry
        .register_model("b", &toy_model(24, 16, 11))
        .unwrap();

    let lease = registry.acquire("a").unwrap();
    let pending = lease.submit(&[0.5; 16]).unwrap();

    // b does not fit next to a, and a is pinned: the registry admits b
    // anyway (the budget bounds cold residency, not a pinned burst).
    drop(registry.acquire("b").unwrap());
    assert!(registry.is_resident("a"), "pinned model was evicted");
    assert!(registry.is_resident("b"));
    assert_eq!(registry.stats().evictions, 0);
    assert!(
        registry.stats().resident_bytes > registry.stats().budget_bytes,
        "a pinned burst exceeds the budget rather than severing leases"
    );

    // The in-flight request on the pinned model completes normally.
    assert_eq!(pending.wait().unwrap().outputs.len(), 24);
    drop(lease);

    // Once unpinned, the next admission can evict a again.
    registry
        .register_model("c", &toy_model(24, 16, 12))
        .unwrap();
    drop(registry.acquire("c").unwrap());
    assert!(!registry.is_resident("a") || !registry.is_resident("b"));
    assert!(registry.stats().evictions >= 1);
}

/// Evict → re-acquire reloads from the stored artifact and serves
/// outputs bit-identical to the first residency — eviction is a memory
/// decision, never a numerical one.
#[test]
fn reload_after_eviction_is_bit_exact() {
    let a = toy_model(32, 20, 21);
    let bytes = a.artifact_bytes();
    let registry = ModelRegistry::new(quick_config()).with_budget_bytes(bytes + bytes / 2);
    registry.register_model("a", &a).unwrap();
    registry
        .register_model("filler", &toy_model(32, 20, 22))
        .unwrap();

    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|i| sample_activations(20, 0.5, true, 100 + i))
        .collect();

    let first: Vec<_> = {
        let server = registry.acquire("a").unwrap();
        inputs
            .iter()
            .map(|input| server.submit(input).unwrap().wait().unwrap().outputs)
            .collect()
    };

    // Force a out by loading the filler.
    drop(registry.acquire("filler").unwrap());
    assert!(!registry.is_resident("a"), "eviction did not happen");

    let second: Vec<_> = {
        let server = registry.acquire("a").unwrap();
        inputs
            .iter()
            .map(|input| server.submit(input).unwrap().wait().unwrap().outputs)
            .collect()
    };
    assert_eq!(first, second, "reload after eviction changed outputs");
    assert_eq!(registry.stats().loads, 3, "a cold, filler cold, a reload");
}

/// Eviction retires a server's final tallies into the registry's
/// lifetime statistics instead of losing them: the STATS a network
/// client sees counts every request ever served, not just the requests
/// of currently-resident models.
#[test]
fn lifetime_stats_survive_eviction() {
    let a = toy_model(24, 16, 50);
    let bytes = a.artifact_bytes();
    let registry = ModelRegistry::new(quick_config()).with_budget_bytes(bytes + bytes / 2);
    registry.register_model("a", &a).unwrap();
    registry
        .register_model("filler", &toy_model(24, 16, 51))
        .unwrap();

    {
        let server = registry.acquire("a").unwrap();
        for i in 0..5 {
            server
                .submit(&sample_activations(16, 0.5, false, i))
                .unwrap()
                .wait()
                .unwrap();
        }
    }
    drop(registry.acquire("filler").unwrap());
    assert!(!registry.is_resident("a"));

    let (stats, _) = registry.serving_snapshot();
    assert_eq!(
        stats.requests, 5,
        "evicted model's requests vanished from the snapshot"
    );
    assert_eq!(
        registry.drain().requests,
        5,
        "evicted model's requests vanished from drain"
    );
    // Drain resets the lifetime tallies.
    assert_eq!(registry.serving_snapshot().0.requests, 0);
}

/// The registry's error surface: unknown names, duplicate registration,
/// and artifacts that fail to load (typed, with the model named).
#[test]
fn registry_errors_are_typed() {
    let registry = ModelRegistry::new(quick_config());
    assert!(matches!(
        registry.acquire("ghost"),
        Err(RegistryError::UnknownModel { name }) if name == "ghost"
    ));

    registry
        .register_model("a", &toy_model(16, 12, 30))
        .unwrap();
    assert!(matches!(
        registry.register_model("a", &toy_model(16, 12, 31)),
        Err(RegistryError::DuplicateName { name }) if name == "a"
    ));

    // Registration is lazy: a bad path only fails on first acquire, and
    // the registry stays usable afterwards.
    registry
        .register_file("broken", "/nonexistent/model.eie")
        .unwrap();
    assert!(matches!(
        registry.acquire("broken"),
        Err(RegistryError::Load { name, .. }) if name == "broken"
    ));
    assert!(!registry.is_resident("broken"));
    assert!(registry.acquire("a").is_ok());
    assert_eq!(
        registry.names(),
        vec!["a".to_string(), "broken".to_string()]
    );
}

/// Draining answers every queued request, resets residency but not
/// registration, and a later acquire re-loads cleanly.
#[test]
fn drain_resets_residency_not_registration() {
    let registry = ModelRegistry::new(quick_config());
    registry
        .register_model("a", &toy_model(24, 16, 40))
        .unwrap();

    let server = registry.acquire("a").unwrap();
    let pending: Vec<_> = (0..8)
        .map(|i| {
            server
                .submit(&sample_activations(16, 0.5, false, 40 + i))
                .unwrap()
        })
        .collect();
    drop(server);

    let stats = registry.drain();
    assert_eq!(stats.requests, 8, "drain lost accepted requests");
    for p in pending {
        assert_eq!(p.wait().unwrap().outputs.len(), 24);
    }
    assert!(!registry.is_resident("a"));
    assert_eq!(registry.stats().registered, 1);
    drop(registry.acquire("a").unwrap());
    assert_eq!(registry.stats().loads, 2);
}
