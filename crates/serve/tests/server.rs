//! ModelServer behaviour: lifecycle, batching, backpressure, shutdown.

use eie_core::nn::zoo::{random_sparse, sample_activations};
use eie_core::{BackendKind, CompiledModel, EieConfig, Topology};
use eie_serve::{ModelServer, ServerConfig, SubmitError};

fn small_model() -> CompiledModel {
    let w1 = random_sparse(48, 32, 0.2, 41);
    let w2 = random_sparse(16, 48, 0.25, 42);
    CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2])
        .with_name("serve test")
}

fn inputs(n: usize) -> Vec<Vec<f32>> {
    (0..n as u64)
        .map(|i| sample_activations(32, 0.5, false, 900 + i))
        .collect()
}

#[test]
fn serves_bit_exact_with_the_functional_golden_model() {
    let model = small_model();
    let golden = model.infer(BackendKind::Functional).submit(&inputs(24));
    let server = ModelServer::start(
        model,
        ServerConfig::default().with_workers(2).with_max_batch(5),
    );
    let responses: Vec<_> = inputs(24)
        .iter()
        .map(|input| server.submit(input).expect("submit"))
        .collect();
    for (i, response) in responses.into_iter().enumerate() {
        let result = response.wait().expect("request failed");
        assert_eq!(
            result.outputs[..],
            *golden.outputs(i),
            "served output diverged from the golden model at request {i}"
        );
        assert!(result.latency_us >= result.queue_us);
        assert!((1..=5).contains(&result.coalesced));
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, 24);
    assert!(
        stats.batches >= 5,
        "24 requests at ≤5/batch need ≥5 batches"
    );
    assert!(stats.max_coalesced <= 5);
    assert!(stats.frames_per_second() > 0.0);
    assert!(stats.p50() <= stats.p99());
    assert!(stats.to_string().contains("frames/s"));
}

#[test]
fn load_serves_a_saved_artifact() {
    let model = small_model();
    let path = std::env::temp_dir().join("eie_serve_load_test.eie");
    model.save(&path).expect("save artifact");
    let golden = model.infer(BackendKind::Functional).submit(&inputs(4));

    let server = ModelServer::load(&path, ServerConfig::default()).expect("load artifact");
    assert_eq!(server.model().name(), "serve test");
    for (i, input) in inputs(4).iter().enumerate() {
        let result = server.submit(input).unwrap().wait().unwrap();
        assert_eq!(result.outputs[..], *golden.outputs(i));
    }
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_mismatched_input_length() {
    let server = ModelServer::start(small_model(), ServerConfig::default());
    let err = server.submit(&[0.5; 31]).unwrap_err();
    assert_eq!(err, SubmitError::BadInputLength { got: 31, want: 32 });
    assert!(err.to_string().contains("31"));
    let stats = server.shutdown();
    assert_eq!(stats.requests, 0);
    // The documented empty-distribution path: no requests, zero metrics.
    assert_eq!(stats.p99(), 0.0);
    assert_eq!(stats.mean_coalesced(), 0.0);
    assert_eq!(stats.mean_queue_us(), 0.0);
}

#[test]
fn dropping_a_server_without_shutdown_joins_the_workers() {
    // A server abandoned on an early-return path must not leak its
    // worker pool: Drop closes the queue, drains, and joins — so
    // already-accepted requests are still answered.
    let responses: Vec<_> = {
        let server = ModelServer::start(small_model(), ServerConfig::default().with_workers(2));
        inputs(6)
            .iter()
            .map(|input| server.submit(input).expect("submit"))
            .collect()
        // `server` dropped here without shutdown().
    };
    for response in responses {
        assert_eq!(response.wait().unwrap().outputs.len(), 16);
    }
}

#[test]
#[should_panic(expected = "max_batch")]
fn start_rejects_degenerate_config_from_public_fields() {
    // The pub fields can bypass the with_* builder asserts; start()
    // must still refuse a policy that would busy-spin a worker.
    let config = ServerConfig {
        max_batch: 0,
        ..ServerConfig::default()
    };
    let _ = ModelServer::start(small_model(), config);
}

#[test]
fn graceful_shutdown_answers_every_accepted_request() {
    // A modelled backend and one worker keep the queue populated at
    // shutdown; the drain must still answer everything accepted.
    let server = ModelServer::start(
        small_model(),
        ServerConfig::default()
            .with_backend(BackendKind::CycleAccurate)
            .with_workers(1)
            .with_max_batch(2)
            .with_max_wait_us(0),
    );
    let responses: Vec<_> = inputs(12)
        .iter()
        .map(|input| server.submit(input).expect("submit"))
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.requests, 12, "shutdown drain lost requests");
    for response in responses {
        let result = response.wait().expect("request failed");
        assert_eq!(result.outputs.len(), 16);
    }
}

#[test]
fn try_submit_sheds_load_at_queue_capacity_and_submit_blocks() {
    // One worker holding a long collection window (nothing drains until
    // it expires) in front of a depth-2 queue: the queue must fill and
    // shed within the first few fast pushes.
    let server = ModelServer::start(
        small_model(),
        ServerConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .with_max_batch(64)
            .with_max_wait_us(300_000),
    );
    let input = &inputs(1)[0];
    let mut pending = Vec::new();
    let mut shed = None;
    for _ in 0..4 {
        match server.try_submit(input) {
            Ok(r) => pending.push(r),
            Err(e) => {
                shed = Some(e);
                break;
            }
        }
    }
    assert_eq!(shed, Some(SubmitError::QueueFull { depth: 2 }));
    assert_eq!(server.pending(), 2);

    // Backpressured `submit` blocks rather than failing, then completes
    // once the window expires and the worker drains the queue.
    std::thread::scope(|scope| {
        let blocked = scope.spawn(|| {
            server
                .submit(input)
                .expect("backpressured submit completes after the drain")
                .wait()
                .unwrap()
        });
        assert_eq!(blocked.join().unwrap().outputs.len(), 16);
    });
    for r in pending {
        let _ = r.wait();
    }
    let stats = server.shutdown();
    assert!(stats.requests >= 3);
}

#[test]
fn micro_batches_coalesce_under_concurrent_load() {
    // Several producers against one worker with a collection window: at
    // least one micro-batch should coalesce more than one request (the
    // dynamic-batching payoff), without changing any output.
    let model = small_model();
    let golden = model.infer(BackendKind::Functional);
    let server = ModelServer::start(
        model.clone(),
        ServerConfig::default()
            .with_workers(1)
            .with_max_batch(8)
            .with_max_wait_us(20_000),
    );
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let server = &server;
            let golden = &golden;
            scope.spawn(move || {
                for i in 0..6u64 {
                    let input = sample_activations(32, 0.5, false, 1000 + t * 100 + i);
                    let result = server.submit(&input).expect("submit").wait().unwrap();
                    let expected = golden.submit_one(&input);
                    assert_eq!(
                        result.outputs[..],
                        *expected.outputs(0),
                        "coalesced output diverged (producer {t}, request {i})"
                    );
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 24);
    assert!(
        stats.max_coalesced > 1,
        "no micro-batch ever coalesced (batches={})",
        stats.batches
    );
    assert!(stats.batches < 24, "every request ran alone");
}

#[test]
fn topology_routed_serving_is_bit_exact_and_counts_every_request() {
    // A sharded, pipelined worker must serve the same bits as the
    // Functional golden model, under concurrent producers, and the
    // merged stats must still account for every request.
    let w1 = random_sparse(40, 32, 0.25, 61);
    let w2 = random_sparse(48, 40, 0.2, 62);
    let w3 = random_sparse(12, 48, 0.3, 63);
    let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2, &w3])
        .with_name("topology serve test");
    let golden = model.infer(BackendKind::Functional);
    let server = ModelServer::start(
        model.clone(),
        ServerConfig::default()
            .with_workers(2)
            .with_max_batch(6)
            .with_backend(BackendKind::NativeCpu(1))
            .with_topology(Topology::single().with_shards(2).with_stages(2)),
    );
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let server = &server;
            let golden = &golden;
            scope.spawn(move || {
                for i in 0..7u64 {
                    let input = sample_activations(32, 0.5, false, 2000 + t * 100 + i);
                    let result = server.submit(&input).expect("submit").wait().unwrap();
                    let expected = golden.submit_one(&input);
                    assert_eq!(
                        result.outputs[..],
                        *expected.outputs(0),
                        "pipelined serving diverged (producer {t}, request {i})"
                    );
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 21);
    assert!(stats.frames_per_second() > 0.0);
}

#[test]
#[should_panic(expected = "a topology requires the native-cpu backend")]
fn start_rejects_a_topology_on_a_non_native_backend() {
    ModelServer::start(
        small_model(),
        ServerConfig::default()
            .with_backend(BackendKind::Functional)
            .with_topology(Topology::single().with_shards(2)),
    );
}
