//! Scheduler-determinism property: however requests are interleaved by
//! concurrent submitters and however the micro-batcher coalesces them,
//! every served output is bit-identical to a one-at-a-time run of the
//! functional golden model — on all three backends.
//!
//! This is the acceptance criterion of the serving redesign: batching
//! is a throughput decision, never a numerical one.

use std::sync::Arc;

use eie_core::nn::zoo::{random_sparse, sample_activations};
use eie_core::{BackendKind, CompiledModel, EieConfig};
use eie_serve::{Client, ModelRegistry, ModelServer, NetServer, ServerConfig};
use proptest::prelude::*;

/// Strategy: a 1–2 layer model, a request load, and a serving policy
/// (backend × workers × max_batch × max_wait × queue_depth).
#[allow(clippy::type_complexity)]
fn arb_case() -> impl Strategy<
    Value = (
        Vec<(usize, usize)>, // layer dims, output→input chained
        u64,                 // weight seed
        usize,               // requests
        u64,                 // input seed
        BackendKind,
        usize, // workers
        usize, // max_batch
        u64,   // max_wait_us
        usize, // submitter threads
    ),
> {
    (
        prop_oneof![
            Just(vec![(24usize, 16usize)]),
            Just(vec![(32, 20), (12, 32)]),
        ],
        any::<u64>(),
        1usize..24,
        any::<u64>(),
        prop_oneof![
            Just(BackendKind::Functional),
            Just(BackendKind::CycleAccurate),
            Just(BackendKind::NativeCpu(2)),
        ],
        1usize..4,
        1usize..7,
        prop_oneof![Just(0u64), Just(100), Just(2000)],
        1usize..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coalescing_and_submission_order_never_change_outputs(
        (dims, weight_seed, requests, input_seed, backend, workers, max_batch, max_wait_us, submitters)
            in arb_case()
    ) {
        // Build the model (reroll all-zero matrices; compile rejects them).
        let mut weights = Vec::new();
        for (li, &(rows, cols)) in dims.iter().enumerate() {
            let mut seed = weight_seed.wrapping_add(li as u64);
            let mut m = random_sparse(rows, cols, 0.3, seed);
            while m.nnz() == 0 {
                seed = seed.wrapping_add(0x9E37_79B9);
                m = random_sparse(rows, cols, 0.4, seed);
            }
            weights.push(m);
        }
        let refs: Vec<_> = weights.iter().collect();
        let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &refs);
        let input_dim = model.input_dim();

        let inputs: Vec<Vec<f32>> = (0..requests as u64)
            .map(|i| sample_activations(input_dim, 0.5, true, input_seed.wrapping_add(i)))
            .collect();

        // Reference: one-at-a-time on the functional golden model.
        let expected: Vec<Vec<_>> = inputs
            .iter()
            .map(|input| {
                model
                    .infer(BackendKind::Functional)
                    .submit_one(input)
                    .outputs(0)
                    .to_vec()
            })
            .collect();

        let server = ModelServer::start(
            model,
            ServerConfig::default()
                .with_backend(backend)
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_max_wait_us(max_wait_us)
                .with_queue_depth(64),
        );

        // Concurrent submitters, each owning an interleaved slice of the
        // request stream: the enqueue order the server sees is whatever
        // the scheduler produced this run.
        let results: Vec<(usize, Vec<_>)> = std::thread::scope(|scope| {
            let server = &server;
            let inputs = &inputs;
            let handles: Vec<_> = (0..submitters)
                .map(|t| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = t;
                        while i < inputs.len() {
                            let response = server.submit(&inputs[i]).expect("submit");
                            out.push((i, response.wait().unwrap().outputs));
                            i += submitters;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter panicked"))
                .collect()
        });
        let stats = server.shutdown();
        prop_assert_eq!(stats.requests as usize, requests);
        prop_assert!(stats.max_coalesced <= max_batch);

        for (i, outputs) in results {
            prop_assert_eq!(
                &outputs,
                &expected[i],
                "request {} diverged from the one-at-a-time golden run \
                 (backend {}, workers {}, max_batch {}, max_wait {} µs, {} submitters)",
                i, backend, workers, max_batch, max_wait_us, submitters
            );
        }
    }
}

/// Strategy for the networked variant: N client connections × M models
/// behind one TCP node, with a serving policy drawn like the in-process
/// case.
#[allow(clippy::type_complexity)]
fn arb_net_case() -> impl Strategy<
    Value = (
        usize,       // models (1..=2)
        u64,         // weight seed
        usize,       // requests per client
        u64,         // input seed
        BackendKind, // worker backend
        usize,       // workers per model
        usize,       // max_batch
        usize,       // client connections
    ),
> {
    (
        1usize..=2,
        any::<u64>(),
        1usize..10,
        any::<u64>(),
        prop_oneof![
            Just(BackendKind::Functional),
            Just(BackendKind::NativeCpu(2)),
        ],
        1usize..3,
        1usize..7,
        1usize..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same invariant with a real loopback socket in the middle:
    /// however concurrent client connections interleave requests across
    /// models, and however each model's micro-batcher coalesces them,
    /// every wire response reassembles bit-identical to the
    /// one-at-a-time functional golden run. The frame codec carries raw
    /// Q8.8 words, so the network must be numerically invisible.
    #[test]
    fn network_serving_never_changes_outputs(
        (num_models, weight_seed, requests, input_seed, backend, workers, max_batch, clients)
            in arb_net_case()
    ) {
        let shapes: [&[usize]; 2] = [&[20, 14], &[16, 24, 12]];
        let models: Vec<(String, Arc<CompiledModel>)> = (0..num_models)
            .map(|m| {
                let weights: Vec<_> = shapes[m]
                    .windows(2)
                    .enumerate()
                    .map(|(i, pair)| {
                        let mut seed = weight_seed.wrapping_add((m * 10 + i) as u64);
                        let mut w = random_sparse(pair[1], pair[0], 0.3, seed);
                        while w.nnz() == 0 {
                            seed = seed.wrapping_add(0x9E37_79B9);
                            w = random_sparse(pair[1], pair[0], 0.4, seed);
                        }
                        w
                    })
                    .collect();
                let refs: Vec<_> = weights.iter().collect();
                let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &refs);
                (format!("m{m}"), Arc::new(model))
            })
            .collect();

        let registry = ModelRegistry::new(
            ServerConfig::default()
                .with_backend(backend)
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_max_wait_us(400)
                .with_queue_depth(64),
        );
        for (name, model) in &models {
            registry.register_model(name.clone(), model.as_ref()).unwrap();
        }
        let server = NetServer::bind("127.0.0.1:0", registry).expect("bind");
        let addr = server.local_addr();

        let failures: Vec<String> = std::thread::scope(|scope| {
            let models = &models;
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    scope.spawn(move || -> Result<(), String> {
                        let mut client =
                            Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                        for j in 0..requests {
                            let (name, model) = &models[(t + j) % models.len()];
                            let input = sample_activations(
                                model.input_dim(),
                                0.5,
                                true,
                                input_seed.wrapping_add((t * requests + j) as u64),
                            );
                            let served = client
                                .infer_outputs(name, &input)
                                .map_err(|e| format!("client {t} request {j}: {e}"))?;
                            let golden =
                                model.infer(BackendKind::Functional).submit_one(&input);
                            if served != golden.outputs(0) {
                                return Err(format!(
                                    "client {t} request {j} to {name:?} diverged from the \
                                     one-at-a-time golden run"
                                ));
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("client thread panicked").err())
                .collect()
        });
        prop_assert!(failures.is_empty(), "{}", failures.join("; "));

        let stats = server.stop();
        prop_assert_eq!(stats.requests as usize, clients * requests);
        prop_assert!(stats.max_coalesced <= max_batch);
    }
}
