//! The network-serving acceptance tests: concurrent clients × multiple
//! models over a real loopback socket, bit-exact against one-at-a-time
//! functional golden runs; deterministic shed-load under a tiny queue
//! bound; clean drain on shutdown.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use eie_core::fixed::Q8p8;
use eie_core::nn::zoo::{random_sparse, sample_activations};
use eie_core::{BackendKind, CompiledModel, EieConfig};
use eie_serve::protocol::Response;
use eie_serve::{Client, ModelRegistry, NetServer, ServerConfig};

fn stack_model(dims: &[usize], seed: u64) -> CompiledModel {
    let weights: Vec<_> = dims
        .windows(2)
        .enumerate()
        .map(|(i, pair)| {
            let mut s = seed.wrapping_add(i as u64);
            let mut m = random_sparse(pair[1], pair[0], 0.3, s);
            while m.nnz() == 0 {
                s = s.wrapping_add(0x9E37_79B9);
                m = random_sparse(pair[1], pair[0], 0.4, s);
            }
            m
        })
        .collect();
    let refs: Vec<_> = weights.iter().collect();
    CompiledModel::compile(EieConfig::default().with_num_pes(4), &refs)
}

/// The PR's acceptance criterion: 4 concurrent clients mixing requests
/// across 2 models over loopback TCP, every response bit-identical to a
/// one-at-a-time functional golden run, and a clean drain at the end
/// (every accepted request answered, server stats consistent).
#[test]
fn four_clients_two_models_loopback_bit_exact_with_clean_drain() {
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 12; // per client

    let models = [
        ("fc-a".to_string(), Arc::new(stack_model(&[20, 28, 16], 1))),
        ("fc-b".to_string(), Arc::new(stack_model(&[24, 10], 2))),
    ];
    let registry = ModelRegistry::new(
        ServerConfig::default()
            .with_workers(2)
            .with_max_batch(5)
            .with_max_wait_us(400),
    );
    for (name, model) in &models {
        registry
            .register_model(name.clone(), model.as_ref())
            .unwrap();
    }
    let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr();

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let models = models.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for j in 0..REQUESTS {
                    let (name, model) = &models[(t + j) % models.len()];
                    let input =
                        sample_activations(model.input_dim(), 0.5, true, (t * REQUESTS + j) as u64);
                    let served: Vec<Q8p8> = client.infer_outputs(name, &input).expect("infer");
                    let golden = model.infer(BackendKind::Functional).submit_one(&input);
                    assert_eq!(
                        served,
                        golden.outputs(0),
                        "client {t} request {j} to {name:?} diverged from the \
                         one-at-a-time functional golden run"
                    );
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread panicked");
    }

    // Every request was answered, none shed, both models resident.
    let mut control = Client::connect(addr).unwrap();
    let report = control.stats().unwrap();
    assert_eq!(report.requests as usize, CLIENTS * REQUESTS);
    assert_eq!(report.models_resident, 2);
    assert_eq!(report.loads, 2);
    assert_eq!(report.queue_depth, 0, "load finished but requests queued");
    assert!(report.p99_us > 0.0);

    // Clean drain: SHUTDOWN is acknowledged, the node stops, and the
    // final merged stats still account for every request.
    control.shutdown_server().unwrap();
    let stats = server.stop();
    assert_eq!(stats.requests as usize, CLIENTS * REQUESTS);
}

/// Deterministic overload: one worker holding a long collection window
/// keeps claimed requests in the bounded queue, so a tiny `queue_depth`
/// fills and the N+1'th concurrent client is shed with a typed
/// OVERLOADED frame — while every *accepted* request still completes
/// bit-exactly.
#[test]
fn overload_is_shed_as_a_typed_frame_and_accepted_work_completes() {
    let model = Arc::new(stack_model(&[16, 12], 7));
    let golden_model = Arc::clone(&model);
    let registry = ModelRegistry::new(
        ServerConfig::default()
            .with_workers(1)
            .with_max_batch(64)
            .with_max_wait_us(500_000) // 500 ms window
            .with_queue_depth(2),
    );
    registry.register_model("m", model.as_ref()).unwrap();
    let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr();

    // Two connections fill the queue; their responses arrive only when
    // the collection window closes.
    let fillers: Vec<_> = (0..2)
        .map(|t| {
            let model = Arc::clone(&model);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let input = sample_activations(16, 0.5, true, t);
                let served = client.infer_outputs("m", &input).expect("filler infer");
                let golden = model.infer(BackendKind::Functional).submit_one(&input);
                assert_eq!(served, golden.outputs(0), "filler {t} diverged");
            })
        })
        .collect();

    // Let both fillers enqueue (well inside the 500 ms window).
    thread::sleep(Duration::from_millis(150));

    // The third concurrent request finds the queue at its bound and is
    // shed immediately — a typed answer carrying the configured depth,
    // not a dropped connection or an indefinite block.
    let mut client = Client::connect(addr).unwrap();
    let shed_input = sample_activations(16, 0.5, true, 99);
    let started = Instant::now();
    match client.infer("m", &shed_input).unwrap() {
        Response::Overloaded { depth } => assert_eq!(depth, 2),
        other => panic!("expected OVERLOADED, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "shed load must answer without waiting out the batch window"
    );

    for filler in fillers {
        filler.join().expect("filler panicked");
    }

    // After the window drains, the same request is admitted and serves
    // bit-exactly.
    let served = client.infer_outputs("m", &shed_input).unwrap();
    let golden = golden_model
        .infer(BackendKind::Functional)
        .submit_one(&shed_input);
    assert_eq!(served, golden.outputs(0));

    client.shutdown_server().unwrap();
    let stats = server.stop();
    assert_eq!(
        stats.requests, 3,
        "2 fillers + 1 retry; the shed request never counts"
    );
}
