//! The fault-injection property: under a *random* seeded [`FaultPlan`]
//! (panics + stalls at random dispatch points) over random models and
//! random deadlines, every answered request is bit-exact with the
//! functional golden run, every failure is a typed error, and the
//! server's accounting stays consistent:
//! `accepted = requests + shed + expired + failed`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use eie_core::nn::zoo::{random_sparse, sample_activations};
use eie_core::{BackendKind, CompiledModel, EieConfig};
use eie_serve::{FaultPlan, ModelServer, RequestError, ServerConfig, SubmitError, SubmitOptions};
use proptest::prelude::*;

/// Silence the injected panics' default-hook stderr (real panics still
/// print and still fail the test).
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn model_for(dims: (usize, usize, usize), seed: u64) -> CompiledModel {
    let (input, hidden, output) = dims;
    let mut s = seed;
    let mut w1 = random_sparse(hidden, input, 0.25, s);
    while w1.nnz() == 0 {
        s = s.wrapping_add(0x9E37_79B9);
        w1 = random_sparse(hidden, input, 0.35, s);
    }
    let mut w2 = random_sparse(output, hidden, 0.25, s.wrapping_add(1));
    while w2.nnz() == 0 {
        s = s.wrapping_add(0x9E37_79B9);
        w2 = random_sparse(output, hidden, 0.35, s.wrapping_add(1));
    }
    CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random chaos schedule × random model × random deadline mix: the
    /// served surface stays bit-exact-or-typed and the books balance.
    #[test]
    fn random_fault_schedules_stay_bit_exact_or_typed(
        fault_seed in any::<u64>(),
        model_seed in 1u64..1_000,
        dims in (8usize..=32, 8usize..=48, 4usize..=24),
        requests in 4usize..=24,
        workers in 1usize..=2,
        panic_per_mille in 0u32..=300,
        stall_per_mille in 0u32..=200,
        with_deadlines in any::<bool>(),
        restart_budget in 1u32..=8,
    ) {
        quiet_injected_panics();
        let model = model_for(dims, model_seed);
        let inputs: Vec<Vec<f32>> = (0..requests as u64)
            .map(|i| sample_activations(dims.0, 0.4, false, model_seed.wrapping_add(3000 + i)))
            .collect();
        let golden = model.infer(BackendKind::Functional).submit(&inputs);

        let plan = Arc::new(FaultPlan::seeded(
            fault_seed,
            4 * requests as u64,
            panic_per_mille,
            stall_per_mille,
            Duration::from_micros(400),
        ));
        let server = ModelServer::start_with_faults(
            model,
            ServerConfig::default()
                .with_workers(workers)
                .with_max_batch(4)
                .with_restart_budget(restart_budget)
                .with_restart_backoff_us(50),
            Some(plan),
        );

        // Submit everything, then wait everything: coalescing and the
        // fault schedule interleave however they like.
        let mut responses = Vec::with_capacity(requests);
        let mut shed = 0u64;
        let mut expired = 0u64;
        for (i, input) in inputs.iter().enumerate() {
            let opts = if with_deadlines && i % 3 == 0 {
                // Tight but usually-satisfiable; some will expire under
                // injected stalls, which is the point.
                SubmitOptions::default().with_deadline(Instant::now() + Duration::from_millis(2))
            } else {
                SubmitOptions::default()
            };
            match server.submit_with(input, opts) {
                Ok(response) => responses.push((i, response)),
                Err(SubmitError::Degraded { .. }) => shed += 1,
                Err(SubmitError::DeadlineExceeded) => expired += 1,
                Err(other) => {
                    return Err(proptest::test_runner::TestCaseError::fail(format!("untyped submit failure {other:?}")))
                }
            }
        }

        let mut answered = 0u64;
        let mut failed = 0u64;
        for (i, response) in responses {
            match response.wait() {
                Ok(result) => {
                    answered += 1;
                    prop_assert_eq!(
                        &result.outputs[..],
                        golden.outputs(i),
                        "served output diverged from the functional golden at request {}",
                        i
                    );
                }
                Err(RequestError::WorkerFailed { .. }) => failed += 1,
                Err(RequestError::DeadlineExceeded) => expired += 1,
            }
        }

        let stats = server.shutdown();
        prop_assert_eq!(stats.requests, answered);
        prop_assert_eq!(stats.failed, failed);
        prop_assert_eq!(stats.expired, expired);
        prop_assert_eq!(stats.shed, shed);
        prop_assert_eq!(
            stats.accepted,
            stats.requests + stats.shed + stats.expired + stats.failed,
            "accounting invariant violated: {:?}",
            stats.clone()
        );
        prop_assert_eq!(
            stats.accepted,
            requests as u64,
            "every submission must be dispositioned exactly once"
        );
    }
}
