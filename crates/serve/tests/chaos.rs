//! The chaos suite: deterministic [`FaultPlan`] schedules driving the
//! fault-tolerance machinery end to end — worker quarantine and
//! respawn, deadline expiry at admission and at dispatch, restart-budget
//! exhaustion and degraded shed-load, degraded-first registry eviction,
//! byte-level frame corruption, and handler-panic surfacing.
//!
//! The invariant under every schedule: **every success is bit-exact
//! with the functional golden run, every failure is typed, and the
//! server drains clean** (`accepted = requests + shed + expired +
//! failed`).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eie_core::nn::zoo::{random_sparse, sample_activations};
use eie_core::{BackendKind, CompiledModel, EieConfig};
use eie_serve::protocol::{write_frame, ErrorCode, Request, Response};
use eie_serve::{
    Client, FaultPlan, FaultyStream, ModelRegistry, ModelServer, NetServer, RequestError,
    ServerConfig, ServerError, ServerStats, SubmitError, SubmitOptions,
};

/// Injected panics are part of the schedule, not noise: silence their
/// default-hook stderr spew (real panics still print and still fail).
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn small_model() -> CompiledModel {
    let w1 = random_sparse(48, 32, 0.2, 41);
    let w2 = random_sparse(16, 48, 0.25, 42);
    CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w1, &w2])
        .with_name("chaos test")
}

fn inputs(n: usize) -> Vec<Vec<f32>> {
    (0..n as u64)
        .map(|i| sample_activations(32, 0.5, false, 7100 + i))
        .collect()
}

fn assert_accounting(stats: &ServerStats) {
    assert_eq!(
        stats.accepted,
        stats.requests + stats.shed + stats.expired + stats.failed,
        "accounting invariant violated: {stats:?}"
    );
}

/// The quarantine acceptance criterion: a worker killed mid-batch fails
/// only the in-flight request (typed), respawns, and every subsequent
/// request is served bit-exact; `worker_restarts` increments.
#[test]
fn worker_panic_fails_only_inflight_then_recovers_bit_exact() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(6);
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    let plan = Arc::new(FaultPlan::new().panic_on_dispatch(0));
    let server = ModelServer::start_with_faults(
        model,
        ServerConfig::default()
            .with_workers(1)
            .with_restart_backoff_us(50),
        Some(Arc::clone(&plan)),
    );

    // Dispatch 0 panics: the first request fails typed, nothing else.
    let first = server.submit(&batch[0]).unwrap().wait();
    match first {
        Err(RequestError::WorkerFailed { detail }) => {
            assert!(detail.contains("injected"), "unexpected detail {detail:?}")
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }

    // The worker respawned: every later request is served bit-exact.
    for (i, input) in batch.iter().enumerate().skip(1) {
        let result = server.submit(input).unwrap().wait().unwrap();
        assert_eq!(
            result.outputs[..],
            *golden.outputs(i),
            "post-respawn output diverged at request {i}"
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.failed, 1);
    assert!(stats.worker_restarts >= 1, "restart not counted: {stats:?}");
    assert_eq!(stats.degraded, 0);
    assert_accounting(&stats);
    assert!(stats.to_string().contains("faults"));
}

/// The deadline acceptance criterion: a pre-expired request is answered
/// `DEADLINE_EXCEEDED` without ever reaching a worker (the fault plan's
/// dispatch counter proves no backend dispatch happened), and the
/// expired/accepted counters stay consistent.
#[test]
fn preexpired_deadline_is_refused_without_a_dispatch() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(2);
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    // An empty plan: inert, but its dispatch counter observes the
    // worker's claim sequence.
    let plan = Arc::new(FaultPlan::new());
    let server = ModelServer::start_with_faults(
        model,
        ServerConfig::default().with_workers(1),
        Some(Arc::clone(&plan)),
    );

    let expired = server.submit_with(
        &batch[0],
        SubmitOptions::default().with_deadline(Instant::now()),
    );
    assert!(matches!(expired, Err(SubmitError::DeadlineExceeded)));
    assert_eq!(plan.dispatches(), 0, "expired request reached a worker");

    // A generous deadline sails through and stays bit-exact.
    let result = server
        .submit_with(
            &batch[1],
            SubmitOptions::default().with_deadline(Instant::now() + Duration::from_secs(30)),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(result.outputs[..], *golden.outputs(1));

    let stats = server.shutdown();
    assert_eq!((stats.requests, stats.expired), (1, 1));
    assert_eq!(stats.accepted, 2);
    assert_accounting(&stats);
}

/// Deadline expiry at *dispatch* time: an injected stall outlasts the
/// request's budget, so the worker claims it but answers
/// `DEADLINE_EXCEEDED` instead of burning a backend slot on it.
#[test]
fn stalled_dispatch_expires_the_deadline_typed() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(1);
    let plan = Arc::new(FaultPlan::new().stall_dispatch(0, Duration::from_millis(50)));
    let server = ModelServer::start_with_faults(
        model,
        ServerConfig::default().with_workers(1),
        Some(Arc::clone(&plan)),
    );

    let response = server
        .submit_with(
            &batch[0],
            SubmitOptions::default().with_deadline(Instant::now() + Duration::from_millis(5)),
        )
        .unwrap();
    assert!(matches!(
        response.wait(),
        Err(RequestError::DeadlineExceeded)
    ));

    let stats = server.shutdown();
    assert_eq!((stats.requests, stats.expired), (0, 1));
    assert_accounting(&stats);
}

/// Restart-budget exhaustion: panics past the budget flip the server to
/// degraded — admission sheds typed, in-flight work still drains — and
/// the degraded bit shows up in the stats.
#[test]
fn spent_restart_budget_degrades_to_shed_load() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(4);
    let plan = Arc::new(
        FaultPlan::new()
            .panic_on_dispatch(0)
            .panic_on_dispatch(1)
            .panic_on_dispatch(2),
    );
    let server = ModelServer::start_with_faults(
        model,
        ServerConfig::default()
            .with_workers(1)
            .with_restart_budget(2)
            .with_restart_backoff_us(50),
        Some(plan),
    );

    for input in batch.iter().take(3) {
        let waited = server.submit(input).unwrap().wait();
        assert!(
            matches!(waited, Err(RequestError::WorkerFailed { .. })),
            "expected WorkerFailed, got {waited:?}"
        );
    }
    // The typed failure is sent before the restart is tallied; give the
    // worker a beat to publish the degraded flip.
    let patience = Instant::now() + Duration::from_secs(5);
    while !server.is_degraded() && Instant::now() < patience {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(server.is_degraded(), "third restart must spend the budget");

    // Admission now sheds, typed, without touching the queue.
    let shed = server.submit(&batch[3]);
    assert!(
        matches!(shed, Err(SubmitError::Degraded { restarts: 3 })),
        "expected Degraded, got {shed:?}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.worker_restarts, 3);
    assert_eq!(stats.degraded, 1);
    assert_accounting(&stats);
    assert!(stats.to_string().contains("DEGRADED"));
}

/// Degraded-first eviction: a degraded resident is the first victim
/// when the registry needs room, even when it is *more* recently used
/// than a healthy one.
#[test]
fn registry_evicts_degraded_models_before_lru() {
    quiet_injected_panics();
    let model = small_model();
    let bytes = model.to_bytes().len();
    // Budget fits two residents but not three; "a" degrades on its
    // first dispatch (budget 0), "b" and "c" never see a fault because
    // only dispatch 0 is scheduled.
    let registry = ModelRegistry::new(
        ServerConfig::default()
            .with_workers(1)
            .with_restart_budget(0)
            .with_restart_backoff_us(50),
    )
    .with_budget_bytes(bytes * 2 + bytes / 2)
    .with_fault_plan(Arc::new(FaultPlan::new().panic_on_dispatch(0)));
    registry.register_model("a", &model).unwrap();
    registry.register_model("b", &model).unwrap();
    registry.register_model("c", &model).unwrap();

    let input = &inputs(1)[0];
    {
        let a = registry.acquire("a").unwrap();
        let waited = a.submit(input).unwrap().wait();
        assert!(matches!(waited, Err(RequestError::WorkerFailed { .. })));
        let patience = Instant::now() + Duration::from_secs(5);
        while !a.is_degraded() && Instant::now() < patience {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(a.is_degraded());
    }
    {
        let b = registry.acquire("b").unwrap();
        b.submit(input).unwrap().wait().unwrap();
    }
    // Touch "a" again: pure LRU would now pick "b" as the victim.
    drop(registry.acquire("a").unwrap());

    drop(registry.acquire("c").unwrap());
    assert!(
        !registry.is_resident("a"),
        "degraded model survived eviction"
    );
    assert!(registry.is_resident("b"), "healthy LRU model was evicted");
    assert!(registry.is_resident("c"));
}

/// Byte-level frame corruption from a hostile peer: the server answers
/// typed MALFORMED (or drops the connection), never panics, and a
/// healthy concurrent client stays bit-exact throughout.
#[test]
fn corrupt_and_truncated_frames_leave_healthy_clients_unharmed() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(4);
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    let registry = ModelRegistry::new(ServerConfig::default().with_workers(1));
    registry.register_model("m", &model).unwrap();
    let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr();

    // Hostile peer 1: flips a magic byte inside the body (offset 4 is
    // the first body byte after the 4-byte length prefix).
    {
        let raw = TcpStream::connect(addr).unwrap();
        let mut faulty = FaultyStream::new(raw).corrupt_byte(4, 0xFF);
        write_frame(
            &mut faulty,
            &Request::infer("m", batch[0].clone()).to_frame(),
        )
        .unwrap();
        faulty.flush().unwrap();
        let mut stream = faulty.into_inner();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // A typed MALFORMED answer is the expected shape; the server
        // is also allowed to just drop the poisoned connection.
        if let Ok(Some(body)) = eie_serve::protocol::read_frame(&mut stream) {
            let response = Response::from_body(&body).unwrap();
            assert!(
                matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        ..
                    }
                ),
                "corrupt frame got {response:?}"
            );
        }
    }

    // Hostile peer 2: the frame stops mid-body (silent truncation),
    // then the stream closes. The handler sees EOF mid-frame and must
    // shrug it off.
    {
        let raw = TcpStream::connect(addr).unwrap();
        let mut faulty = FaultyStream::new(raw).truncate_after(10);
        write_frame(
            &mut faulty,
            &Request::infer("m", batch[1].clone()).to_frame(),
        )
        .unwrap();
        faulty.flush().unwrap();
    }

    // The healthy client, interleaved with the hostiles: bit-exact.
    let mut client = Client::connect(addr).unwrap();
    for (i, input) in batch.iter().enumerate() {
        match client.infer("m", input).unwrap() {
            Response::Output(output) => {
                let expect: Vec<i16> = golden.outputs(i).iter().map(|q| q.raw()).collect();
                assert_eq!(output.outputs, expect, "healthy client diverged at {i}");
            }
            other => panic!("healthy client refused: {other:?}"),
        }
    }

    let stats = server.stop();
    assert!(stats.errors.is_empty(), "hostile bytes crashed a handler");
    assert_accounting(&stats);
}

/// An injected connection-handler panic is contained (other connections
/// keep serving) and surfaced: `stop()` reports it as a typed
/// [`ServerError::HandlerPanicked`] instead of panicking the joiner —
/// the regression test for the old `NetServer::stop` unwind.
#[test]
fn handler_panic_is_contained_and_surfaced_in_stats() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(2);
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    let registry = ModelRegistry::new(ServerConfig::default().with_workers(1))
        .with_fault_plan(Arc::new(FaultPlan::new().panic_on_connection(0)));
    registry.register_model("m", &model).unwrap();
    let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr();

    // Connection 0: its handler panics on accept; the client sees a
    // dead stream, not a hung one.
    {
        let mut victim = Client::connect(addr).unwrap();
        assert!(victim.infer("m", &batch[0]).is_err());
    }

    // Connection 1: unaffected, bit-exact.
    let mut healthy = Client::connect(addr).unwrap();
    match healthy.infer("m", &batch[1]).unwrap() {
        Response::Output(output) => {
            let expect: Vec<i16> = golden.outputs(1).iter().map(|q| q.raw()).collect();
            assert_eq!(output.outputs, expect);
        }
        other => panic!("healthy connection refused: {other:?}"),
    }
    drop(healthy);

    let stats = server.stop();
    assert!(
        stats
            .errors
            .iter()
            .any(|e| matches!(e, ServerError::HandlerPanicked { connections: 1 })),
        "handler panic not surfaced: {:?}",
        stats.errors
    );
    assert_accounting(&stats);
}

/// Slow-client eviction: a client that pipelines requests but never
/// reads its responses eventually wedges the server's write path; after
/// the write grace the connection is evicted (counted in stats), and
/// the node keeps serving healthy clients.
#[test]
fn slow_client_is_evicted_after_the_write_grace() {
    quiet_injected_panics();
    // Wide output layer: each response is ~4 KiB, so a non-reading
    // client wedges the socket long before the request stream ends.
    let w = random_sparse(2048, 16, 0.2, 99);
    let model = CompiledModel::compile(EieConfig::default().with_num_pes(4), &[&w]);
    let input = sample_activations(16, 0.5, false, 1);
    let registry = ModelRegistry::new(ServerConfig::default().with_workers(1));
    registry.register_model("wide", &model).unwrap();
    let server = NetServer::bind_with_policy(
        "127.0.0.1:0",
        registry,
        eie_serve::NetPolicy::default().with_write_grace(Duration::from_millis(100)),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let frame = Request::infer("wide", input.clone()).to_frame();
    // Pipeline requests and never read a response. Once the server's
    // write path wedges, the grace expires and the eviction resets this
    // stream — surfacing here as a failed write.
    let mut evicted = false;
    for i in 0..100_000 {
        if write_frame(&mut slow, &frame).is_err() {
            evicted = true;
            break;
        }
        if i % 512 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    assert!(evicted, "server never closed the wedged connection");
    drop(slow);

    // The node is still healthy for a well-behaved client.
    let mut healthy = Client::connect(addr).unwrap();
    assert!(matches!(
        healthy.infer("wide", &input).unwrap(),
        Response::Output(_)
    ));
    drop(healthy);

    let stats = server.stop();
    assert!(
        stats.slow_client_evictions >= 1,
        "slow client was not evicted: {stats:?}"
    );
    assert_accounting(&stats);
}

/// End-to-end resilience: the retrying [`Client`] absorbs injected
/// worker panics transparently — every request eventually succeeds
/// bit-exact, and the call stats show what was absorbed.
#[test]
fn retrying_client_absorbs_worker_panics_bit_exact() {
    quiet_injected_panics();
    let model = small_model();
    let batch = inputs(8);
    let golden = model.infer(BackendKind::Functional).submit(&batch);
    let registry = ModelRegistry::new(
        ServerConfig::default()
            .with_workers(1)
            .with_restart_backoff_us(50),
    )
    .with_fault_plan(Arc::new(
        FaultPlan::new().panic_on_dispatch(1).panic_on_dispatch(3),
    ));
    registry.register_model("m", &model).unwrap();
    let server = NetServer::bind("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr)
        .unwrap()
        .with_retry_policy(eie_serve::RetryPolicy::default().with_max_attempts(4));
    let mut absorbed = 0u32;
    for (i, input) in batch.iter().enumerate() {
        let (response, stats) = client.infer_retrying("m", input, None).unwrap();
        absorbed += stats.worker_failed;
        match response {
            Response::Output(output) => {
                let expect: Vec<i16> = golden.outputs(i).iter().map(|q| q.raw()).collect();
                assert_eq!(output.outputs, expect, "retried answer diverged at {i}");
            }
            other => panic!("request {i} not recovered: {other:?}"),
        }
    }
    assert!(absorbed >= 2, "expected ≥2 absorbed worker failures");

    let stats = server.stop();
    assert!(stats.worker_restarts >= 2);
    assert!(stats.retries_upstream >= 2, "attempt numbers not counted");
    assert_accounting(&stats);
}
