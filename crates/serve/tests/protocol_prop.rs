//! Property tests for the wire-protocol codec: encode → decode is the
//! identity for arbitrary requests and responses, and every malformed
//! byte stream — truncation at *every* byte boundary, oversized length
//! prefixes, bad magic, unknown kinds, corrupt payload fields — maps to
//! a typed [`FrameError`] without ever panicking. The codec faces
//! untrusted network bytes, so totality is the property, not a nicety.

use eie_serve::protocol::{
    read_frame, ErrorCode, FrameError, OutputReport, Request, Response, StatsReport, FRAME_MAGIC,
    MAX_BODY, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Model names over a charset that exercises multi-byte UTF-8 (the
/// name length field counts bytes, not chars).
fn arb_model_name() -> impl Strategy<Value = String> {
    const CHARSET: &[char] = &[
        'a', 'z', 'A', '0', '9', '_', '-', '.', '/', ' ', 'µ', 'λ', '模',
    ];
    prop::collection::vec(0usize..CHARSET.len(), 0..=12)
        .prop_map(|picks| picks.into_iter().map(|i| CHARSET[i]).collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    // Half the INFER frames carry no deadline/attempt (and therefore
    // encode as version 1 on the wire), half exercise the v2 fields.
    let deadline = prop_oneof![2 => Just(0u64), 1 => 1u64..=30_000_000];
    let attempt = prop_oneof![2 => Just(0u8), 1 => 1u8..=7];
    prop_oneof![
        3 => (
            arb_model_name(),
            prop::collection::vec(-8.0f32..8.0, 0..=48),
            deadline,
            attempt,
        )
            .prop_map(|(model, input, deadline_us, attempt)| Request::Infer {
                model,
                input,
                deadline_us,
                attempt,
            }),
        1 => Just(Request::Stats),
        1 => Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let output = (
        prop::collection::vec(any::<i16>(), 0..=48),
        0.0f64..1e6,
        0.0f64..1e6,
        1u32..=64,
        0u32..8,
    )
        .prop_map(|(outputs, queue_us, latency_us, coalesced, worker)| {
            Response::Output(OutputReport {
                outputs,
                queue_us,
                latency_us,
                coalesced,
                worker,
            })
        });
    let error = (
        prop_oneof![
            Just(ErrorCode::UnknownModel),
            Just(ErrorCode::BadInput),
            Just(ErrorCode::ShuttingDown),
            Just(ErrorCode::LoadFailed),
            Just(ErrorCode::Malformed),
        ],
        arb_model_name(),
    )
        .prop_map(|(code, message)| Response::Error { code, message });
    let stats = (
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9),
    )
        .prop_map(
            |(requests, batches, max_coalesced, queue_depth, (a, b, c), (p50, p95, p99, fps))| {
                Response::Stats(StatsReport {
                    requests,
                    batches,
                    max_coalesced,
                    queue_depth,
                    models_registered: (requests % 7) as u32,
                    models_resident: (batches % 5) as u32,
                    resident_bytes: a,
                    budget_bytes: b,
                    loads: c,
                    evictions: c / 2,
                    p50_us: p50,
                    p95_us: p95,
                    p99_us: p99,
                    mean_queue_us: p50 / 2.0,
                    frames_per_second: fps,
                    accepted: requests.wrapping_add(c),
                    shed: c % 11,
                    expired: c % 13,
                    failed: c % 17,
                    retries_upstream: c % 19,
                    worker_restarts: c % 23,
                    degraded: (requests % 2) as u32,
                    slow_client_evictions: c % 29,
                })
            },
        );
    prop_oneof![
        3 => output,
        1 => (1u32..=4096).prop_map(|depth| Response::Overloaded { depth }),
        2 => error,
        2 => stats,
        1 => Just(Response::Ok),
    ]
}

fn strip_prefix(wire: &[u8]) -> &[u8] {
    let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
    assert_eq!(len, wire.len() - 4, "length prefix disagrees with body");
    &wire[4..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for every request shape.
    #[test]
    fn request_roundtrips(request in arb_request()) {
        let wire = request.to_frame();
        prop_assert_eq!(Request::from_body(strip_prefix(&wire)).unwrap(), request);
    }

    /// encode → decode is the identity for every response shape.
    #[test]
    fn response_roundtrips(response in arb_response()) {
        let wire = response.to_frame();
        prop_assert_eq!(Response::from_body(strip_prefix(&wire)).unwrap(), response);
    }

    /// Truncating a valid request body at ANY byte boundary yields a
    /// typed error, never a panic and never a silent success: every
    /// field's length is declared before its content, so a strict
    /// prefix always runs out of declared bytes.
    #[test]
    fn every_truncation_of_a_request_is_a_typed_error(request in arb_request()) {
        let body = strip_prefix(&request.to_frame()).to_vec();
        for cut in 0..body.len() {
            match Request::from_body(&body[..cut]) {
                Err(
                    FrameError::Truncated { .. }
                    | FrameError::BadMagic
                    | FrameError::BadPayload { .. },
                ) => {}
                Ok(decoded) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "prefix of {cut}/{} bytes decoded as {decoded:?}", body.len()
                ))),
                Err(other) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "prefix of {cut}/{} bytes gave unexpected error {other:?}", body.len()
                ))),
            }
        }
        // And the framed stream cut mid-wire is Truncated at the stream
        // level (mid-prefix or mid-body), not a hang or a panic.
        let wire = request.to_frame();
        for cut in 1..wire.len() {
            let mut stream: &[u8] = &wire[..cut];
            prop_assert!(
                matches!(read_frame(&mut stream), Err(FrameError::Truncated { .. })),
                "wire cut at {cut}/{} was not Truncated", wire.len()
            );
        }
    }

    /// Same totality property for response bodies — except the STATS
    /// append-only tail, where a cut at/past the mandatory region is
    /// *by design* a valid shorter frame (what an older server would
    /// have written); such a cut must decode cleanly, never panic.
    #[test]
    fn every_truncation_of_a_response_is_a_typed_error(response in arb_response()) {
        let body = strip_prefix(&response.to_frame()).to_vec();
        // The fault-tolerance tail appended to STATS in protocol v2:
        // six u64 counters, a u32 flag, a final u64.
        const STATS_TAIL: usize = 6 * 8 + 4 + 8;
        let mandatory = matches!(response, Response::Stats(_))
            .then(|| body.len() - STATS_TAIL);
        for cut in 0..body.len() {
            match Response::from_body(&body[..cut]) {
                Err(
                    FrameError::Truncated { .. }
                    | FrameError::BadMagic
                    | FrameError::BadPayload { .. },
                ) => {}
                Ok(_) if mandatory.is_some_and(|m| cut >= m) => {
                    // An old-server STATS frame: tail fields read as 0.
                }
                Ok(decoded) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "prefix of {cut}/{} bytes decoded as {decoded:?}", body.len()
                ))),
                Err(other) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "prefix of {cut}/{} bytes gave unexpected error {other:?}", body.len()
                ))),
            }
        }
    }

    /// Single-byte corruption in the 6-byte header maps to the right
    /// typed error class.
    #[test]
    fn header_corruption_is_classified(request in arb_request(), flip in 0usize..6, xor in 1u8..=255) {
        let mut body = strip_prefix(&request.to_frame()).to_vec();
        body[flip] ^= xor;
        let decoded = Request::from_body(&body);
        match flip {
            0..=3 => prop_assert!(
                matches!(decoded, Err(FrameError::BadMagic)),
                "corrupt magic byte {flip} gave {decoded:?}"
            ),
            // A flipped version byte usually lands outside the
            // supported 1..=2 range (UnsupportedVersion), but may land
            // on the *other* supported version — the payload then
            // parses under the wrong field layout, which must fail
            // typed or decode as something else; it can never decode
            // back to the original. Same property for the kind byte
            // (Stats ↔ Shutdown share a payload shape).
            _ => prop_assert!(
                !matches!(&decoded, Ok(d) if *d == request),
                "corrupt header byte {flip} decoded back to the original {decoded:?}"
            ),
        }
    }
}

/// The deterministic malformed-input sweep: each named hostile shape
/// maps to its documented error variant.
#[test]
fn malformed_sweep_hits_every_error_variant() {
    let mut valid = Vec::from(FRAME_MAGIC);
    valid.push(PROTOCOL_VERSION);

    // Bad magic.
    let body = b"NOPE\x01\x02".to_vec();
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::BadMagic)
    ));

    // Unsupported version.
    let mut body = Vec::from(FRAME_MAGIC);
    body.push(PROTOCOL_VERSION + 1);
    body.push(0x02);
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::UnsupportedVersion { found, supported })
            if found == PROTOCOL_VERSION + 1 && supported == PROTOCOL_VERSION
    ));

    // Unknown request kind — including response kinds sent as requests.
    for kind in [0x00u8, 0x42, 0x7F, 0x81, 0xFF] {
        let mut body = valid.clone();
        body.push(kind);
        assert!(
            matches!(Request::from_body(&body), Err(FrameError::UnknownKind(k)) if k == kind),
            "request kind {kind:#04x} was not rejected as unknown"
        );
    }
    // ...and request kinds sent as responses.
    for kind in [0x01u8, 0x02, 0x03, 0x80] {
        let mut body = valid.clone();
        body.push(kind);
        assert!(
            matches!(Response::from_body(&body), Err(FrameError::UnknownKind(k)) if k == kind),
            "response kind {kind:#04x} was not rejected as unknown"
        );
    }

    // Oversized length prefix: rejected before any allocation.
    let mut wire: &[u8] = &((MAX_BODY as u32) + 1).to_le_bytes();
    assert!(matches!(
        read_frame(&mut wire),
        Err(FrameError::Oversized { len, max }) if len == MAX_BODY + 1 && max == MAX_BODY
    ));
    // The bound itself is accepted at the framing layer (would read the
    // body next) — only the excess is hostile.
    let at_bound = (MAX_BODY as u32).to_le_bytes();
    let mut wire: &[u8] = &at_bound;
    assert!(matches!(
        read_frame(&mut wire),
        Err(FrameError::Truncated { .. })
    ));

    // Trailing bytes after a complete payload.
    let mut body = strip_prefix(&Request::Stats.to_frame()).to_vec();
    body.push(0);
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::BadPayload {
            field: "trailing bytes"
        })
    ));

    // Invalid UTF-8 in a model name.
    let mut body = valid.clone();
    body.push(0x01); // INFER
    body.extend_from_slice(&2u16.to_le_bytes());
    body.extend_from_slice(&[0xFF, 0xFE]);
    body.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::BadPayload {
            field: "model name"
        })
    ));

    // Non-finite input activation. Hand-built at version 1 — the v1
    // INFER layout has no deadline/attempt fields, and the reader must
    // still speak it.
    let mut v1 = Vec::from(FRAME_MAGIC);
    v1.push(MIN_PROTOCOL_VERSION);
    let mut body = v1.clone();
    body.push(0x01);
    body.extend_from_slice(&1u16.to_le_bytes());
    body.push(b'm');
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&f32::NAN.to_le_bytes());
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::BadPayload {
            field: "input activation"
        })
    ));

    // Same hostile activation under the v2 layout (deadline + attempt
    // precede the input count).
    let mut body = valid.clone();
    body.push(0x01);
    body.extend_from_slice(&1u16.to_le_bytes());
    body.push(b'm');
    body.extend_from_slice(&0u64.to_le_bytes()); // deadline_us
    body.push(0); // attempt
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&f32::NAN.to_le_bytes());
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::BadPayload {
            field: "input activation"
        })
    ));

    // Unknown error code in a response.
    let mut body = valid.clone();
    body.push(0x84); // ERROR
    body.push(200);
    body.extend_from_slice(&0u16.to_le_bytes());
    assert!(matches!(
        Response::from_body(&body),
        Err(FrameError::BadPayload {
            field: "error code"
        })
    ));

    // A declared input count far past the body: typed truncation, and
    // the capped pre-allocation means no unbounded Vec reservation.
    let mut body = v1;
    body.push(0x01);
    body.extend_from_slice(&0u16.to_le_bytes());
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Request::from_body(&body),
        Err(FrameError::Truncated {
            section: "input",
            ..
        })
    ));
}
