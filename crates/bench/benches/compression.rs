//! Criterion benchmarks of the Deep Compression pipeline (Table III's
//! preprocessing): pruning, k-means codebook fitting, and interleaved CSC
//! encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eie_core::compress::prune::prune_to_density;
use eie_core::compress::{compress, encode_with_codebook, Codebook, CompressConfig};
use eie_core::prelude::*;

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune");
    let dense = Matrix::from_fn(512, 512, |r, cidx| {
        (((r * 512 + cidx) as f32) * 0.61803).sin()
    });
    group.throughput(Throughput::Elements((512 * 512) as u64));
    group.bench_function("magnitude_to_9pct", |b| {
        b.iter(|| prune_to_density(&dense, 0.09))
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook");
    let weights: Vec<f32> = (0..65_536)
        .map(|i| ((i as f32) * 0.37).sin() * 1.5)
        .filter(|&w| w != 0.0)
        .collect();
    group.throughput(Throughput::Elements(weights.len() as u64));
    group.bench_function("kmeans_fit_64k", |b| b.iter(|| Codebook::fit(&weights, 30)));
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    let sparse = random_sparse(2048, 2048, 0.09, 9);
    let cb = Codebook::fit(sparse.values(), 30);
    group.throughput(Throughput::Elements(sparse.nnz() as u64));
    for pes in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("interleaved_csc", pes), &pes, |b, &n| {
            b.iter(|| encode_with_codebook(&sparse, cb.clone(), CompressConfig::with_pes(n)))
        });
    }
    group.bench_function("full_pipeline_64pe", |b| {
        b.iter(|| compress(&sparse, CompressConfig::with_pes(64)))
    });
    group.finish();
}

criterion_group!(benches, bench_prune, bench_kmeans, bench_encode);
criterion_main!(benches);
