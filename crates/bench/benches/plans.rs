//! Criterion micro-benchmarks of the execution-plan hot path: plan
//! build cost (paid once per layer) versus the steady-state win of the
//! plan kernel over the streaming kernel, single-item and fused-batch.
//!
//! `kernel_sweep` is the recorded experiment (BENCH_kernel.json); these
//! benches are the developer-loop view of the same comparison, gated in
//! CI with `cargo bench --no-run` so the plan path can't rot
//! unbenchmarked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eie_core::prelude::*;

fn setup() -> (EncodedLayer, Vec<Q8p8>, Vec<Vec<Q8p8>>) {
    // A 1024×1024 layer at AlexNet-FC7 density: large enough that the
    // kernels stream past the caches, small enough for stable benches.
    let sparse = random_sparse(1024, 1024, 0.09, 42);
    let enc = compress(&sparse, CompressConfig::with_pes(8));
    let acts = Q8p8::from_f32_slice(&eie_core::nn::zoo::sample_activations(1024, 0.35, false, 7));
    let batch: Vec<Vec<Q8p8>> = (0..16u64)
        .map(|i| {
            Q8p8::from_f32_slice(&eie_core::nn::zoo::sample_activations(
                1024,
                0.35,
                false,
                8 + i,
            ))
        })
        .collect();
    (enc, acts, batch)
}

fn bench_plan_build(c: &mut Criterion) {
    let (enc, _, _) = setup();
    let mut group = c.benchmark_group("plan_build");
    group.throughput(Throughput::Elements(enc.total_entries() as u64));
    group.bench_function(BenchmarkId::new("layer_plan_build", "1024x1024@9%"), |b| {
        b.iter(|| LayerPlan::build(&enc))
    });
    group.finish();
}

fn bench_plan_vs_streaming(c: &mut Criterion) {
    let (enc, acts, batch) = setup();
    let mut group = c.benchmark_group("plan_vs_streaming");
    for threads in [1usize, 4] {
        let plan = NativeCpu::with_threads(threads);
        let stream = plan.clone().without_plans();
        // Warm outside the measurement: plan built, pool spawned,
        // scratch at its high-water mark.
        let _ = plan.run_layer(&enc, &acts, false);
        let _ = stream.run_layer(&enc, &acts, false);

        group.bench_function(BenchmarkId::new("single_streaming", threads), |b| {
            b.iter(|| stream.run_layer(&enc, &acts, false))
        });
        group.bench_function(BenchmarkId::new("single_plan", threads), |b| {
            b.iter(|| plan.run_layer(&enc, &acts, false))
        });
        group.bench_function(BenchmarkId::new("batch16_streaming", threads), |b| {
            b.iter(|| stream.run_layer_batch(&enc, &batch, false))
        });
        group.bench_function(BenchmarkId::new("batch16_plan", threads), |b| {
            b.iter(|| plan.run_layer_batch(&enc, &batch, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_build, bench_plan_vs_streaming);
criterion_main!(benches);
