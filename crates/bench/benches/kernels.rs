//! Criterion micro-benchmarks of the M×V kernels underlying Table IV:
//! dense GEMV, sparse CSRMV, the encoded-format reference, and the
//! bit-exact fixed-point functional model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eie_core::prelude::*;

fn bench_mv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("mv_kernels");
    // A 512×512 layer at AlexNet-FC7 density: small enough for stable
    // micro-benchmarks, large enough to stream past the L1.
    let (rows, cols, density) = (512usize, 512usize, 0.09);
    let sparse = random_sparse(rows, cols, density, 42);
    let dense = sparse.to_dense();
    let enc = compress(&sparse, CompressConfig::with_pes(8));
    let acts = eie_core::nn::zoo::sample_activations(cols, 0.35, false, 7);
    let acts_q: Vec<Q8p8> = acts.iter().map(|&a| Q8p8::from_f32(a)).collect();

    group.throughput(Throughput::Elements((rows * cols) as u64));
    group.bench_function(BenchmarkId::new("dense_gemv", "512x512"), |b| {
        b.iter(|| dense.gemv(&acts))
    });
    group.throughput(Throughput::Elements(sparse.nnz() as u64));
    group.bench_function(BenchmarkId::new("csr_spmv", "512x512@9%"), |b| {
        b.iter(|| sparse.spmv(&acts))
    });
    group.bench_function(BenchmarkId::new("encoded_spmv_f32", "512x512@9%"), |b| {
        b.iter(|| enc.spmv_f32(&acts))
    });
    group.bench_function(BenchmarkId::new("functional_fixed", "512x512@9%"), |b| {
        b.iter(|| functional::execute(&enc, &acts_q, false))
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_kernels");
    let sparse = random_sparse(256, 256, 0.09, 1);
    let dense = sparse.to_dense();
    let input: Vec<f32> = (0..256 * 64).map(|i| (i % 7) as f32 * 0.1).collect();
    for batch in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("gemm", batch), &batch, |b, &n| {
            b.iter(|| dense.gemm(&input[..256 * n], n))
        });
        group.bench_with_input(BenchmarkId::new("spmm", batch), &batch, |b, &n| {
            b.iter(|| sparse.spmm(&input[..256 * n], n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mv_kernels, bench_batched);
criterion_main!(benches);
