//! Criterion micro-benchmarks of the batch-lane plan kernel: the
//! simd-vs-scalar A/B on the warm fused path, and the lane-tile size
//! sweep that sanity-checks `LaneTile::select`'s per-layer choice.
//!
//! `kernel_sweep` is the recorded experiment (BENCH_kernel.json, schema
//! v2); these benches are the developer-loop view. Build with
//! `--features simd` to put the AVX2 path under the `lane` IDs — the
//! `isa` group label records which path actually ran.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eie_core::prelude::*;
use std::sync::Arc;

fn setup() -> (EncodedLayer, Vec<Vec<Q8p8>>) {
    // Same shape as benches/plans.rs so the two files read side by
    // side: 1024×1024 at AlexNet-FC7 density, 8 PEs, batch 16.
    let sparse = random_sparse(1024, 1024, 0.09, 42);
    let enc = compress(&sparse, CompressConfig::with_pes(8));
    let batch: Vec<Vec<Q8p8>> = (0..16u64)
        .map(|i| {
            Q8p8::from_f32_slice(&eie_core::nn::zoo::sample_activations(
                1024,
                0.35,
                false,
                8 + i,
            ))
        })
        .collect();
    (enc, batch)
}

fn bench_lane_vs_scalar(c: &mut Criterion) {
    let (enc, batch) = setup();
    let mut group = c.benchmark_group(format!("lane_vs_scalar/{}", lane_isa()));
    group.throughput(Throughput::Elements(
        (enc.total_entries() * batch.len()) as u64,
    ));
    for threads in [1usize, 4] {
        let lane = NativeCpu::with_threads(threads);
        let scalar = lane.clone().without_lanes();
        // Warm outside the measurement: plans built, pools spawned,
        // lane scratch at its high-water mark.
        let _ = lane.run_layer_batch(&enc, &batch, false);
        let _ = scalar.run_layer_batch(&enc, &batch, false);

        group.bench_function(BenchmarkId::new("batch16_scalar", threads), |b| {
            b.iter(|| scalar.run_layer_batch(&enc, &batch, false))
        });
        group.bench_function(BenchmarkId::new("batch16_lane", threads), |b| {
            b.iter(|| lane.run_layer_batch(&enc, &batch, false))
        });
    }
    group.finish();
}

fn bench_tile_sizes(c: &mut Criterion) {
    let (enc, batch) = setup();
    let chosen = LayerPlan::build(&enc).lane_tile().cols();
    let mut group = c.benchmark_group("lane_tile_cols");
    let backend = NativeCpu::with_threads(1);
    let _ = backend.run_layer_batch(&enc, &batch, false);
    // Candidate tile widths around the selector's pick, plus the
    // no-tiling extreme (every column in one tile).
    let cols = enc.cols();
    for tile in [16usize, 64, 256, chosen, cols] {
        let plan = Arc::new(LayerPlan::build(&enc).with_lane_tile(LaneTile::fixed(tile)));
        let label = if tile == chosen {
            format!("{tile}(selected)")
        } else {
            tile.to_string()
        };
        group.bench_function(BenchmarkId::new("batch16", label), |b| {
            b.iter(|| {
                backend.run_layer_batch_planned(
                    PlannedLayer {
                        layer: &enc,
                        plan: Some(&plan),
                    },
                    &batch,
                    false,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lane_vs_scalar, bench_tile_sizes);
criterion_main!(benches);
