//! Criterion benchmarks of the `.eie` model-artifact path: what
//! build-once/load-many costs at serving-worker startup.
//!
//! * `to_bytes` / `from_bytes` — serialization and validated
//!   deserialization of the container in memory (the load path's CPU
//!   cost: decode + checksum + structural validation),
//! * `save` / `load` — the same through the filesystem,
//! * `compile` — the in-process pipeline the artifact replaces, for
//!   scale: loading must beat recompressing or the artifact story is
//!   pointless.
//!
//! Throughput is reported in container bytes, so regressions in the
//! load path show up as MB/s drops in the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eie_core::prelude::*;

fn bench_artifact(c: &mut Criterion) {
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 8); // 512×512 @ 9%
    let config = EieConfig::default().with_num_pes(16);
    let model = CompiledModel::compile_layer(config, &layer.weights).with_name("bench artifact");
    let bytes = model.to_bytes();

    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    group.bench_function("to_bytes", |b| b.iter(|| model.to_bytes()));

    group.bench_function("from_bytes", |b| {
        b.iter(|| CompiledModel::from_bytes(&bytes).expect("valid container"))
    });

    let path = std::env::temp_dir().join("eie_bench_artifact.eie");
    group.bench_function("save", |b| b.iter(|| model.save(&path).expect("save")));

    model.save(&path).expect("save for load bench");
    group.bench_function("load", |b| {
        b.iter(|| CompiledModel::load(&path).expect("load"))
    });
    let _ = std::fs::remove_file(&path);

    group.bench_function("compile", |b| {
        b.iter(|| CompiledModel::compile_layer(config, &layer.weights))
    });

    group.finish();
}

criterion_group!(benches, bench_artifact);
criterion_main!(benches);
