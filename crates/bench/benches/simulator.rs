//! Criterion benchmarks of the cycle-accurate simulator itself: how many
//! simulated MACs per wall-clock second the model sustains, across PE
//! counts and FIFO depths (the quantity that bounds every sweep in
//! Figs. 8/11/13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eie_core::prelude::*;

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 8); // 512×512
    let acts = layer.sample_activations(DEFAULT_SEED);
    for pes in [1usize, 16, 64] {
        let enc = compress(&layer.weights, CompressConfig::with_pes(pes));
        let macs = functional::workload_macs(
            &enc,
            &acts.iter().map(|&a| Q8p8::from_f32(a)).collect::<Vec<_>>(),
        );
        group.throughput(Throughput::Elements(macs));
        group.bench_with_input(BenchmarkId::new("alex7_512", pes), &pes, |b, _| {
            b.iter(|| simulate(&enc, &acts, &SimConfig::default()))
        });
    }
    group.finish();
}

fn bench_functional_vs_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fidelity_cost");
    group.sample_size(10);
    let layer = Benchmark::Vgg7.generate_scaled(DEFAULT_SEED, 8);
    let enc = compress(&layer.weights, CompressConfig::with_pes(16));
    let acts = layer.sample_activations(DEFAULT_SEED);
    let acts_q: Vec<Q8p8> = acts.iter().map(|&a| Q8p8::from_f32(a)).collect();
    group.bench_function("functional", |b| {
        b.iter(|| functional::execute(&enc, &acts_q, false))
    });
    group.bench_function("cycle_accurate", |b| {
        b.iter(|| simulate(&enc, &acts, &SimConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_functional_vs_cycle);
criterion_main!(benches);
