//! Criterion benchmarks of the execution backends: what batched serving
//! costs on each path, against the dense GEMV baseline.
//!
//! The interesting comparisons on a Table III layer (Alex-7 at 1/8
//! scale, batch 16):
//!
//! * `functional_loop` — the golden model looped per item (the naive
//!   serving path the NativeCpu backend replaces),
//! * `native_1thread` — the fused batch kernel, single worker: the
//!   algorithmic win of streaming the compressed entries once per batch,
//! * `native_multithread` — the same kernel with one worker per core:
//!   the thread-scaling win on top,
//! * `dense_gemv` — the dense f32 baseline looped per frame, and
//!   `dense_gemm` — its batched form (what MKL batching buys a CPU).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eie_core::baselines::MvWorkload;
use eie_core::prelude::*;

const BATCH: usize = 16;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends_batch16");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));

    let layer = Benchmark::Alex7.generate_scaled(DEFAULT_SEED, 8); // 512×512 @ 9%
    let enc = compress(&layer.weights, CompressConfig::with_pes(16));
    let batch: Vec<Vec<Q8p8>> = layer
        .sample_activation_batch(DEFAULT_SEED, BATCH)
        .iter()
        .map(|item| Q8p8::from_f32_slice(item))
        .collect();

    let functional = Functional::new();
    group.bench_function("functional_loop", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|acts| functional.run_layer(&enc, acts, false))
                .collect::<Vec<_>>()
        })
    });

    let single = NativeCpu::with_threads(1);
    group.bench_function("native_1thread", |b| {
        b.iter(|| single.run_layer_batch(&enc, &batch, false))
    });

    let multi = NativeCpu::new();
    group.bench_function(format!("native_multithread_{}", multi.threads()), |b| {
        b.iter(|| multi.run_layer_batch(&enc, &batch, false))
    });

    let workload = MvWorkload::from_sparse(layer.weights.clone(), DEFAULT_SEED ^ 77);
    group.bench_function("dense_gemv_loop", |b| {
        b.iter(|| {
            (0..BATCH)
                .map(|_| workload.run_dense(1))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("dense_gemm_batched", |b| {
        b.iter(|| workload.run_dense(BATCH))
    });

    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
