//! Figure 12: real work / total work vs. number of PEs.
//!
//! Padding zeros appear when two non-zeros in a PE's column slice are
//! more than 15 rows apart (4-bit relative index). More PEs shrink each
//! PE's slice gaps, so padding — wasted work — decreases with PE count.

use eie_bench::*;

const PES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

fn main() {
    let mut headers: Vec<String> = vec!["layer".into()];
    headers.extend(PES.iter().map(|p| format!("{p}PE")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Figure 12: real work / total work (padding overhead) vs PE count",
        &header_refs,
    );

    for benchmark in Benchmark::ALL {
        let layer = layer_at_scale(benchmark);
        let mut row = vec![benchmark.name().to_string()];
        for pes in PES {
            let encoded = eie_core::compress::compress(
                &layer.weights,
                eie_core::compress::CompressConfig::with_pes(pes),
            );
            let ratio = encoded.stats().real_work_ratio();
            row.push(format!("{:.1}%", ratio * 100.0));
        }
        table.row(row);
        eprintln!("[{}] swept", benchmark.name());
    }

    let mut out = table.render();
    out.push_str(
        "\nPaper: padding decreases as PEs increase (gaps within each PE's row\n\
         subset shrink below the 4-bit limit), improving compute efficiency.\n",
    );
    emit("fig12", &out);
}
