//! Table I: energy table for the 45 nm CMOS process.
//!
//! Reproduced from the constants in `eie-energy::tech` together with the
//! derived relative-cost column and the headline ratios the paper builds
//! its argument on (DRAM = 128× SRAM; SRAM = 50× an int add).

use eie_bench::*;
use eie_core::energy::tech;

fn main() {
    let mut table = TextTable::new(
        "Table I: energy for basic operations, 45 nm CMOS",
        &["operation", "energy (pJ)", "relative cost"],
    );
    for row in &tech::TABLE_I {
        table.row(vec![
            row.operation.into(),
            f(row.energy_pj, 1),
            f(tech::relative_cost(row), 0),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nDRAM/SRAM energy ratio: {:.0}x (the paper's '128x more than SRAM')\n\
         Running a 1G-connection network from DRAM at 20 Hz: {:.1} W (paper: 12.8 W)\n",
        tech::dram_sram_ratio(),
        20.0 * 1e9 * tech::DRAM_ACCESS_32B_PJ * 1e-12,
    ));
    emit("table1", &out);
}
