//! Figure 13: load-balance efficiency vs. number of PEs (FIFO depth 8).
//!
//! More PEs worsen the per-column balance (fewer entries per PE per
//! column → more variance), while padding decreases (Fig. 12); the two
//! effects roughly cancel for most benchmarks, keeping overall efficiency
//! flat — the observation that justifies scaling EIE to 256 PEs.

use eie_bench::*;

const PES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

fn main() {
    let mut headers: Vec<String> = vec!["layer".into()];
    headers.extend(PES.iter().map(|p| format!("{p}PE")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Figure 13: load balance vs PE count (FIFO depth 8)",
        &header_refs,
    );

    for benchmark in Benchmark::ALL {
        let layer = layer_at_scale(benchmark);
        let acts = layer.sample_activations(DEFAULT_SEED);
        let mut row = vec![benchmark.name().to_string()];
        for pes in PES {
            let config = EieConfig::default().with_num_pes(pes);
            let encoded = config.pipeline().compile_matrix(&layer.weights);
            let run = simulate(&encoded, &acts, &config.sim_config());
            row.push(format!(
                "{:.1}%",
                run.stats.load_balance_efficiency() * 100.0
            ));
        }
        table.row(row);
        eprintln!("[{}] swept", benchmark.name());
    }

    let mut out = table.render();
    out.push_str(
        "\nPaper: more PEs lead to worse load balance but less padding work;\n\
         measured with FIFO depth 8.\n",
    );
    emit("fig13", &out);
}
