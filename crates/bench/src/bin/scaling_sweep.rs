//! Scaling sweep: sharded + pipelined execution vs the single-pool
//! planned baseline.
//!
//! Measures multi-layer batch throughput on the AlexNet classifier head
//! (FC6 → FC7 → FC8, Table III shapes at `EIE_SCALE`) across four axes:
//!
//! * **depth** — stack prefixes FC6, FC6–7, FC6–8 (1, 2, 3 layers),
//! * **batch** — frames per submission,
//! * **shards** — row-shard count inside each `NativeCpu` dispatch
//!   ([`Topology::with_shards`] — contiguous PE ranges, each with its
//!   own worker sub-group),
//! * **threads** — 1 plus every available core.
//!
//! Three executors are timed per cell:
//!
//! * **single-pool** — [`run_stack_planned`] on a plain `NativeCpu`:
//!   one worker pool walks every layer over the whole batch (the PR 7
//!   baseline),
//! * **sharded** — the same loop on `NativeCpu::with_shards(S)`, so
//!   each dispatch splits rows by shard before subdividing by thread,
//! * **pipelined** — [`PipelinedStack`] with per-layer stages
//!   (`Topology::with_stages(0)`): each layer owns a stage engine,
//!   `LANE_WIDTH`-sized chunks stream through bounded queues, and
//!   interior layers take the lean chunk path (no per-item latency
//!   bookkeeping or `BackendRun` assembly).
//!
//! Every executor is asserted bit-exact against the single-pool
//! baseline — across **all** shard × stage configurations of the sweep,
//! plus a functional-golden anchor — before any number is recorded.
//!
//! Output: table + story on stdout (and `results/scaling_sweep.txt`),
//! plus the machine-readable **`BENCH_scaling.json`** at the repo root
//! (schema `eie-scaling-sweep/v1`, documented in `EXPERIMENTS.md`).
//! Only a full-scale non-quick run touches that file: `--quick` (the CI
//! smoke: depth {1,3}, batch 8, bounded iterations) writes
//! `results/scaling_sweep_quick.json`, and an `EIE_SCALE`'d run writes
//! `results/scaling_sweep_scaled.json`, so the committed scale-1 record
//! is never clobbered.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use eie_bench::*;
use eie_core::baselines::TimingHarness;
use eie_core::{run_stack_planned, QUEUE_DEPTH};

/// One measured cell of the sweep.
struct Cell {
    depth: usize,
    batch: usize,
    threads: usize,
    shards: usize,
    /// `"single-pool"`, `"sharded"` or `"pipelined"`.
    executor: &'static str,
    /// Pipeline stage count actually run (1 for the pool executors).
    stages: usize,
    us_per_frame: f64,
    frames_per_second: f64,
}

/// The headline comparison: pipelined vs single-pool at full depth.
struct Headline {
    depth: usize,
    batch: usize,
    threads: usize,
    shards: usize,
    baseline_fps: f64,
    pipelined_fps: f64,
}

/// The compiled AlexNet FC6–8 stack at the configured scale, cached as
/// a `.eie` artifact next to the single-layer models.
fn stack_at_scale(config: EieConfig) -> CompiledModel {
    let divisor = scale_divisor();
    let dir = std::env::var("EIE_MODEL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results_dir().join("models"));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("alexnet_fc_s{divisor}_p{}.eie", config.num_pes));

    if let Ok(model) = CompiledModel::load(&path) {
        if model.config() == &config && model.num_layers() == 3 {
            return model;
        }
    }
    let fc6 = layer_at_scale(Benchmark::Alex6);
    let fc7 = layer_at_scale(Benchmark::Alex7);
    let fc8 = layer_at_scale(Benchmark::Alex8);
    let model = CompiledModel::compile(config, &[&fc6.weights, &fc7.weights, &fc8.weights])
        .with_name(format!("AlexNet FC6-8 1/{divisor}"));
    if let Err(e) = model.save(&path) {
        eprintln!("warning: could not cache model at {}: {e}", path.display());
    } else {
        eprintln!("[cached {}]", path.display());
    }
    model
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let started = Instant::now();
    let config = paper_config();
    let harness = if quick {
        TimingHarness {
            min_runs: 2,
            max_runs: 4,
            target_total_us: 1e5,
        }
    } else {
        TimingHarness {
            min_runs: 3,
            max_runs: 9,
            target_total_us: 7e5,
        }
    };
    let available = NativeCpu::new().threads();
    let mut thread_counts = vec![1usize];
    if available > 1 && !quick {
        thread_counts.push(available);
    }
    let depths: &[usize] = if quick { &[1, 3] } else { &[1, 2, 3] };
    let batches: &[usize] = if quick { &[8] } else { &[8, 16, 32] };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let max_batch = *batches.last().expect("batch sweep is non-empty");
    let max_depth = *depths.last().expect("depth sweep is non-empty");

    let model = stack_at_scale(config);
    let layers = model.planned_layers();
    let fc6 = layer_at_scale(Benchmark::Alex6);
    let batch: Vec<Vec<Q8p8>> = fc6
        .sample_activation_batch(DEFAULT_SEED, max_batch)
        .iter()
        .map(|item| Q8p8::from_f32_slice(item))
        .collect();

    let mut table = TextTable::new(
        format!(
            "Scaling sweep: single-pool vs sharded vs pipelined (lanes: {}), scale 1/{}, EIE = {}",
            lane_isa(),
            scale_divisor(),
            config
        ),
        &[
            "depth",
            "batch",
            "threads",
            "shards",
            "executor",
            "stages",
            "µs/frame",
            "frames/s",
            "speedup",
        ],
    );
    let mut cells: Vec<Cell> = Vec::new();
    let mut headline: Option<Headline> = None;

    for &depth in depths {
        let stack = &layers[..depth];

        // ---- verify before measuring --------------------------------
        // The single-pool planned path is the reference; every sharded
        // and pipelined configuration of this sweep must reproduce its
        // bits exactly, and the reference itself is anchored to the
        // functional golden model on a sub-batch.
        let reference = NativeCpu::with_threads(1);
        let golden: Vec<Vec<Q8p8>> = run_stack_planned(&reference, stack, &batch)
            .into_iter()
            .map(|run| run.outputs)
            .collect();
        let anchor = batch.len().min(3);
        let functional: Vec<Vec<Q8p8>> = run_stack_planned(&Functional, stack, &batch[..anchor])
            .into_iter()
            .map(|run| run.outputs)
            .collect();
        assert_eq!(
            functional,
            golden[..anchor],
            "depth {depth}: planned baseline diverged from the functional golden model"
        );
        let stage_counts = [1usize, 0, depth.min(2)];
        for &threads in &thread_counts {
            for &shards in shard_counts {
                let sharded = NativeCpu::with_threads(threads).with_shards(shards);
                let outputs: Vec<Vec<Q8p8>> = run_stack_planned(&sharded, stack, &batch)
                    .into_iter()
                    .map(|run| run.outputs)
                    .collect();
                assert_eq!(
                    outputs, golden,
                    "depth {depth}: sharded run ({shards} shards, {threads}t) diverged"
                );
                for &stages in &stage_counts {
                    let topology = Topology::single().with_shards(shards).with_stages(stages);
                    let run = PipelinedStack::new(stack, &topology, threads).run(&batch);
                    assert_eq!(
                        run.outputs, golden,
                        "depth {depth}: pipelined run ({topology}, {threads}t) diverged"
                    );
                }
            }
        }
        println!(
            "verified: sharded+pipelined bit-exact vs single-pool + functional golden \
             on alexnet-fc depth {depth} (shards {shard_counts:?}, stages {stage_counts:?}, \
             batch {max_batch})"
        );

        // ---- measure ------------------------------------------------
        // The container is a shared box: a slow scheduling window can
        // hit one cell and not another measured seconds later, skewing
        // any cross-cell ratio. So for each (threads, batch) the whole
        // executor × shard matrix is measured in `REPS` interleaved
        // passes and each cell keeps its best pass — every cell gets a
        // shot at every noise window, including the ones its ratios
        // are computed against.
        const REPS: usize = 3;
        for &threads in &thread_counts {
            for &b in batches {
                let frames = &batch[..b];
                let pools: Vec<(usize, NativeCpu)> = shard_counts
                    .iter()
                    .map(|&s| (s, NativeCpu::with_threads(threads).with_shards(s)))
                    .collect();
                let stacks: Vec<(usize, usize, PipelinedStack<'_>)> = shard_counts
                    .iter()
                    .map(|&s| {
                        let topology = Topology::single().with_shards(s).with_stages(0);
                        let stages = topology.stages_for(depth);
                        (s, stages, PipelinedStack::new(stack, &topology, threads))
                    })
                    .collect();
                let mut pool_us = vec![f64::INFINITY; pools.len()];
                let mut piped_us = vec![f64::INFINITY; stacks.len()];
                for _ in 0..REPS {
                    for (i, (_, pool)) in pools.iter().enumerate() {
                        pool_us[i] = pool_us[i].min(
                            harness.measure_us(|| run_stack_planned(pool, stack, frames))
                                / b as f64,
                        );
                        let (_, _, stack_engine) = &stacks[i];
                        piped_us[i] = piped_us[i]
                            .min(harness.measure_us(|| stack_engine.run(frames)) / b as f64);
                    }
                }
                let baseline_fps = 1e6 / pool_us[0];
                for i in 0..pools.len() {
                    let (shards, stages) = (stacks[i].0, stacks[i].1);
                    let executor = if shards == 1 {
                        "single-pool"
                    } else {
                        "sharded"
                    };
                    let us = pool_us[i];
                    let fps = 1e6 / us;
                    cells.push(Cell {
                        depth,
                        batch: b,
                        threads,
                        shards,
                        executor,
                        stages: 1,
                        us_per_frame: us,
                        frames_per_second: fps,
                    });
                    table.row(vec![
                        depth.to_string(),
                        b.to_string(),
                        threads.to_string(),
                        shards.to_string(),
                        executor.into(),
                        "1".into(),
                        f(us, 1),
                        f(fps, 0),
                        if shards == 1 {
                            "-".into()
                        } else {
                            x(fps / baseline_fps)
                        },
                    ]);

                    let us = piped_us[i];
                    let fps = 1e6 / us;
                    cells.push(Cell {
                        depth,
                        batch: b,
                        threads,
                        shards,
                        executor: "pipelined",
                        stages,
                        us_per_frame: us,
                        frames_per_second: fps,
                    });
                    table.row(vec![
                        depth.to_string(),
                        b.to_string(),
                        threads.to_string(),
                        shards.to_string(),
                        "pipelined".into(),
                        stages.to_string(),
                        f(us, 1),
                        f(fps, 0),
                        x(fps / baseline_fps),
                    ]);
                    // Headline: the best pipelined-over-single-pool win
                    // at full depth (the configuration this PR exists
                    // for).
                    if depth == max_depth {
                        let candidate = Headline {
                            depth,
                            batch: b,
                            threads,
                            shards,
                            baseline_fps,
                            pipelined_fps: fps,
                        };
                        if headline
                            .as_ref()
                            .map(|h| {
                                candidate.pipelined_fps / candidate.baseline_fps
                                    > h.pipelined_fps / h.baseline_fps
                            })
                            .unwrap_or(true)
                        {
                            headline = Some(candidate);
                        }
                    }
                }
            }
            eprintln!(
                "[depth {depth} @ {threads}t] done in {:.1}s",
                started.elapsed().as_secs_f64()
            );
        }
    }

    let hl = headline.expect("the full-depth configuration ran");
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nHeadline: pipelined depth-{} batch-{} runs {} vs the single-pool planned \
         baseline ({:.0} vs {:.0} frames/s at {} thread(s), {} shard(s)). Each layer owns \
         a stage engine; chunks stream through bounded queues (depth {}) at a granularity \
         adapted to the host — {} lane-block chunks per stage when spare cores make \
         overlap real, the whole batch inline when they don't — and interior layers take \
         the lean chunk path (no per-item latency assembly). Sharded rows split each \
         dispatch into contiguous PE ranges with their own worker sub-groups — the \
         row-parallel half of the topology knob.",
        hl.depth,
        hl.batch,
        x(hl.pipelined_fps / hl.baseline_fps),
        hl.pipelined_fps,
        hl.baseline_fps,
        hl.threads,
        hl.shards,
        QUEUE_DEPTH,
        LANE_WIDTH,
    );
    emit("scaling_sweep", &out);

    // ---- machine-readable record ------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"eie-scaling-sweep/v1\",");
    let _ = writeln!(json, "  \"scale_divisor\": {},", scale_divisor());
    let _ = writeln!(json, "  \"pes\": {},", config.num_pes);
    let _ = writeln!(json, "  \"threads_available\": {available},");
    let _ = writeln!(json, "  \"lane_width\": {LANE_WIDTH},");
    let _ = writeln!(json, "  \"queue_depth\": {QUEUE_DEPTH},");
    let _ = writeln!(json, "  \"simd\": \"{}\",", lane_isa());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let list = |values: &[usize]| {
        values
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(json, "  \"depths\": [{}],", list(depths));
    let _ = writeln!(json, "  \"batches\": [{}],", list(batches));
    let _ = writeln!(json, "  \"shards\": [{}],", list(shard_counts));
    let _ = writeln!(
        json,
        "  \"headline\": {{\"depth\": {}, \"batch\": {}, \"threads\": {}, \"shards\": {}, \
         \"baseline_fps\": {:.1}, \"pipelined_fps\": {:.1}, \"speedup\": {:.3}}},",
        hl.depth,
        hl.batch,
        hl.threads,
        hl.shards,
        hl.baseline_fps,
        hl.pipelined_fps,
        hl.pipelined_fps / hl.baseline_fps
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"depth\": {}, \"batch\": {}, \"threads\": {}, \"shards\": {}, \
             \"executor\": \"{}\", \"stages\": {}, \"us_per_frame\": {:.3}, \
             \"frames_per_second\": {:.1}}}",
            c.depth,
            c.batch,
            c.threads,
            c.shards,
            c.executor,
            c.stages,
            c.us_per_frame,
            c.frames_per_second,
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Only a full-scale, non-quick run may refresh the committed
    // repo-root record; quick and EIE_SCALE'd runs land in results/ so
    // the recorded scale-1 trajectory is never clobbered.
    let path = if quick {
        results_dir().join("scaling_sweep_quick.json")
    } else if scale_divisor() != 1 {
        results_dir().join("scaling_sweep_scaled.json")
    } else {
        PathBuf::from("BENCH_scaling.json")
    };
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
