//! Table IV: wall-clock time comparison (µs) between CPU, GPU, mobile GPU
//! and EIE across the nine benchmarks, batch sizes 1 and 64.
//!
//! * CPU rows: both *measured on this machine* (our Rust GEMV/CSRMV
//!   kernels, single-thread) and the i7-5930k roofline calibrated to the
//!   paper's MKL numbers.
//! * GPU/mGPU rows: calibrated roofline models (no GPU offline; see
//!   DESIGN.md §3).
//! * EIE rows: theoretical time (perfect balance) and actual time from
//!   the cycle-accurate simulator at 64 PEs / 800 MHz, with the paper's
//!   published values alongside.

use eie_bench::*;
use eie_core::baselines::{CpuMeasurement, MvWorkload, TimingHarness};

/// Paper Table IV, EIE rows: (benchmark, theoretical µs, actual µs).
const PAPER_EIE_US: [(f64, f64); 9] = [
    (28.1, 30.3), // Alex-6
    (11.7, 12.2), // Alex-7
    (8.9, 9.9),   // Alex-8
    (28.1, 34.4), // VGG-6
    (7.9, 8.7),   // VGG-7
    (7.3, 8.4),   // VGG-8
    (5.2, 8.0),   // NT-We
    (13.0, 13.9), // NT-Wd
    (6.5, 7.5),   // NT-LSTM
];

fn main() {
    let started = std::time::Instant::now();
    let config = paper_config();
    let harness = TimingHarness {
        min_runs: 2,
        max_runs: 9,
        target_total_us: 1.5e6,
    };
    let i7 = Platform::core_i7().roofline.expect("cpu roofline");
    let gpu = Platform::titan_x().roofline.expect("gpu roofline");
    let mgpu = Platform::tegra_k1().roofline.expect("mgpu roofline");

    let mut table = TextTable::new(
        format!(
            "Table IV reproduction: wall-clock per frame (µs), scale 1/{} , EIE = {}",
            scale_divisor(),
            config
        ),
        &["layer", "platform", "batch", "dense", "sparse"],
    );
    let mut eie_table = TextTable::new(
        "Table IV, EIE rows (µs)",
        &[
            "layer",
            "theoretical",
            "actual",
            "overhead",
            "paper theo",
            "paper actual",
        ],
    );

    for (i, benchmark) in Benchmark::ALL.iter().enumerate() {
        let layer = layer_at_scale(*benchmark);
        let (rows, cols) = (layer.weights.rows(), layer.weights.cols());
        let density = layer.weights.density();

        // --- measured CPU (this machine) -----------------------------
        let workload = MvWorkload::from_sparse(layer.weights.clone(), DEFAULT_SEED ^ 77);
        let cpu = CpuMeasurement::measure(&workload, &harness);
        drop(workload);
        table.row(vec![
            benchmark.name().into(),
            "CPU (measured)".into(),
            "1".into(),
            f(cpu.dense_b1_us, 1),
            f(cpu.sparse_b1_us, 1),
        ]);
        table.row(vec![
            benchmark.name().into(),
            "CPU (measured)".into(),
            "64".into(),
            f(cpu.dense_b64_us, 1),
            f(cpu.sparse_b64_us, 1),
        ]);

        // --- calibrated platform models ------------------------------
        for (name, model) in [
            ("CPU i7 (model)", &i7),
            ("GPU TitanX (model)", &gpu),
            ("mGPU TK1 (model)", &mgpu),
        ] {
            for batch in [1usize, 64] {
                table.row(vec![
                    benchmark.name().into(),
                    name.into(),
                    batch.to_string(),
                    f(model.dense_time_us(rows, cols, batch), 1),
                    f(model.sparse_time_us(rows, cols, density, batch), 1),
                ]);
            }
        }

        // --- EIE (cycle simulator) -----------------------------------
        let inst = BenchmarkInstance::from_layer(layer, config);
        let result = inst.run();
        let (paper_theo, paper_actual) = PAPER_EIE_US[i];
        eie_table.row(vec![
            benchmark.name().into(),
            f(result.theoretical_time_us().expect("cycle backend"), 1),
            f(result.time_us(), 1),
            x(result.stats(0).expect("cycle backend").overhead_factor()),
            f(paper_theo, 1),
            f(paper_actual, 1),
        ]);
        eprintln!(
            "[{}] done in {:.1}s",
            benchmark.name(),
            started.elapsed().as_secs_f64()
        );
    }

    let mut out = table.render();
    out.push('\n');
    out.push_str(&eie_table.render());
    out.push_str(
        "\nNotes: measured CPU = this machine's single-thread Rust kernels; model rows are\n\
         rooflines calibrated once on the paper's FC7 column (DESIGN.md §3). Paper EIE\n\
         columns listed for comparison; at EIE_SCALE>1 absolute values shrink accordingly.\n",
    );
    emit("table4", &out);
}
