//! Ablation studies of EIE's micro-architectural design choices.
//!
//! The paper motivates four mechanisms without always quantifying them in
//! a dedicated figure; these ablations measure each with the cycle
//! simulator (DESIGN.md §4):
//!
//! * **accumulator bypass** (§VI) — without it, back-to-back MACs to the
//!   same accumulator stall a cycle,
//! * **pointer SRAM banking** (§IV) — without even/odd banks, reading
//!   `p_j` and `p_{j+1}` serializes into two cycles,
//! * **LNZD tree vs. oracle broadcast** (§IV) — the quadtree adds only
//!   pipeline-fill latency,
//! * **relative-index width** (§III-B) — narrower indices pad more
//!   (compute overhead), wider ones store more bits (storage overhead);
//!   4 bits is the paper's sweet spot.

use eie_bench::*;

fn main() {
    let config = paper_config();

    let mut arch = TextTable::new(
        format!("Ablations: cycle cost of removing each mechanism ({config})"),
        &[
            "layer",
            "baseline (cyc)",
            "no bypass",
            "no ptr banking",
            "no LNZD (oracle)",
        ],
    );

    for benchmark in Benchmark::ALL {
        let layer = layer_at_scale(benchmark);
        let model = model_at_scale(benchmark, config);
        let encoded = model.layer(0);
        let acts = layer.sample_activations(DEFAULT_SEED);
        let base_cfg = config.sim_config();
        let base = simulate(encoded, &acts, &base_cfg).stats.total_cycles;
        let pct = |cycles: u64| -> String {
            format!("{:+.2}%", (cycles as f64 / base as f64 - 1.0) * 100.0)
        };
        let no_bypass = simulate(
            encoded,
            &acts,
            &SimConfig {
                accumulator_bypass: false,
                ..base_cfg
            },
        )
        .stats
        .total_cycles;
        let no_banking = simulate(
            encoded,
            &acts,
            &SimConfig {
                ptr_banked: false,
                ..base_cfg
            },
        )
        .stats
        .total_cycles;
        let oracle = simulate(
            encoded,
            &acts,
            &SimConfig {
                lnzd_tree: false,
                ..base_cfg
            },
        )
        .stats
        .total_cycles;
        arch.row(vec![
            benchmark.name().into(),
            base.to_string(),
            pct(no_bypass),
            pct(no_banking),
            pct(oracle),
        ]);
        eprintln!("[{}] architecture ablations done", benchmark.name());
    }

    // Relative-index width ablation: padding (compute) vs storage.
    let mut idx = TextTable::new(
        "Ablation: relative-index width (VGG-7, the sparsest shape)",
        &["index bits", "padding entries", "real work", "spmat KB"],
    );
    let layer = layer_at_scale(Benchmark::Vgg7);
    for bits in [2u32, 3, 4, 5, 6, 8] {
        let cfg = eie_core::compress::CompressConfig {
            num_pes: config.num_pes,
            index_bits: bits,
            ..eie_core::compress::CompressConfig::default()
        };
        let encoded = eie_core::compress::compress(&layer.weights, cfg);
        let stats = encoded.stats();
        let entry_bits = 4 + bits as usize;
        let kb = (stats.total_entries() * entry_bits) as f64 / 8.0 / 1024.0;
        idx.row(vec![
            bits.to_string(),
            stats.padding_entries.to_string(),
            format!("{:.1}%", stats.real_work_ratio() * 100.0),
            f(kb, 1),
        ]);
    }

    let mut out = arch.render();
    out.push('\n');
    out.push_str(&idx.render());
    out.push_str(
        "\nReading: bypass and banking each cost ~0-3% when removed (they close\n\
         pipeline hazards); the oracle broadcast saves only the LNZD fill cycles,\n\
         confirming the tree is not on the critical path (§VII-B). For the index\n\
         width, 4 bits balances padding work against storage (paper §III-B).\n",
    );
    emit("ablations", &out);
}
