//! Batch sweep: the EIE-versus-batching story of Table IV, as a
//! measured experiment.
//!
//! The paper's framing (§VI-B): CPUs and GPUs need batching to amortize
//! weight traffic — batch 64 improves their per-frame time substantially
//! — while EIE hits its latency at **batch 1**, where real-time
//! inference actually lives. This binary sweeps the batch dimension
//! through every execution path the engine has:
//!
//! * EIE cycle model: modelled per-frame latency (flat in batch size by
//!   construction — the hardware has no batch dimension to exploit),
//! * NativeCpu: the host-speed serving kernel at batch 1/16/64 (its
//!   fused kernel *does* win throughput from batching, like any CPU),
//! * CPU dense/sparse baselines at batch 1/64 (the paper's MKL rows).
//!
//! `EIE_SCALE=N` shrinks the layers for quick runs.

use eie_bench::*;
use eie_core::baselines::{CpuMeasurement, MvWorkload, TimingHarness};

fn main() {
    let started = std::time::Instant::now();
    let config = paper_config();
    let harness = TimingHarness {
        min_runs: 2,
        max_runs: 7,
        target_total_us: 1e6,
    };
    let native_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = TextTable::new(
        format!(
            "Batch sweep: per-frame latency and throughput, scale 1/{}, EIE = {}",
            scale_divisor(),
            config
        ),
        &["layer", "engine", "batch", "µs/frame", "frames/s"],
    );
    let mut story: Vec<String> = Vec::new();

    for benchmark in [Benchmark::Alex7, Benchmark::NtWe] {
        let layer = layer_at_scale(benchmark);
        // Build-once/load-many: compile (or reload) the .eie artifact
        // and serve every engine below from the same loaded model.
        let model = model_at_scale(benchmark, config);
        let enc = model.layer(0);

        // --- EIE cycle model: modelled latency, batch 1 and a small
        //     batch (per-frame time is flat — no batch dimension in HW).
        let hw = model.infer(BackendKind::CycleAccurate);
        let b1 = hw.submit(&layer.sample_activation_batch(DEFAULT_SEED, 1));
        let b4 = hw.submit(&layer.sample_activation_batch(DEFAULT_SEED, 4));
        for result in [&b1, &b4] {
            table.row(vec![
                benchmark.name().into(),
                "EIE (modelled)".into(),
                result.batch_size().to_string(),
                f(result.mean_latency_us(), 1),
                f(result.frames_per_second(), 0),
            ]);
        }

        // --- NativeCpu serving kernel at batch 1 / 16 / 64 ------------
        // Time the backend on pre-quantized inputs so these rows measure
        // the kernel alone, like the CPU baseline rows below do.
        let native = BackendKind::NativeCpu(native_threads).instantiate(&config);
        let mut native_fps = Vec::new();
        for batch in [1usize, 16, 64] {
            let inputs: Vec<Vec<Q8p8>> = layer
                .sample_activation_batch(DEFAULT_SEED, batch)
                .iter()
                .map(|item| Q8p8::from_f32_slice(item))
                .collect();
            let wall_us = harness.measure_us(|| native.run_layer_batch(enc, &inputs, false));
            let fps = batch as f64 / (wall_us * 1e-6);
            native_fps.push(fps);
            table.row(vec![
                benchmark.name().into(),
                format!("NativeCpu ({native_threads}t)"),
                batch.to_string(),
                f(wall_us / batch as f64, 1),
                f(fps, 0),
            ]);
        }

        // --- CPU baselines (paper's MKL rows, our Rust kernels) -------
        let workload = MvWorkload::from_sparse(layer.weights.clone(), DEFAULT_SEED ^ 77);
        let mut cpu_rows = Vec::new();
        for (kernel, batch) in [
            ("dense", 1usize),
            ("dense", 64),
            ("sparse", 1),
            ("sparse", 64),
        ] {
            let run = if kernel == "dense" {
                CpuMeasurement::measure_dense_batch(&workload, batch, &harness)
            } else {
                CpuMeasurement::measure_sparse_batch(&workload, batch, &harness)
            };
            table.row(vec![
                benchmark.name().into(),
                format!("CPU {kernel}"),
                batch.to_string(),
                f(run.per_frame_us(), 1),
                f(run.frames_per_second(), 0),
            ]);
            cpu_rows.push(run);
        }
        drop(workload);

        let dense_batching_gain = cpu_rows[0].per_frame_us() / cpu_rows[1].per_frame_us();
        let native_batching_gain = native_fps[2] / native_fps[0];
        story.push(format!(
            "{}: batch 64 changes CPU dense per-frame time by {:.1}x (our naive kernels; \
             MKL gains more, Table IV) and buys the NativeCpu fused kernel {:.1}x \
             throughput; EIE's modelled per-frame time is flat ({:.1} vs {:.1} µs) — \
             the architecture hits its latency at batch 1.",
            benchmark.name(),
            dense_batching_gain,
            native_batching_gain,
            b1.mean_latency_us(),
            b4.mean_latency_us(),
        ));
        eprintln!(
            "[{}] done in {:.1}s",
            benchmark.name(),
            started.elapsed().as_secs_f64()
        );
    }

    let mut out = table.render();
    out.push('\n');
    for line in &story {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(
        "\nNotes: EIE rows are modelled hardware time (cycle simulator at 800 MHz);\n\
         NativeCpu and CPU rows are measured on this machine. Table IV's point —\n\
         batching rescues CPU throughput but EIE needs no batch to hit its latency —\n\
         falls out of the per-frame columns.\n",
    );
    emit("batch_sweep", &out);
}
