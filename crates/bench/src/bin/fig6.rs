//! Figure 6: speedups of CPU/GPU/mGPU (dense & compressed) and EIE,
//! normalized to CPU dense, batch size 1, across the nine benchmarks.
//!
//! Paper headline: EIE is on (geometric) average 189× faster than CPU
//! dense, 13× faster than GPU dense, 307× faster than mGPU dense.

use eie_bench::*;

fn main() {
    let config = paper_config();
    let mut table = TextTable::new(
        format!("Figure 6: speedup over CPU dense (batch 1), EIE = {config}"),
        &[
            "layer",
            "CPU dense",
            "CPU comp",
            "GPU dense",
            "GPU comp",
            "mGPU dense",
            "mGPU comp",
            "EIE",
        ],
    );

    let mut per_bar: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for benchmark in Benchmark::ALL {
        let w = SevenWay::compute(benchmark, config);
        let times = w.times_us();
        let speedups: Vec<f64> = times.iter().map(|t| w.cpu_dense_us / t).collect();
        for (acc, &s) in per_bar.iter_mut().zip(&speedups) {
            acc.push(s);
        }
        let mut row = vec![benchmark.name().to_string()];
        row.extend(speedups.iter().map(|&s| x(s)));
        table.row(row);
    }
    let mut geo_row = vec!["Geo Mean".to_string()];
    let mut geo_vals = Vec::new();
    for bar in &per_bar {
        let g = geomean(bar);
        geo_vals.push(g);
        geo_row.push(x(g));
    }
    table.row(geo_row);

    let mut out = table.render();
    out.push_str(&format!(
        "\nEIE vs CPU dense: {} (paper 189x) | vs GPU dense: {} (paper 13x) | vs mGPU dense: {} (paper 307x)\n\
         Compression alone on CPU: {} (paper ~3x)\n",
        x(geo_vals[6]),
        x(geo_vals[6] / geo_vals[2]),
        x(geo_vals[6] / geo_vals[4]),
        x(geo_vals[1]),
    ));
    emit("fig6", &out);
}
