//! Figure 7: energy efficiency of CPU/GPU/mGPU (dense & compressed) and
//! EIE, normalized to CPU dense, batch size 1.
//!
//! Platform energy = wall-clock × measured platform power (the paper's
//! method, §VI-B); EIE energy comes from the activity-priced model.
//! Paper headline: EIE is 24,000× / 3,400× / 2,700× more energy-efficient
//! than CPU / GPU / mGPU.

use eie_bench::*;

fn main() {
    let config = paper_config();
    let mut table = TextTable::new(
        format!("Figure 7: energy efficiency over CPU dense (batch 1), EIE = {config}"),
        &[
            "layer",
            "CPU dense",
            "CPU comp",
            "GPU dense",
            "GPU comp",
            "mGPU dense",
            "mGPU comp",
            "EIE",
        ],
    );

    let mut per_bar: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for benchmark in Benchmark::ALL {
        let w = SevenWay::compute(benchmark, config);
        let energies = w.energies_uj();
        let effs: Vec<f64> = energies.iter().map(|e| energies[0] / e).collect();
        for (acc, &s) in per_bar.iter_mut().zip(&effs) {
            acc.push(s);
        }
        let mut row = vec![benchmark.name().to_string()];
        row.extend(effs.iter().map(|&s| x(s)));
        table.row(row);
    }
    let mut geo_row = vec!["Geo Mean".to_string()];
    let mut geo_vals = Vec::new();
    for bar in &per_bar {
        let g = geomean(bar);
        geo_vals.push(g);
        geo_row.push(x(g));
    }
    table.row(geo_row);

    let mut out = table.render();
    out.push_str(&format!(
        "\nEIE vs CPU dense: {} (paper 24,207x) | vs GPU dense: {} (paper ~3,400x) | vs mGPU dense: {} (paper ~2,700x)\n\
         Theoretical factor stack (paper §VI-B): 120x (SRAM vs DRAM) x 10x (sparsity) x 8x\n\
         (weight sharing) x 3x (activation sparsity) = 28,800x before index/technology overheads.\n",
        x(geo_vals[6]),
        x(geo_vals[6] / geo_vals[2]),
        x(geo_vals[6] / geo_vals[4]),
    ));
    emit("fig7", &out);
}
