//! Kernel sweep: the reproducible perf baseline of the native hot path.
//!
//! Measures layer throughput across a batch-size sweep (1, 4, 8, 16,
//! 32) for three kernels:
//!
//! * **streaming** — per-call entry-stream decode, scoped threads (the
//!   pre-plan code path, kept alive as `NativeCpu::without_plans`),
//! * **plan-scalar** — pre-decoded [`LayerPlan`]s on the persistent
//!   pool, fused batches one MAC at a time (`NativeCpu::without_lanes`,
//!   the pre-lane code path — the *scalar* half of the simd-vs-scalar
//!   A/B),
//! * **plan** — the batch-lane vectorized plan kernel (fixed-width
//!   `[i32; LANE_WIDTH]` MACs, per-layer column tiles; AVX2 when built
//!   with `--features simd` on a capable host — the recorded `simd`
//!   field says which path ran).
//!
//! All three kernels are asserted bit-exact against each other here —
//! at batch 1 and at the largest swept batch — before any number is
//! recorded; the property tests pin the same equivalence against the
//! functional golden model.
//!
//! Output: a table + story on stdout (and `results/kernel_sweep.txt`),
//! plus the machine-readable **`BENCH_kernel.json`** at the repo root —
//! the recorded perf trajectory (schema `eie-kernel-sweep/v2`,
//! documented in `EXPERIMENTS.md`). Only a full-scale non-quick run
//! touches that file: `--quick` (the CI smoke: one layer, bounded
//! iterations, batches 1 and 8) writes
//! `results/kernel_sweep_quick.json`, and an `EIE_SCALE`'d run writes
//! `results/kernel_sweep_scaled.json`, so the committed scale-1 record
//! is never clobbered.

use std::fmt::Write as _;
use std::time::Instant;

use eie_bench::*;
use eie_core::baselines::TimingHarness;

/// One measured cell of the sweep.
struct Cell {
    layer: &'static str,
    rows: usize,
    cols: usize,
    pes: usize,
    threads: usize,
    /// Batch size of the run (1 = single-item path).
    batch: usize,
    /// `"streaming"`, `"plan-scalar"` or `"plan"`.
    kernel: &'static str,
    us_per_frame: f64,
    frames_per_second: f64,
}

/// The per-(layer, threads) headline inputs.
struct Headline {
    layer: String,
    threads: usize,
    single_speedup: f64,
    batch: usize,
    batch_speedup: f64,
    lane_over_scalar: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let started = Instant::now();
    let config = paper_config();
    let harness = if quick {
        TimingHarness {
            min_runs: 2,
            max_runs: 4,
            target_total_us: 1e5,
        }
    } else {
        TimingHarness {
            min_runs: 3,
            max_runs: 9,
            target_total_us: 7e5,
        }
    };
    let available = NativeCpu::new().threads();
    let mut thread_counts = vec![1usize];
    if available > 1 && !quick {
        thread_counts.push(available);
    }
    let benchmarks: &[Benchmark] = if quick {
        &[Benchmark::Alex7]
    } else {
        &[Benchmark::Alex6, Benchmark::Alex7, Benchmark::NtWe]
    };
    let batches: &[usize] = if quick { &[1, 8] } else { &[1, 4, 8, 16, 32] };
    let max_batch = *batches.last().expect("batch sweep is non-empty");
    const KERNELS: [&str; 3] = ["streaming", "plan-scalar", "plan"];

    let mut table = TextTable::new(
        format!(
            "Kernel sweep: streaming vs plan-scalar vs plan (lanes: {}), scale 1/{}, EIE = {}",
            lane_isa(),
            scale_divisor(),
            config
        ),
        &[
            "layer",
            "threads",
            "mode",
            "kernel",
            "µs/frame",
            "frames/s",
            "speedup",
        ],
    );
    let mut cells: Vec<Cell> = Vec::new();
    let mut tiles: Vec<(&'static str, usize)> = Vec::new();
    let mut headline: Option<Headline> = None;

    for &benchmark in benchmarks {
        let layer = layer_at_scale(benchmark);
        let (rows, cols) = (layer.weights.rows(), layer.weights.cols());
        let model = model_at_scale(benchmark, config);
        let enc = model.layer(0);
        let acts = Q8p8::from_f32_slice(&layer.sample_activations(DEFAULT_SEED));
        let batch: Vec<Vec<Q8p8>> = layer
            .sample_activation_batch(DEFAULT_SEED, max_batch)
            .iter()
            .map(|item| Q8p8::from_f32_slice(item))
            .collect();
        tiles.push((benchmark.name(), LayerPlan::build(enc).lane_tile().cols()));

        for &threads in &thread_counts {
            let plan = NativeCpu::with_threads(threads);
            let scalar = plan.clone().without_lanes();
            let stream = plan.clone().without_plans();
            let engines = [&stream, &scalar, &plan];
            // Warm every engine and refuse to record perf of wrong
            // answers: the three kernels must agree bit-exactly at
            // batch 1 and at the largest swept batch (covering the
            // lane kernel's padded tail blocks).
            let warmed: Vec<_> = engines
                .iter()
                .map(|e| e.run_layer(enc, &acts, false).outputs)
                .collect();
            assert!(
                warmed.iter().all(|w| *w == warmed[0]),
                "{benchmark}: single-item kernels diverged"
            );
            let warmed_b: Vec<_> = engines
                .iter()
                .map(|e| e.run_layer_batch(enc, &batch, false))
                .collect();
            for i in 0..max_batch {
                assert!(
                    warmed_b
                        .iter()
                        .all(|runs| runs[i].outputs == warmed_b[0][i].outputs),
                    "{benchmark}: batch item {i} diverged across kernels"
                );
            }
            println!(
                "verified: streaming/plan-scalar/plan bit-exact on {} \
                 (single + batch {max_batch}, {threads}t)",
                benchmark.name()
            );

            // fps by [batch index][kernel index] for the speedup math.
            let mut fps = vec![[0.0f64; KERNELS.len()]; batches.len()];
            for (bi, &b) in batches.iter().enumerate() {
                let mode = if b == 1 {
                    "single".to_string()
                } else {
                    format!("batch{b}")
                };
                for (k, (kernel, backend)) in KERNELS.iter().zip(engines).enumerate() {
                    let us = if b == 1 {
                        harness.measure_us(|| backend.run_layer(enc, &acts, false))
                    } else {
                        harness.measure_us(|| backend.run_layer_batch(enc, &batch[..b], false))
                            / b as f64
                    };
                    fps[bi][k] = 1e6 / us;
                    cells.push(Cell {
                        layer: benchmark.name(),
                        rows,
                        cols,
                        pes: config.num_pes,
                        threads,
                        batch: b,
                        kernel,
                        us_per_frame: us,
                        frames_per_second: fps[bi][k],
                    });
                    table.row(vec![
                        benchmark.name().into(),
                        threads.to_string(),
                        mode.clone(),
                        (*kernel).into(),
                        f(us, 1),
                        f(fps[bi][k], 0),
                        if k == 0 {
                            "-".into()
                        } else {
                            x(fps[bi][k] / fps[bi][0])
                        },
                    ]);
                }
            }
            // Headline by the fused-batch win at the reference batch
            // (16, or the largest swept in quick mode): that is the
            // number this kernel exists for.
            let ref_bi = batches
                .iter()
                .position(|&b| b == 16)
                .unwrap_or(batches.len() - 1);
            let candidate = Headline {
                layer: benchmark.name().to_string(),
                threads,
                single_speedup: fps[0][2] / fps[0][0],
                batch: batches[ref_bi],
                batch_speedup: fps[ref_bi][2] / fps[ref_bi][0],
                lane_over_scalar: fps[ref_bi][2] / fps[ref_bi][1],
            };
            if headline
                .as_ref()
                .map(|h| candidate.batch_speedup > h.batch_speedup)
                .unwrap_or(true)
            {
                headline = Some(candidate);
            }
            eprintln!(
                "[{} @ {}t] done in {:.1}s",
                benchmark.name(),
                threads,
                started.elapsed().as_secs_f64()
            );
        }
    }

    let hl = headline.expect("at least one benchmark ran");
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\nHeadline: {} fused batch-{} {} plan-over-streaming at {} thread(s) \
         (single-item {}, lane-over-scalar {} on {} lanes). The batch-lane kernel \
         transposes activations into {}-item blocks once per batch and applies each \
         pre-decoded weight to a whole block as one fixed-width saturating MAC, tiled \
         per layer so the SoA entry runs stay cache-resident; plan-scalar is the same \
         plan walked one MAC at a time, and streaming re-decodes the compressed stream \
         per call — exactly what the serving path used to do.",
        hl.layer,
        hl.batch,
        x(hl.batch_speedup),
        hl.threads,
        x(hl.single_speedup),
        x(hl.lane_over_scalar),
        lane_isa(),
        LANE_WIDTH,
    );
    emit("kernel_sweep", &out);

    // ---- machine-readable record ------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"eie-kernel-sweep/v2\",");
    let _ = writeln!(json, "  \"scale_divisor\": {},", scale_divisor());
    let _ = writeln!(json, "  \"pes\": {},", config.num_pes);
    let _ = writeln!(json, "  \"threads_available\": {available},");
    let _ = writeln!(
        json,
        "  \"batches\": [{}],",
        batches
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"lane_width\": {LANE_WIDTH},");
    let _ = writeln!(json, "  \"simd\": \"{}\",", lane_isa());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"lane_tiles\": [{}],",
        tiles
            .iter()
            .map(|(name, cols)| format!("{{\"layer\": \"{name}\", \"cols_per_tile\": {cols}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{\"layer\": \"{}\", \"threads\": {}, \"batch\": {}, \
         \"single_item_speedup\": {:.3}, \"batch_speedup\": {:.3}, \
         \"lane_over_scalar\": {:.3}}},",
        hl.layer, hl.threads, hl.batch, hl.single_speedup, hl.batch_speedup, hl.lane_over_scalar
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layer\": \"{}\", \"rows\": {}, \"cols\": {}, \"pes\": {}, \
             \"threads\": {}, \"batch\": {}, \"kernel\": \"{}\", \
             \"us_per_frame\": {:.3}, \"frames_per_second\": {:.1}}}",
            c.layer,
            c.rows,
            c.cols,
            c.pes,
            c.threads,
            c.batch,
            c.kernel,
            c.us_per_frame,
            c.frames_per_second,
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Only a full-scale, non-quick run may refresh the committed
    // repo-root record; quick and EIE_SCALE'd runs land in results/ so
    // the recorded scale-1 trajectory is never clobbered.
    let path = if quick {
        results_dir().join("kernel_sweep_quick.json")
    } else if scale_divisor() != 1 {
        results_dir().join("kernel_sweep_scaled.json")
    } else {
        std::path::PathBuf::from("BENCH_kernel.json")
    };
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
